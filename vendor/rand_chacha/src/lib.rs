//! Offline-compatible `ChaCha8Rng` (vendored; no registry access in this
//! environment).
//!
//! Implements the real ChaCha stream cipher with 8 rounds as a deterministic
//! RNG behind the same type name and trait surface as the `rand_chacha`
//! crate.  The in-repo consumers rely on determinism under a fixed seed and
//! on statistical quality, not on bit-compatibility with upstream streams.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream with 8 rounds, used as a seedable deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constants + counter/nonce words.
    state: [u32; 16],
    /// The current 16-word output block.
    block: [u32; 16],
    /// Next word to serve from `block`.
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column rounds + 4 diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// The word position within the current stream (diagnostics only).
    pub fn get_word_pos(&self) -> u128 {
        let counter = u64::from(self.state[13]) << 32 | u64::from(self.state[12]);
        u128::from(counter) * 16 + self.index as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            state[4 + i] = u32::from_le_bytes(b);
        }
        // Counter and nonce start at zero.
        let mut rng = ChaCha8Rng {
            state,
            block: [0u32; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut buckets = [0usize; 8];
        for _ in 0..80_000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket = {b}");
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.get_word_pos(), fork.get_word_pos());
        for _ in 0..40 {
            assert_eq!(rng.next_u64(), fork.next_u64());
        }
    }
}
