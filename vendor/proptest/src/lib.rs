//! Offline-compatible subset of the `proptest` API.
//!
//! This workspace builds without registry access, so the slice of proptest
//! the test suites use is vendored here: the [`Strategy`](strategy::Strategy)
//! trait with
//! `prop_map`, range/tuple/`Just`/`any`/`prop_oneof!` strategies,
//! `collection::vec`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros.  Cases are generated from a deterministic per-test seed; failing
//! inputs are reported but NOT shrunk (upstream proptest shrinks — keep
//! generated inputs small so raw counterexamples stay readable).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation and test-case outcomes.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// The RNG driving strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Creates a generator for one test case.
        pub fn from_seed_u64(seed: u64) -> Self {
            TestRng(ChaCha8Rng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The input was rejected by `prop_assume!`; it does not count as a
        /// failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// An input rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (the fields the workspace uses, all public so
    /// functional-update syntax works as with upstream proptest).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections across the whole run.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// A stable per-test seed derived from the test's module path and name.
    pub fn initial_seed(module: &str, name: &str) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        module.hash(&mut hasher);
        name.hash(&mut hasher);
        hasher.finish()
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A way of generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Erases the strategy type (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` adapter.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.new_value(rng))
        }
    }

    trait DynStrategy<T> {
        fn new_value_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value_dyn(rng)
        }
    }

    /// Uniform choice among several strategies of the same value type.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A / 0)(A / 0, B / 1)(A / 0, B / 1, C / 2)(
        A / 0,
        B / 1,
        C / 2,
        D / 3
    )(A / 0, B / 1, C / 2, D / 3, E / 4)(
        A / 0, B / 1, C / 2, D / 3, E / 4, F / 5
    ));
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generates one value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy behind `any::<T>()`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy generating vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap`s; duplicate generated keys collapse, so maps
    /// may come out smaller than the requested size (as with upstream).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len)
                .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
                .collect()
        }
    }

    /// A strategy generating `BTreeMap`s with entry counts in `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Everything the test suites import with `use proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines seeded property tests (see crate docs; no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ( $( $strat, )* );
            let mut __seed =
                $crate::test_runner::initial_seed(module_path!(), stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                let mut __rng = $crate::test_runner::TestRng::from_seed_u64(__seed);
                let __case_seed = __seed;
                __seed = __seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let ( $($arg,)* ) =
                    $crate::strategy::Strategy::new_value(&__strategies, &mut __rng);
                let __result: $crate::test_runner::TestCaseResult =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    Ok(()) => __accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        if __rejected > __config.max_global_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({})",
                                stringify!($name),
                                __rejected
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (seed {}): {}",
                            stringify!($name),
                            __accepted,
                            __case_seed,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 0usize..10, (a, b) in (0i64..5, 5u32..95)) {
            prop_assert!(x < 10);
            prop_assert!((0..5).contains(&a));
            prop_assert!((5..95).contains(&b));
        }

        #[test]
        fn maps_vectors_and_oneof(
            v in crate::collection::vec((0usize..4, 0usize..2), 1..6),
            tag in prop_oneof![Just("lo"), Just("hi")],
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(tag == "lo" || tag == "hi");
            if flag {
                prop_assume!(v.len() > 1);
            }
            let doubled = crate::collection::vec(0usize..3, 4);
            let mut rng = crate::test_runner::TestRng::from_seed_u64(1);
            prop_assert_eq!(crate::strategy::Strategy::new_value(&doubled, &mut rng).len(), 4);
        }
    }

    #[test]
    fn case_generation_is_deterministic_per_name() {
        let seed = crate::test_runner::initial_seed(module_path!(), "some_property");
        assert_eq!(
            seed,
            crate::test_runner::initial_seed(module_path!(), "some_property")
        );
        let mut a = crate::test_runner::TestRng::from_seed_u64(seed);
        let mut b = crate::test_runner::TestRng::from_seed_u64(seed);
        let strat = (0usize..100, 0i64..100);
        for _ in 0..50 {
            assert_eq!(
                crate::strategy::Strategy::new_value(&strat, &mut a),
                crate::strategy::Strategy::new_value(&strat, &mut b)
            );
        }
    }
}
