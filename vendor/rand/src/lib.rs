//! Offline-compatible subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments without access to crates.io, so the
//! small slice of `rand` the codebase uses is vendored here: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, uniform range sampling for the primitive
//! types the repo draws (`gen_range`), and `gen_bool`.  The API shapes match
//! rand 0.8 so the code compiles unchanged against the real crate.
//!
//! Exact output streams are NOT guaranteed to match the upstream crate; all
//! in-repo consumers only rely on determinism under a fixed seed and on
//! statistical quality, both of which hold.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniformly distributed raw words.
pub trait RngCore {
    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Panics when the range is empty, matching rand 0.8.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`, matching rand 0.8.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires 0 <= p <= 1");
        sample_f64_unit(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for all in-repo generators).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with SplitMix64,
    /// the same derivation rand_core 0.6 uses.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A uniform `f64` in `[0, 1)` using the top 53 bits of a `u64`.
fn sample_f64_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be sampled from (the subset of rand's `SampleRange`
/// needed here).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = sample_f64_unit(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = sample_f64_unit(rng) as f32;
        self.start + (self.end - self.start) * u
    }
}

/// Uniform sampling over `[0, span)` by widening multiply, avoiding modulo
/// bias for the small spans used in this repo.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply rejection sampling (Lemire); the rejection zone is
    // tiny for the small spans this workspace draws.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let offset = sample_u64_below(rng, span);
                ((self.start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = sample_u64_below(rng, span + 1);
                ((start as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Re-exports mirroring rand's module layout for the paths used in-repo.
pub mod rngs {
    /// A small-state generator (xoshiro256**), exposed under the name rand
    /// uses for its default small RNG.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is invalid for xoshiro; nudge deterministically.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(0..5);
            assert!(x < 5);
            let y: i64 = rng.gen_range(-3..4);
            assert!((-3..4).contains(&y));
            let z: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: usize = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }
}
