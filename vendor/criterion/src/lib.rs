//! Offline-compatible subset of the `criterion` benchmarking API.
//!
//! This workspace builds without registry access, so the benchmark harness
//! surface the `bench` crate uses — `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros — is vendored here
//! as a plain wall-clock timer.  Each benchmark runs a short warm-up, then
//! `sample_size` timed samples (bounded by a per-benchmark time budget), and
//! prints mean/min timings to stdout.  No statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Hint to the optimizer that a value is used.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark wall-clock budget (keeps `cargo bench` fast offline).
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// The benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Ignores CLI configuration (upstream parity shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Registers a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(id, sample_size, f);
        self
    }
}

/// A named identifier `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the id forms `bench_function` accepts.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, self.sample_size.unwrap_or(10), f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then for `sample_size` timed samples or
    /// until the time budget is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {id:<48} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Groups benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n * 1000).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_without_panicking() {
        benches();
    }
}
