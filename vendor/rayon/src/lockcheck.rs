//! Ranked lock-ordering discipline shared by the whole workspace.
//!
//! Every lock in the engine and in this pool carries a static numeric
//! *rank*; a thread may only acquire a lock whose rank is **strictly
//! greater** than every rank it already holds.  Ranks totally order the
//! lock graph, so any schedule that respects them is deadlock-free by
//! construction — the classic leveled-lock argument.
//!
//! The checker lives here, at the bottom of the dependency graph, because
//! the engine depends on this crate: one process-wide *thread-local stack
//! of held ranks* must observe engine locks (ranks below 200) and
//! pool-internal locks (ranks 200+) interleaved on the same thread.  The
//! engine builds its typed [`LockRank`] wrappers (`engine::sync`) on top of
//! the raw [`note_acquire`] / [`note_release`] hooks exported here; the
//! pool's own wrappers (`RankedMutex`, `RankedCondvar`) are private to
//! this crate.
//!
//! [`LockRank`]: https://docs.rs/ (see `engine::sync::LockRank`, the
//! workspace's single source of truth for rank values)
//!
//! # When checking is compiled in
//!
//! Rank tracking costs a thread-local vector push/pop per lock operation,
//! so it is compiled in only when [`CHECKED`] is true: debug builds always,
//! release builds only under `--features lockcheck`.  Otherwise the hooks
//! are empty `#[inline]` functions and the wrappers add nothing over
//! `std::sync` — release serving binaries pay zero.
//!
//! # Violation and poison policy
//!
//! Pool-internal wrappers **abort the process** on both rank violations and
//! lock poisoning.  Soundness of the `'scope` lifetime erasure behind
//! `ThreadPool::run_batch` requires that nothing unwinds between batch
//! injection and drain (an unwind there would free the caller's borrows
//! while scoped jobs still sit in worker deques), so a panic is not an
//! acceptable failure mode inside the pool.  Engine-side wrappers panic on
//! rank violations instead — engine locks sit outside the no-unwind window
//! and a panic is testable — but share the abort-on-poison policy.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// True when rank checking is compiled into this build (debug builds, and
/// any build with `--features lockcheck`).  `engine::sync::CHECKED` pins
/// its value per configuration with compile-time guard tests.
pub const CHECKED: bool = cfg!(any(debug_assertions, feature = "lockcheck"));

/// Rank of the per-worker job deques (transient: pop/push, never nested).
pub const RANK_WORKER_DEQUE: u16 = 200;
/// Rank of the wakeup channel (generation counter + shutdown flag) the
/// workers park on between batches.
pub const RANK_POOL_SIGNAL: u16 = 210;
/// Rank of per-batch completion state (first panic payload, done flag).
pub const RANK_POOL_BATCH: u16 = 220;
/// Rank of the ordered result slots a `par_apply` batch writes into.
pub const RANK_POOL_RESULTS: u16 = 230;

#[cfg(any(debug_assertions, feature = "lockcheck"))]
mod stack {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks this thread currently holds, in acquisition order.  Guards
        /// can die out of order, so release removes the *last matching*
        /// entry rather than popping blindly.
        static HELD: RefCell<Vec<(u16, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn acquire(rank: u16, name: &'static str, abort_on_violation: bool) {
        // `try_with` so guards created or dropped during thread-local
        // teardown degrade to unchecked instead of panicking in a Drop.
        let conflict = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            match held.iter().copied().max_by_key(|&(rank, _)| rank) {
                Some((held_rank, held_name)) if rank <= held_rank => Some((held_rank, held_name)),
                _ => {
                    held.push((rank, name));
                    None
                }
            }
        });
        if let Ok(Some((held_rank, held_name))) = conflict {
            let message = format!(
                "lock rank violation: acquiring \"{name}\" (rank {rank}) while \"{held_name}\" \
                 (rank {held_rank}) is held; locks must be acquired in strictly increasing \
                 rank order (see engine::sync::LockRank)"
            );
            if abort_on_violation {
                eprintln!("{message}");
                std::process::abort();
            }
            panic!("{message}");
        }
    }

    pub(super) fn release(rank: u16, name: &'static str) {
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(position) = held.iter().rposition(|&entry| entry == (rank, name)) {
                held.remove(position);
            }
        });
    }

    pub(super) fn held_count() -> usize {
        HELD.try_with(|held| held.borrow().len()).unwrap_or(0)
    }
}

/// Records that the current thread acquired a lock of `rank` named `name`.
///
/// If the thread already holds a rank `>= rank`, the acquisition is a
/// discipline violation: the process aborts when `abort_on_violation` is
/// set (pool internals — see the module docs), panics otherwise (engine
/// locks), naming both lock sites.  No-op when [`CHECKED`] is false.
#[inline]
pub fn note_acquire(rank: u16, name: &'static str, abort_on_violation: bool) {
    #[cfg(any(debug_assertions, feature = "lockcheck"))]
    stack::acquire(rank, name, abort_on_violation);
    #[cfg(not(any(debug_assertions, feature = "lockcheck")))]
    let _ = (rank, name, abort_on_violation);
}

/// Records that the current thread released the lock of `rank` named
/// `name` (the last matching acquisition).  No-op when [`CHECKED`] is
/// false.
#[inline]
pub fn note_release(rank: u16, name: &'static str) {
    #[cfg(any(debug_assertions, feature = "lockcheck"))]
    stack::release(rank, name);
    #[cfg(not(any(debug_assertions, feature = "lockcheck")))]
    let _ = (rank, name);
}

/// Number of ranks the current thread holds (0 when checking is off).
/// Exposed so engine tests can assert guards are balanced.
#[inline]
pub fn held_ranks() -> usize {
    #[cfg(any(debug_assertions, feature = "lockcheck"))]
    {
        stack::held_count()
    }
    #[cfg(not(any(debug_assertions, feature = "lockcheck")))]
    {
        0
    }
}

/// A pool-internal mutex with a static rank.
///
/// Lock acquisition aborts the process on rank violations *and* on
/// poisoning — the pool's no-unwind window (see the module docs and the
/// `SAFETY` rationale on `erase_job_lifetime`) rules out panicking here.
pub(crate) struct RankedMutex<T> {
    rank: u16,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> RankedMutex<T> {
    pub(crate) const fn new(rank: u16, name: &'static str, value: T) -> RankedMutex<T> {
        RankedMutex {
            rank,
            name,
            inner: Mutex::new(value),
        }
    }

    /// Locks, aborting on rank violation or poisoning.
    pub(crate) fn lock(&self) -> RankedMutexGuard<'_, T> {
        note_acquire(self.rank, self.name, true);
        match self.inner.lock() {
            Ok(guard) => RankedMutexGuard {
                rank: self.rank,
                name: self.name,
                guard: Some(guard),
            },
            Err(_) => std::process::abort(),
        }
    }

    /// Consumes the mutex and returns its value, aborting if poisoned.
    pub(crate) fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(_) => std::process::abort(),
        }
    }
}

/// Guard for a [`RankedMutex`]; releases the rank on drop.
pub(crate) struct RankedMutexGuard<'a, T> {
    rank: u16,
    name: &'static str,
    /// `None` only transiently inside [`RankedCondvar::wait`], where the
    /// std guard is surrendered to the condvar while the rank stays held.
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

impl<T> Drop for RankedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.guard.take().is_some() {
            note_release(self.rank, self.name);
        }
    }
}

/// A condition variable paired with [`RankedMutex`]; waiting keeps the
/// mutex's rank on the held stack (the waiter owns the lock again before
/// `wait` returns, and a blocked thread acquires nothing in between).
pub(crate) struct RankedCondvar {
    inner: Condvar,
}

impl RankedCondvar {
    pub(crate) const fn new() -> RankedCondvar {
        RankedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Blocks until notified, aborting if the mutex is poisoned.
    pub(crate) fn wait<'a, T>(
        &self,
        mut guard: RankedMutexGuard<'a, T>,
    ) -> RankedMutexGuard<'a, T> {
        let inner = guard.guard.take().expect("guard present outside wait");
        match self.inner.wait(inner) {
            Ok(reacquired) => {
                guard.guard = Some(reacquired);
                guard
            }
            Err(_) => std::process::abort(),
        }
    }

    pub(crate) fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Convenience alias so pool code can name its deque type without spelling
/// out the generic.
pub(crate) type JobDeque<T> = RankedMutex<VecDeque<T>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_mirrors_build_configuration() {
        assert_eq!(CHECKED, cfg!(any(debug_assertions, feature = "lockcheck")));
    }

    #[test]
    fn pool_ranks_are_strictly_increasing() {
        const {
            assert!(RANK_WORKER_DEQUE < RANK_POOL_SIGNAL);
            assert!(RANK_POOL_SIGNAL < RANK_POOL_BATCH);
            assert!(RANK_POOL_BATCH < RANK_POOL_RESULTS);
        }
    }

    #[test]
    fn release_removes_the_last_matching_entry() {
        if !CHECKED {
            return;
        }
        assert_eq!(held_ranks(), 0);
        note_acquire(10, "a", false);
        note_acquire(20, "b", false);
        // Guards may die out of order: releasing the lower rank first must
        // leave the higher one held.
        note_release(10, "a");
        assert_eq!(held_ranks(), 1);
        note_release(20, "b");
        assert_eq!(held_ranks(), 0);
        // Once the stack is empty, low ranks are acquirable again.
        note_acquire(10, "a", false);
        note_release(10, "a");
        assert_eq!(held_ranks(), 0);
    }

    #[test]
    fn same_thread_ranked_wrappers_balance_the_stack() {
        let mutex = RankedMutex::new(RANK_POOL_BATCH, "test.batch", 7usize);
        let before = held_ranks();
        {
            let mut guard = mutex.lock();
            *guard += 1;
            if CHECKED {
                assert_eq!(held_ranks(), before + 1);
            }
        }
        assert_eq!(held_ranks(), before);
        assert_eq!(mutex.into_inner(), 8);
    }
}
