//! Offline-compatible subset of the `rayon` parallel-iterator API, backed by
//! a **persistent work-stealing thread pool**.
//!
//! This workspace builds without registry access, so the slice of rayon it
//! needs — `into_par_iter()` / `par_iter()` followed by `map` and ordered
//! `collect` — is vendored here.  Earlier versions spawned fresh
//! `std::thread::scope` threads on every call with one fixed chunk per
//! thread; serving-grade workloads run many small parallel batches per
//! request, so work now goes through one lazily-initialized global
//! [`ThreadPool`]:
//!
//! * **Persistent workers.** Worker threads are spawned once (on first
//!   parallel call) and parked on a condition variable between batches — a
//!   `par_map` costs an enqueue + wakeup, not thread creation/teardown.
//! * **Per-worker deques with stealing.** Each worker owns a deque; batches
//!   are distributed round-robin, a worker pops from its own deque first and
//!   steals from the coldest end of its siblings' when empty, so one slow
//!   chunk cannot serialize the rest of a batch.
//! * **Submitter helping.** The thread that submits a batch executes queued
//!   jobs itself while it waits, which keeps *nested* parallel calls (an
//!   executor wave whose operators shard their own inputs) deadlock-free and
//!   lets a single-worker pool still make progress.
//! * **Small-input fast path.** Empty, single-item, and single-worker
//!   workloads never touch the pool — they run inline on the caller.
//! * **Panic isolation.** A panicking closure does not poison unrelated
//!   workers: every job runs under `catch_unwind`, the *first* panic payload
//!   of a batch is resumed on the submitting caller after the rest of the
//!   batch has drained, and the workers keep serving later batches.
//!
//! Output order is always the input order and closures run exactly once per
//! item, so results are identical to the sequential path (rayon's own
//! contract for `map`).
//!
//! The worker count is `std::thread::available_parallelism`, overridable via
//! the `RAYON_NUM_THREADS` environment variable (read once, when the global
//! pool is first used) — the same knob real rayon honours.

#![deny(unsafe_code)]

pub mod lockcheck;

use lockcheck::{
    JobDeque, RankedCondvar, RankedMutex, RANK_POOL_BATCH, RANK_POOL_RESULTS, RANK_POOL_SIGNAL,
    RANK_WORKER_DEQUE,
};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

// Pool-internal locks go through the ranked wrappers in [`lockcheck`],
// which abort the process on poisoning *and* on rank violations.
// Soundness of the `'scope` erasure in [`erase_job_lifetime`] requires
// that [`ThreadPool::run_batch`] never unwinds between `inject()` and
// batch drain — an unwind there would free the caller's borrows while
// scoped jobs still sit in worker deques (dangling when a worker later
// runs them).  The only way the in-flight window could unwind is a
// poisoned pool lock, and poisoning can only happen if pool-internal code
// itself panicked while holding one.  Aborting makes the invariant
// structural: lock poisoning terminates the process instead of unwinding
// into the window.

pub mod prelude {
    //! The traits needed to call `par_iter`/`into_par_iter`/`map`/`collect`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Deterministic fault injection for the pool's steal path.
///
/// Only compiled under the `failpoints` feature; the default build carries no
/// trace of it.  The injected fault is **latency only** — `find_job` sits
/// inside the no-unwind window documented in [`lockcheck`], so a panic or
/// error return here is structurally off the table.  Whether a given steal
/// attempt is delayed is a pure function of the armed seed and a global hit
/// counter, so a single-threaded replay injects the same delays.
#[cfg(feature = "failpoints")]
pub mod faults {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Duration;

    static ARMED: AtomicBool = AtomicBool::new(false);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static RATE_PPM: AtomicU64 = AtomicU64::new(0);
    static LATENCY_US: AtomicU64 = AtomicU64::new(0);
    static HITS: AtomicU64 = AtomicU64::new(0);

    /// Arms the pool-steal failpoint: each steal attempt independently sleeps
    /// for `latency` with probability `rate_ppm` / 1e6, decided by
    /// `splitmix64(seed ^ hit_index)`.
    pub fn arm(seed: u64, rate_ppm: u64, latency: Duration) {
        SEED.store(seed, Ordering::Relaxed);
        RATE_PPM.store(rate_ppm.min(1_000_000), Ordering::Relaxed);
        LATENCY_US.store(
            latency.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        HITS.store(0, Ordering::Relaxed);
        ARMED.store(true, Ordering::Relaxed);
    }

    /// Disarms the failpoint; subsequent steal attempts run undisturbed.
    pub fn disarm() {
        ARMED.store(false, Ordering::Relaxed);
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    pub(crate) fn pool_steal_delay() {
        if !ARMED.load(Ordering::Relaxed) {
            return;
        }
        let hit = HITS.fetch_add(1, Ordering::Relaxed);
        let roll = splitmix64(SEED.load(Ordering::Relaxed) ^ hit) % 1_000_000;
        if roll < RATE_PPM.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_micros(LATENCY_US.load(Ordering::Relaxed)));
        }
    }
}

/// Chunks handed to the pool per worker: oversubscription lets stealing
/// balance uneven per-item cost without paying per-item scheduling.
const CHUNKS_PER_WORKER: usize = 4;

/// A type-erased unit of work queued on the pool.
///
/// Jobs are `'static` only formally: [`ThreadPool::run_batch`] erases the
/// caller's borrow lifetime and then blocks until every job of the batch has
/// executed, so no job ever outlives what it borrows.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct PoolShared {
    /// One deque per worker; batches are scattered round-robin and idle
    /// workers steal from the back of their siblings' deques.
    deques: Vec<JobDeque<Job>>,
    /// Wakeup channel: `generation` is bumped on every enqueue so a worker
    /// that scanned empty deques never sleeps through a concurrent push.
    signal: RankedMutex<WakeState>,
    workers: RankedCondvar,
    /// Round-robin scatter cursor, so consecutive batches start on different
    /// workers.
    next_deque: AtomicUsize,
}

struct WakeState {
    generation: u64,
    shutdown: bool,
}

impl PoolShared {
    /// Pops a job: own deque front first (cache-warm), then steal from the
    /// back of the others.
    fn find_job(&self, home: usize) -> Option<Job> {
        #[cfg(feature = "failpoints")]
        crate::faults::pool_steal_delay();
        if let Some(job) = self.deques[home].lock().pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (home + offset) % n;
            if let Some(job) = self.deques[victim].lock().pop_back() {
                return Some(job);
            }
        }
        None
    }

    /// Enqueues a batch round-robin across the worker deques and wakes every
    /// parked worker.
    fn inject(&self, jobs: Vec<Job>) {
        let n = self.deques.len();
        let start = self.next_deque.fetch_add(1, Ordering::Relaxed);
        for (i, job) in jobs.into_iter().enumerate() {
            self.deques[(start + i) % n].lock().push_back(job);
        }
        let mut state = self.signal.lock();
        state.generation = state.generation.wrapping_add(1);
        self.workers.notify_all();
    }
}

/// Completion state of one submitted batch.
struct BatchState {
    /// Jobs not yet finished (executed or panicked).
    pending: AtomicUsize,
    /// First panic payload raised by a job of this batch; resumed on the
    /// submitting caller once the batch has drained.
    panic: RankedMutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion flag + condvar the submitter parks on when it runs out of
    /// jobs to help with.
    done: RankedMutex<bool>,
    done_cv: RankedCondvar,
}

fn worker_loop(shared: Arc<PoolShared>, home: usize) {
    loop {
        let generation = {
            let state = shared.signal.lock();
            if state.shutdown {
                return;
            }
            state.generation
        };
        if let Some(job) = shared.find_job(home) {
            // The job's own `catch_unwind` wrapper (see `run_batch`) keeps a
            // panic from unwinding into this loop, so one panicking task
            // cannot take the worker — let alone its siblings — down.
            job();
            continue;
        }
        let mut state = shared.signal.lock();
        while state.generation == generation && !state.shutdown {
            state = shared.workers.wait(state);
        }
        if state.shutdown {
            return;
        }
    }
}

/// A persistent work-stealing thread pool.
///
/// The parallel-iterator entry points all run on the lazily-initialized
/// [`global`](ThreadPool::global) pool; private pools exist so tests (and
/// callers with special isolation needs) can pick an explicit worker count.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            deques: (0..threads)
                .map(|_| RankedMutex::new(RANK_WORKER_DEQUE, "pool.worker_deque", VecDeque::new()))
                .collect(),
            signal: RankedMutex::new(
                RANK_POOL_SIGNAL,
                "pool.signal",
                WakeState {
                    generation: 0,
                    shutdown: false,
                },
            ),
            workers: RankedCondvar::new(),
            next_deque: AtomicUsize::new(0),
        });
        let handles = (0..threads)
            .map(|home| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rayon-compat-{home}"))
                    .spawn(move || worker_loop(shared, home))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// The process-wide pool every parallel iterator runs on.  Created on
    /// first use with `RAYON_NUM_THREADS` workers if set (and parseable), the
    /// machine's available parallelism otherwise.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(configured_num_threads()))
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Runs every task to completion on the pool, the calling thread helping
    /// with queued work while it waits.  If one or more tasks panic, the
    /// remaining tasks of the batch still run, the workers stay healthy, and
    /// the *first* panic payload is resumed on this caller — the submitting
    /// thread — once the batch has drained.
    pub fn run_batch<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if tasks.is_empty() {
            return;
        }
        let batch = Arc::new(BatchState {
            pending: AtomicUsize::new(tasks.len()),
            panic: RankedMutex::new(RANK_POOL_BATCH, "pool.batch.panic", None),
            done: RankedMutex::new(RANK_POOL_BATCH, "pool.batch.done", false),
            done_cv: RankedCondvar::new(),
        });
        let jobs: Vec<Job> = tasks
            .into_iter()
            .map(|task| {
                let batch = batch.clone();
                let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    // Isolate the task: a panic is captured here, never
                    // unwound through the executing worker.
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        // Scoped so the panic-slot guard dies before the
                        // done flag is taken — both sit at the batch rank.
                        let mut slot = batch.panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        drop(slot);
                    }
                    if batch.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        *batch.done.lock() = true;
                        batch.done_cv.notify_all();
                    }
                });
                erase_job_lifetime(job)
            })
            .collect();
        self.shared.inject(jobs);
        // Help drain the queues while the batch is in flight.  Jobs of
        // *other* batches are fair game too: that is what keeps nested
        // parallel calls live when every worker is busy with the outer batch.
        while batch.pending.load(Ordering::Acquire) > 0 {
            match self
                .shared
                .find_job(self.shared.next_deque.load(Ordering::Relaxed) % self.threads)
            {
                Some(job) => job(),
                None => {
                    // Nothing queued anywhere: the remaining jobs of this
                    // batch are running on workers; park until the last one
                    // flips the flag.
                    let mut done = batch.done.lock();
                    while !*done {
                        done = batch.done_cv.wait(done);
                    }
                    break;
                }
            }
        }
        debug_assert_eq!(batch.pending.load(Ordering::Acquire), 0);
        let payload = batch.panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.signal.lock();
            state.shutdown = true;
            self.shared.workers.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Widens a job's borrow lifetime to `'static` so it can sit in the
/// persistent workers' deques.
#[allow(unsafe_code)]
fn erase_job_lifetime<'scope>(job: Box<dyn FnOnce() + Send + 'scope>) -> Job {
    // SAFETY: the only producer of scoped jobs is `ThreadPool::run_batch`,
    // which does not return before `pending` reaches zero — i.e. before every
    // job of its batch has been executed (and therefore dropped).  Jobs only
    // leave the deques by being executed; nothing else drops or leaks them.
    //
    // This holds on the unwind path too, structurally: `run_batch` must not
    // unwind between `inject()` and batch drain (that would free the
    // caller's borrows while scoped jobs still wait in worker deques).  Job
    // panics are contained inside each job's `catch_unwind` wrapper and
    // resumed only *after* the drain; every lock the in-flight window takes
    // goes through the ranked wrappers in `lockcheck`, which abort the
    // process on poisoning — and on lock-order violations — instead of
    // unwinding.  Any future code that can panic between `inject()` and the
    // drain loop breaks this invariant.
    //
    // So no job ever outlives the `'scope` borrows it captures, and the
    // transmute merely widens the lifetime parameter of an otherwise
    // identical fat pointer.
    unsafe {
        std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send + 'static>>(
            job,
        )
    }
}

/// Worker count the global pool is configured with: the `RAYON_NUM_THREADS`
/// environment variable when set and parseable, available parallelism
/// otherwise.
fn configured_num_threads() -> usize {
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    ThreadPool::global().num_threads()
}

/// Applies `f` to every item on the global pool, preserving order.
fn par_apply<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let pool = ThreadPool::global();
    // Small-input fast path: nothing to overlap, or nobody to overlap with.
    if n <= 1 || pool.num_threads() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_count = (pool.num_threads() * CHUNKS_PER_WORKER).min(n);
    let chunk_size = n.div_ceil(chunk_count);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(chunk_count);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let results: RankedMutex<Vec<Option<Vec<O>>>> = RankedMutex::new(
        RANK_POOL_RESULTS,
        "pool.par_apply.results",
        (0..chunks.len()).map(|_| None).collect(),
    );
    let f = &f;
    let results_ref = &results;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
        .into_iter()
        .enumerate()
        .map(|(index, chunk)| {
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let out: Vec<O> = chunk.into_iter().map(f).collect();
                results_ref.lock()[index] = Some(out);
            });
            task
        })
        .collect();
    pool.run_batch(tasks);
    let mut slots = results.into_inner();
    let mut out = Vec::with_capacity(n);
    for slot in slots.iter_mut() {
        out.extend(slot.take().expect("batch completion implies every chunk"));
    }
    out
}

/// A parallel iterator: a staged computation that yields an ordered `Vec` of
/// items when driven.
pub trait ParallelIterator: Sized {
    /// The item type produced.
    type Item: Send;

    /// Runs the staged computation and returns the items in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the items, in input order, into any `FromIterator` target
    /// (including `Result<Vec<_>, E>`, mirroring rayon).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// Conversion into a [`ParallelIterator`] (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on by-reference collections.
pub trait IntoParallelRefIterator<'a> {
    /// The item type produced (a reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a, T: Sync + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator<Item = &'a T>,
{
    type Item = &'a T;
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Base parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn into_par_iter(self) -> VecParIter<&'a T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn into_par_iter(self) -> VecParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecParIter<usize>;
    fn into_par_iter(self) -> VecParIter<usize> {
        VecParIter {
            items: self.collect(),
        }
    }
}

/// The `map` adapter: applies its closure across the pool when driven.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, O, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Sync,
{
    type Item = O;
    fn drive(self) -> Vec<O> {
        par_apply(self.base.drive(), self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = xs.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let xs = vec![1u64, 2, 3, 4, 5];
        let sum: Vec<u64> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(sum, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let xs: Vec<usize> = (0..100).collect();
        let ok: Result<Vec<usize>, String> = xs
            .clone()
            .into_par_iter()
            .map(Ok::<usize, String>)
            .collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, String> = xs
            .into_par_iter()
            .map(|x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn range_par_iter() {
        let squares: Vec<usize> = (0..16usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[15], 225);
    }

    #[test]
    fn private_pool_runs_batches_with_stealing_deques() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.num_threads(), 4);
        // Uneven per-task cost: one deque gets the heavy task, idle workers
        // must steal the rest for the batch to finish promptly; correctness
        // is what we assert (completion + every task ran exactly once).
        let counter = AtomicUsize::new(0);
        for _round in 0..10 {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..32)
                .map(|i| {
                    let counter = &counter;
                    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        if i == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                    task
                })
                .collect();
            pool.run_batch(tasks);
        }
        assert_eq!(counter.load(Ordering::SeqCst), 320);
    }

    #[test]
    fn nested_parallel_maps_complete() {
        // An outer parallel map whose closures run inner parallel maps: the
        // submitter-helping loop must keep this live even when every worker
        // is occupied by the outer batch.
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = outer
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..50usize).into_par_iter().map(|j| i * j).collect();
                inner.into_iter().sum()
            })
            .collect();
        for (i, sum) in sums.iter().enumerate() {
            assert_eq!(*sum, i * (49 * 50) / 2);
        }
    }

    #[test]
    fn panic_propagates_to_the_submitter_without_poisoning_workers() {
        let pool = ThreadPool::new(4);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
                .map(|i| {
                    let completed = &completed;
                    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        if i == 3 {
                            panic!("task {i} exploded");
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    });
                    task
                })
                .collect();
            pool.run_batch(tasks);
        }));
        // The panic surfaced on the submitting caller…
        let payload = result.expect_err("the batch panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.contains("exploded"),
            "unexpected payload: {message}"
        );
        // …after the rest of the batch drained (no job was abandoned)…
        assert_eq!(completed.load(Ordering::SeqCst), 15);
        // …and the pool serves later batches as if nothing happened.
        let after = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|_| {
                let after = &after;
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    after.fetch_add(1, Ordering::SeqCst);
                });
                task
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(after.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panicking_par_map_leaves_the_global_pool_usable() {
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = (0..64usize)
                .into_par_iter()
                .map(|i| if i == 20 { panic!("boom") } else { i })
                .collect();
        });
        // Single-worker global pools run the fast path (the panic unwinds
        // directly); multi-worker pools propagate through the batch. Either
        // way the caller sees the panic and the pool stays healthy.
        assert!(result.is_err());
        let sums: Vec<usize> = (0..64usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(sums.iter().sum::<usize>(), 64 * 65 / 2);
    }

    #[test]
    fn single_item_batches_run_inline() {
        let here = std::thread::current().id();
        let ids: Vec<std::thread::ThreadId> = vec![0usize]
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        assert_eq!(ids, vec![here], "n == 1 must take the sequential path");
    }
}
