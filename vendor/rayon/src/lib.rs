//! Offline-compatible subset of the `rayon` parallel-iterator API.
//!
//! This workspace builds without registry access, so the slice of rayon it
//! needs — `into_par_iter()` / `par_iter()` followed by `map` and ordered
//! `collect` — is vendored here on top of `std::thread::scope`.  Work is
//! split into one contiguous chunk per worker thread; output order is always
//! the input order, and closures run exactly once per item, so results are
//! identical to the sequential path (rayon's own contract for `map`).

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

pub mod prelude {
    //! The traits needed to call `par_iter`/`into_par_iter`/`map`/`collect`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// The number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of scoped threads, preserving order.
fn par_apply<T, O, F>(items: Vec<T>, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            out.extend(handle.join().expect("rayon-compat worker panicked"));
        }
        out
    })
}

/// A parallel iterator: a staged computation that yields an ordered `Vec` of
/// items when driven.
pub trait ParallelIterator: Sized {
    /// The item type produced.
    type Item: Send;

    /// Runs the staged computation and returns the items in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the items, in input order, into any `FromIterator` target
    /// (including `Result<Vec<_>, E>`, mirroring rayon).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// Conversion into a [`ParallelIterator`] (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on by-reference collections.
pub trait IntoParallelRefIterator<'a> {
    /// The item type produced (a reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized + 'a, T: Sync + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator<Item = &'a T>,
{
    type Item = &'a T;
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Base parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn into_par_iter(self) -> VecParIter<&'a T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn into_par_iter(self) -> VecParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecParIter<usize>;
    fn into_par_iter(self) -> VecParIter<usize> {
        VecParIter {
            items: self.collect(),
        }
    }
}

/// The `map` adapter: applies its closure across worker threads when driven.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, O, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Sync,
{
    type Item = O;
    fn drive(self) -> Vec<O> {
        par_apply(self.base.drive(), self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = xs.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let xs = vec![1u64, 2, 3, 4, 5];
        let sum: Vec<u64> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(sum, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let xs: Vec<usize> = (0..100).collect();
        let ok: Result<Vec<usize>, String> = xs
            .clone()
            .into_par_iter()
            .map(Ok::<usize, String>)
            .collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, String> = xs
            .into_par_iter()
            .map(|x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn range_par_iter() {
        let squares: Vec<usize> = (0..16usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[15], 225);
    }
}
