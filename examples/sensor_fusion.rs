//! Sensor fusion with approximate selections: keep the sensors whose
//! probability of a high reading clears a threshold, deciding the threshold
//! predicate with the adaptive algorithm of Figure 3, and compare against the
//! exact decision.
//!
//! Run with `cargo run --example sensor_fusion`.

use engine::{ApproxSelectMode, ConfidenceMode, EvalConfig, UEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::sensors::SensorWorkload;

fn main() {
    let workload = SensorWorkload {
        num_sensors: 12,
        readings_per_sensor: 5,
        high_probability: 0.45,
        seed: 42,
    };
    let db = workload.database();
    let threshold = 0.5;
    let query = SensorWorkload::alarm_query(threshold, 0.02, 0.05);
    println!("alarm query:\n  {query}\n");

    println!("exact probability of a high reading per sensor:");
    for sensor in 0..workload.num_sensors {
        println!(
            "  sensor {sensor}: {:.3}",
            workload.exact_high_probability(sensor)
        );
    }

    // Exact σ̂ decision (reference).
    let exact_engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let exact = exact_engine
        .evaluate(&db, &query, &mut rng)
        .expect("exact evaluation");
    let exact_sensors: Vec<String> = exact
        .result
        .relation
        .iter()
        .map(|row| row.tuple.to_string())
        .collect();
    println!("\nsensors above the threshold (exact): {exact_sensors:?}");

    // Adaptive Figure-3 decision.
    let adaptive_engine = UEngine::new(EvalConfig {
        approx_select: ApproxSelectMode::Adaptive,
        confidence: ConfidenceMode::Exact,
        ..EvalConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let adaptive = adaptive_engine
        .evaluate(&db, &query, &mut rng)
        .expect("adaptive evaluation");
    println!("sensors above the threshold (adaptive σ̂):");
    for row in adaptive.result.relation.iter() {
        println!(
            "  {}  (error bound {:.4})",
            row.tuple,
            adaptive.result.error_of(&row.tuple)
        );
    }
    println!(
        "Karp-Luby samples drawn by the adaptive decisions: {}",
        adaptive.stats.karp_luby_samples
    );
    println!(
        "largest per-tuple error bound in the output: {:.4}",
        adaptive.result.max_error()
    );
    println!(
        "smallest relative margin of any sensor to the threshold: {:.3}",
        workload.smallest_margin(threshold)
    );
    println!(
        "expected alarms from the generator's ground truth: {:?}",
        workload.expected_alarms(threshold)
    );
}
