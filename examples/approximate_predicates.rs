//! The Section 5 machinery in isolation: the ε-geometry of Example 5.4 /
//! Figure 2 and the predicate-approximation algorithm of Figure 3 compared
//! against the naive fixed-sample baseline.
//!
//! Run with `cargo run --example approximate_predicates`.

use approx::{
    approximate_predicate, expected_saving_factor, naive_decide, ApproxPredicate,
    ApproximationParams, LinearIneq, Orthotope,
};
use confidence::{Assignment, DnfEvent, IncrementalEstimator, ProbabilitySpace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // ---- Example 5.4 / Figure 2 -------------------------------------------
    // φ(x1, x2) = (x1 / x2 ≥ 1/2), rewritten as x1 − 0.5·x2 ≥ 0, at the
    // approximated point p̂ = (1/2, 1/2).
    let phi = LinearIneq::ratio_at_least(2, 0, 1, 0.5);
    let p_hat = [0.5, 0.5];
    let eps = phi.epsilon_max(&p_hat).expect("epsilon exists");
    let orthotope = Orthotope::relative(&p_hat, eps).expect("epsilon < 1");
    println!("Example 5.4 / Figure 2:");
    println!("  predicate:            {phi}");
    println!("  p-hat:                ({}, {})", p_hat[0], p_hat[1]);
    println!("  maximal epsilon:      {eps:.6}   (paper: 1/3)");
    println!(
        "  maximal orthotope:    {} x {}   (paper: [3/8, 3/4]^2)",
        orthotope.intervals()[0],
        orthotope.intervals()[1]
    );

    // ---- Figure 3: adaptive predicate approximation ------------------------
    // Decide "conf >= 0.3" for an event whose true probability is ~0.68,
    // estimating the confidence with incremental Karp–Luby estimators.
    let mut space = ProbabilitySpace::new();
    let mut terms = Vec::new();
    for _ in 0..6 {
        let v = space.add_bool_variable(0.175).expect("valid probability");
        terms.push(Assignment::new([(v, 0)]).expect("fresh variable"));
    }
    let event = DnfEvent::new(terms);
    let exact = 1.0 - (1.0 - 0.175f64).powi(6);
    let predicate = ApproxPredicate::threshold(1, 0, 0.3);
    let params = ApproximationParams::new(0.02, 0.05).expect("valid parameters");

    let mut adaptive_estimator =
        IncrementalEstimator::new(event.clone(), space.clone()).expect("estimator");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let adaptive = approximate_predicate(
        &predicate,
        std::slice::from_mut(&mut adaptive_estimator),
        params,
        &mut rng,
    )
    .expect("adaptive decision");

    let mut naive_estimator = IncrementalEstimator::new(event, space).expect("estimator");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let naive = naive_decide(
        &predicate,
        std::slice::from_mut(&mut naive_estimator),
        params,
        &mut rng,
    )
    .expect("naive decision");

    println!("\nFigure 3 algorithm vs the naive baseline (true p = {exact:.4}, threshold 0.3):");
    println!(
        "  adaptive: value = {}, error bound = {:.4}, iterations = {}, samples = {}",
        adaptive.value, adaptive.error_bound, adaptive.iterations, adaptive.samples
    );
    println!(
        "  naive:    value = {}, error bound = {:.4}, iterations = {}, samples = {}",
        naive.value, naive.error_bound, naive.iterations, naive.samples
    );
    println!(
        "  measured sample saving: {:.1}%   (paper predicts close to (eps_phi^2 - eps0^2)/eps_phi^2 = {:.1}%)",
        100.0 * (1.0 - adaptive.samples as f64 / naive.samples as f64),
        100.0 * expected_saving_factor(adaptive.epsilon, params.epsilon0)
    );

    // ---- A singularity (Example 5.7) ---------------------------------------
    let singular =
        approx::is_possibly_singular(&ApproxPredicate::threshold(1, 0, 1.0), &[1.0], 0.01)
            .expect("singularity check");
    println!(
        "\nExample 5.7: the tuple-certainty test conf >= 1 at p = 1 is a singularity: {singular}"
    );
}
