//! Workload-level serving under updates: prepare a set of overlapping
//! queries, serve them warm from the cross-query snapshot pool, apply a
//! small content update, and watch the catalog-aware invalidation keep
//! everything that did not touch the changed relation at warm-path cost —
//! then ship the same kind of change as a [`urel::RelationDelta`] and watch
//! `apply_deltas` patch the pooled sub-plan results in place, so the next
//! request recomputes nothing at all.
//!
//! Run with `cargo run --example serving_updates`.

use engine::{EvalConfig, ServingEngine};
use pdb::{Schema, Tuple, Value};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urel::{UDatabase, URelation};

/// `Readings(Sensor, W)`: per-sensor reading candidates with weights (the
/// repair-key input that introduces uncertainty).
fn readings(rows: &[(i64, i64)]) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["Sensor", "W"]).expect("schema"));
    for &(sensor, w) in rows {
        let _ = rel.insert(Tuple::new(vec![Value::Int(sensor), Value::Int(w)]));
    }
    URelation::from_complete(&rel)
}

/// `Rooms(Sensor, Room)`: a deterministic dimension table (a pure join
/// side — no uncertainty flows through it).
fn rooms(rows: &[(i64, &str)]) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["Sensor", "Room"]).expect("schema"));
    for &(sensor, room) in rows {
        let _ = rel.insert(Tuple::new(vec![Value::Int(sensor), Value::str(room)]));
    }
    URelation::from_complete(&rel)
}

fn main() {
    let mut db = UDatabase::new();
    db.set_relation(
        "Readings",
        readings(&[(0, 3), (0, 1), (1, 2), (1, 2), (2, 1), (2, 4)]),
        true,
    );
    db.set_relation(
        "Rooms",
        rooms(&[(0, "lab"), (1, "lab"), (2, "office")]),
        true,
    );

    // One server, several prepared queries sharing the same deterministic
    // prefix: repair-key over Readings joined with Rooms.  Only the
    // sampling suffix (the aconf accuracy) differs.
    let queries = [
        "aconf[0.30, 0.2](project[Room](join(repairkey[Sensor @ W](Readings), Rooms)))",
        "aconf[0.20, 0.1](project[Room](join(repairkey[Sensor @ W](Readings), Rooms)))",
        "aconf[0.10, 0.05](project[Room](join(repairkey[Sensor @ W](Readings), Rooms)))",
    ];
    let serving = ServingEngine::new(EvalConfig::default(), db).expect("serving engine builds");
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // 1. Prepare: the first query runs cold and pools the prefix; the other
    //    two resume it — their *first* evaluation is already warm.
    println!("— prepare —");
    for q in &queries {
        let out = serving.evaluate(q, &mut rng).expect("evaluation succeeds");
        println!("  {} rows for {q}", out.result.relation.len());
    }
    let s = serving.stats();
    println!(
        "  cold: {}, warm: {}, shared-prefix hits: {}, pooled prefixes: {}\n",
        s.cold_evaluations,
        s.warm_evaluations,
        s.shared_prefix_hits,
        serving.pooled_prefixes()
    );

    // 2. Steady state: every further request resumes at the sampling
    //    frontier (estimation-only cost).
    println!("— warm resume —");
    serving
        .evaluate(queries[0], &mut rng)
        .expect("warm evaluation");
    println!(
        "  warm evaluations so far: {}\n",
        serving.stats().warm_evaluations
    );

    // 3. Small update: sensor 2 moves to the hallway.  `Rooms` feeds only
    //    pure sub-plans (the repair-key spine reads `Readings`), so the
    //    pooled prefix entry survives — just the Rooms-scanning sub-plans
    //    are dropped and the prefix database is patched.
    println!("— update Rooms (pure join side) —");
    serving
        .update_relations([("Rooms", rooms(&[(0, "lab"), (1, "lab"), (2, "hallway")]))])
        .expect("content update applies");
    let s = serving.stats();
    println!(
        "  entries dropped: {}, sub-plans dropped: {}",
        s.snapshots_invalidated, s.subplans_invalidated
    );

    // 4. Selective re-warm: the next evaluation is still warm — it
    //    recomputes exactly the dropped join/projection over the new Rooms
    //    content, pools the fresh results, and keeps the repair-key
    //    variables untouched.  Further requests recompute nothing.
    println!("— selective re-warm —");
    let out = serving
        .evaluate(queries[0], &mut rng)
        .expect("re-warmed evaluation");
    for row in out.result.relation.iter() {
        println!("  {}", row.tuple);
    }
    let s = serving.stats();
    println!(
        "  cold: {}, warm: {}, sub-plans recomputed: {}",
        s.cold_evaluations, s.warm_evaluations, s.subplans_recomputed
    );
    serving
        .evaluate(queries[0], &mut rng)
        .expect("fully warm again");
    assert_eq!(
        serving.stats().subplans_recomputed,
        s.subplans_recomputed,
        "second evaluation after the re-warm recomputes nothing"
    );
    println!(
        "  …and the next request recomputes nothing (warm: {})\n",
        serving.stats().warm_evaluations
    );

    // 5. Delta update: sensor 1 moves to the office.  Shipping the change
    //    as a row delta lets the pool *patch* the Rooms scan, the join and
    //    the projection in place (incremental operator rules) instead of
    //    demoting them — the re-warm cost is proportional to the one-row
    //    delta, and the next evaluation recomputes nothing.
    println!("— delta update (one row of Rooms) —");
    let old = serving
        .database()
        .relation("Rooms")
        .expect("Rooms exists")
        .clone();
    let new = rooms(&[(0, "lab"), (1, "office"), (2, "hallway")]);
    let delta = old.diff(&new).expect("same schema");
    println!(
        "  shipping Δ(+{} −{} rows)",
        delta.inserted().len(),
        delta.deleted().len()
    );
    serving
        .apply_deltas([("Rooms", delta)])
        .expect("delta applies");
    let s = serving.stats();
    println!(
        "  sub-plans patched in place: {}, demoted: {}, entries dropped: {}",
        s.subplans_patched, s.subplans_demoted, s.snapshots_invalidated
    );
    let out = serving
        .evaluate(queries[0], &mut rng)
        .expect("patched warm evaluation");
    for row in out.result.relation.iter() {
        println!("  {}", row.tuple);
    }
    assert_eq!(
        serving.stats().subplans_recomputed,
        s.subplans_recomputed,
        "a patched prefix resumes without recomputing anything"
    );
    println!(
        "  cold: {}, warm: {} — the patched prefix resumed with zero recomputation",
        serving.stats().cold_evaluations,
        serving.stats().warm_evaluations
    );
}
