//! Example 2.2 and Figure 1 in detail: the U-relational representation after
//! each step of the coin pipeline, the eight possible worlds, and the
//! conditional-probability table U — comparing the succinct engine against
//! the possible-worlds reference engine.
//!
//! Run with `cargo run --example coin_posterior`.

use engine::{evaluate_naive, EvalConfig, UEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urel::decode_default;
use workloads::coins;

fn main() {
    let udb = coins::coin_udatabase();
    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    // Step 1: R := π_CoinType(repair-key_∅@Count(Coins))  — Figure 1(a).
    let r = coins::query_r();
    let out_r = engine.evaluate(&udb, &r, &mut rng).expect("R evaluates");
    println!(
        "U_R (Figure 1(a)) — rows are (condition | tuple):\n{}",
        out_r.result.relation
    );
    println!("{}", out_r.database.wtable());

    // Step 2: S, the toss outcomes, and T, the coin type in the worlds where
    // both tosses came up heads — Figure 1(b).
    let t = coins::query_t(2);
    let out_t = engine.evaluate(&udb, &t, &mut rng).expect("T evaluates");
    println!("U_T (Figure 1(b)):\n{}", out_t.result.relation);
    println!(
        "random variables after evaluating T: {}",
        out_t.database.wtable().num_variables()
    );
    println!(
        "number of possible worlds: {}",
        out_t.database.num_possible_worlds()
    );

    // Decode the final U-relational database into its explicit worlds to show
    // the eight worlds of the example.
    let explicit = decode_default(&out_t.database).expect("small enough to decode");
    println!("decoded worlds: {}", explicit.num_worlds());

    // Step 3: the posterior table U, on both engines.
    let u = coins::query_u(2);
    let succinct = engine.evaluate(&udb, &u, &mut rng).expect("U evaluates");
    println!("\nU (posterior, succinct engine):");
    for row in succinct.result.relation.iter() {
        println!("  {}", row.tuple);
    }

    let pdb = coins::coin_database();
    let reference = evaluate_naive(&pdb, &u).expect("reference evaluation");
    println!("U (posterior, possible-worlds reference engine):");
    for tuple in reference
        .possible_tuples()
        .expect("reference result")
        .iter()
    {
        println!("  {tuple}");
    }

    println!(
        "\npaper's Figure/Example values: prior fair = 2/3; posterior fair = 1/3, 2headed = 2/3."
    );
}
