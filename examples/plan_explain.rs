//! EXPLAIN-style tour of the logical plan: lower a UA query into the
//! validated operator DAG, render it, then execute the physical pipeline.
//!
//! ```text
//! cargo run --release --example plan_explain
//! ```

use algebra::{parse_query, LogicalPlan};
use engine::{catalog_of, EvalConfig, UEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let db = workloads::coin_udatabase();
    let query = workloads::coins::query_u(2);
    println!("query U of Example 2.2:\n  {query}\n");

    // Lowering merges structurally equal subqueries: the syntax tree has
    // many more operators than the DAG has nodes.
    let catalog = catalog_of(&db).expect("catalog");
    let plan = LogicalPlan::lower_validated(&query, &catalog).expect("valid query");
    println!(
        "syntax tree: {} operators  →  logical plan: {} nodes\n",
        query.size(),
        plan.len()
    );
    println!("{plan}");

    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let out = engine
        .evaluate_plan(&db, &plan, &mut rng)
        .expect("evaluates");
    println!("result (posterior after two observed heads):");
    for row in out.result.relation.iter() {
        println!("  {}", row.tuple);
    }

    // Static validation catches bad queries before execution.
    let bad = parse_query("project[Missing](Coins)").expect("parses");
    let err = LogicalPlan::lower_validated(&bad, &catalog).unwrap_err();
    println!("\nvalidation of `{bad}` fails at plan time:\n  {err}");
}
