//! Data cleaning with repair-key, confidence thresholds and a conditional
//! probability under an equality-generating dependency (Theorem 4.4):
//! Pr[φ | ψ] = (Pr[φ] − Pr[φ ∧ ¬ψ]) / Pr[ψ], with all pieces expressed in
//! positive UA[conf].
//!
//! Run with `cargo run --example data_cleaning`.

use engine::{EvalConfig, UEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::CleaningWorkload;

fn main() {
    let workload = CleaningWorkload {
        num_records: 6,
        alternatives_per_record: 3,
        num_cities: 3,
        seed: 11,
    };
    let db = workload.database();
    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(5);

    // The dirty input.
    println!("dirty records (RecId, Name, City, Weight):");
    for t in workload.dirty().iter() {
        println!("  {t}");
    }

    // Cities that host at least one cleaned record with confidence >= 0.8.
    let confident = CleaningWorkload::confident_city_query(0.8, 0.02, 0.05);
    let out = engine
        .evaluate(&db, &confident, &mut rng)
        .expect("confident-city query evaluates");
    println!("\ncities hosting a cleaned record with confidence >= 0.8:");
    for row in out.result.relation.iter() {
        println!("  {}", row.tuple);
    }

    // Conditional probability under the egd "one city per name":
    // Theorem 4.4 rewrites Pr[φ ∧ ψ] = Pr[φ] − Pr[φ ∧ ¬ψ] where ¬ψ
    // ("some name straddles two cities") is existential.
    let read_probability = |query| -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let out = engine
            .evaluate(&db, &query, &mut rng)
            .expect("egd subquery");
        let probability = out
            .result
            .relation
            .iter()
            .next()
            .and_then(|row| row.tuple[0].as_f64())
            .unwrap_or(0.0);
        probability
    };
    let p_phi = read_probability(CleaningWorkload::egd_phi_query(0));
    let p_violation = read_probability(CleaningWorkload::egd_violation_query(0));
    let p_and = (p_phi - p_violation).max(0.0);
    println!("\nPr[some record cleans into city0]              = {p_phi:.4}");
    println!("Pr[that ∧ some name straddles two cities]       = {p_violation:.4}");
    println!("Pr[that ∧ the one-city-per-name egd holds]      = {p_and:.4}   (Theorem 4.4)");
}
