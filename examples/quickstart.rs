//! Quickstart: the coin-bag example of the paper (Example 2.2), end to end.
//!
//! We pick a coin from a bag of two fair and one double-headed coin, toss it
//! twice, observe two heads, and ask for the posterior probability of each
//! coin type — all expressed in the Uncertainty Algebra and evaluated both
//! exactly and with approximate confidence computation.
//!
//! Run with `cargo run --example quickstart`.

use engine::{ConfidenceMode, EvalConfig, UEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::coins;

fn main() {
    // The complete input relations (Coins, Faces, Tosses) as a U-relational
    // database.
    let db = coins::coin_udatabase();

    // U := π_{CoinType, P1/P2 → P}(ρ_{P→P1}(conf(T)) ⋈ ρ_{P→P2}(conf(π_∅(T))))
    // where T restricts the chosen coin to the worlds in which both observed
    // tosses came up heads.
    let query = coins::query_u(2);
    println!("query U:\n  {query}\n");

    // Exact evaluation.
    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let output = engine
        .evaluate(&db, &query, &mut rng)
        .expect("exact evaluation succeeds");
    println!("posterior after observing two heads (exact):");
    for row in output.result.relation.iter() {
        println!("  {}", row.tuple);
    }

    // The same query with the Karp-Luby FPRAS substituted for exact
    // confidence computation (conf_{ε,δ} with ε = 0.05, δ = 0.01).
    let approx_engine = UEngine::new(EvalConfig {
        confidence: ConfidenceMode::Fpras {
            epsilon: 0.05,
            delta: 0.01,
        },
        ..EvalConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let output = approx_engine
        .evaluate(&db, &query, &mut rng)
        .expect("approximate evaluation succeeds");
    println!("\nposterior after observing two heads (Karp-Luby, eps = 0.05):");
    for row in output.result.relation.iter() {
        println!("  {}", row.tuple);
    }
    println!(
        "\nKarp-Luby samples drawn: {}",
        output.stats.karp_luby_samples
    );
    println!("paper's expected posteriors: fair -> 1/3, 2headed -> 2/3");
}
