//! Regression suite for σ̂ candidate pruning: evaluating the coins, sensors
//! and cleaning workloads with pruning enabled must produce exactly the
//! keep/drop decisions of the unpruned Monte Carlo driver, across seeds and
//! decision modes.
//!
//! This holds by construction — pruned candidates are decided from *exact*
//! confidence bounds (so they agree with ground truth), and unpruned
//! candidates keep the per-candidate sub-RNG of their original index (so
//! their sampled decisions are unchanged) — and this suite pins the
//! construction down against regressions.

use engine::{ApproxSelectMode, ConfidenceMode, EvalConfig, EvalStats, UEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urel::UDatabase;
use workloads::{coins, CleaningWorkload, SensorWorkload};

/// The σ̂ workload suites: a name, a database, and a query with at least one
/// approximate selection.
fn suites() -> Vec<(&'static str, UDatabase, algebra::Query)> {
    let sensors = SensorWorkload {
        num_sensors: 8,
        readings_per_sensor: 4,
        high_probability: 0.45,
        seed: 29,
    };
    let cleaning = CleaningWorkload {
        num_records: 6,
        alternatives_per_record: 2,
        num_cities: 3,
        seed: 13,
    };
    vec![
        (
            "coins",
            coins::coin_udatabase(),
            coins::query_posterior_filter(2, 0.4),
        ),
        (
            "sensors",
            sensors.database(),
            SensorWorkload::alarm_query(0.7, 0.05, 0.05),
        ),
        (
            "cleaning",
            cleaning.database(),
            CleaningWorkload::confident_city_query(0.6, 0.05, 0.05),
        ),
    ]
}

fn run(
    db: &UDatabase,
    query: &algebra::Query,
    mode: ApproxSelectMode,
    prune: bool,
    seed: u64,
) -> (pdb::Relation, EvalStats) {
    let engine = UEngine::new(
        EvalConfig {
            approx_select: mode,
            confidence: ConfidenceMode::Exact,
            ..EvalConfig::default()
        }
        .with_pruning(prune),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = engine.evaluate(db, query, &mut rng).expect("σ̂ evaluation");
    (out.result.relation.possible_tuples(), out.stats)
}

#[test]
fn pruning_never_changes_keep_drop_decisions() {
    let mut pruned_total = 0u64;
    for (name, db, query) in suites() {
        for mode in [
            ApproxSelectMode::Adaptive,
            ApproxSelectMode::FixedIterations(64),
        ] {
            for seed in 0..8u64 {
                let (with_pruning, stats_on) = run(&db, &query, mode, true, seed);
                let (without_pruning, stats_off) = run(&db, &query, mode, false, seed);
                assert_eq!(
                    with_pruning, without_pruning,
                    "pruning changed the {name} result under {mode:?} (seed {seed})"
                );
                assert_eq!(
                    stats_off.approx_select_pruned, 0,
                    "disabled pruning must not prune"
                );
                assert_eq!(
                    stats_on.approx_select_decisions, stats_off.approx_select_decisions,
                    "candidate sets must agree for {name}"
                );
                assert!(
                    stats_on.karp_luby_samples <= stats_off.karp_luby_samples,
                    "pruning must never cost extra samples ({name}, {mode:?}, seed {seed})"
                );
                pruned_total += stats_on.approx_select_pruned;
            }
        }
    }
    assert!(
        pruned_total > 0,
        "the suites must actually exercise the pruning path"
    );
}

/// The Bonferroni / Hunter–Worsley refinement must shrink the σ̂ ambiguity
/// band on the suites: with the pairwise round enabled (the default), at
/// least as many candidates are decided before sampling as with first-order
/// bounds alone — strictly more somewhere across the suites — at no change
/// in any keep/drop decision and never at extra sampling cost.
#[test]
fn bonferroni_bounds_shrink_the_pruning_band_on_the_workload_suites() {
    let run_with_limit = |db: &UDatabase, query: &algebra::Query, limit: usize, seed: u64| {
        let engine = UEngine::new(
            EvalConfig {
                approx_select: ApproxSelectMode::Adaptive,
                confidence: ConfidenceMode::Exact,
                ..EvalConfig::default()
            }
            .with_pairwise_bound_limit(limit),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = engine.evaluate(db, query, &mut rng).expect("σ̂ evaluation");
        (out.result.relation.possible_tuples(), out.stats)
    };

    let mut extra_pruned_total = 0u64;
    for (name, db, query) in suites() {
        for seed in 0..4u64 {
            let (first_order, stats_first) = run_with_limit(&db, &query, 0, seed);
            let (refined, stats_refined) =
                run_with_limit(&db, &query, confidence::DEFAULT_PAIRWISE_TERM_LIMIT, seed);
            assert_eq!(
                refined, first_order,
                "{name}: bound refinement changed a keep/drop decision (seed {seed})"
            );
            assert!(
                stats_refined.approx_select_pruned >= stats_first.approx_select_pruned,
                "{name}: the pairwise round pruned fewer candidates (seed {seed})"
            );
            assert!(
                stats_refined.karp_luby_samples <= stats_first.karp_luby_samples,
                "{name}: the pairwise round cost extra samples (seed {seed})"
            );
            extra_pruned_total +=
                stats_refined.approx_select_pruned - stats_first.approx_select_pruned;
        }
    }
    assert!(
        extra_pruned_total > 0,
        "the inclusion–exclusion round must decide extra candidates somewhere"
    );
}

/// The bound ladder — first order (limit 0), pairwise + degree-three up to
/// the triple cap (limit 16), full pairwise (limit 48) — must be monotone:
/// larger limits prune at least as many candidates and never cost extra
/// samples, with identical keep/drop decisions at every rung.
#[test]
fn the_bound_ladder_is_monotone_and_decision_stable() {
    let run_with_limit = |db: &UDatabase, query: &algebra::Query, limit: usize, seed: u64| {
        let engine = UEngine::new(
            EvalConfig {
                approx_select: ApproxSelectMode::Adaptive,
                confidence: ConfidenceMode::Exact,
                ..EvalConfig::default()
            }
            .with_pairwise_bound_limit(limit),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = engine.evaluate(db, query, &mut rng).expect("σ̂ evaluation");
        (out.result.relation.possible_tuples(), out.stats)
    };
    let ladder = [
        0,
        confidence::DEFAULT_TRIPLE_TERM_LIMIT,
        confidence::DEFAULT_PAIRWISE_TERM_LIMIT,
    ];
    for (name, db, query) in suites() {
        for seed in 0..4u64 {
            let runs: Vec<_> = ladder
                .iter()
                .map(|&limit| run_with_limit(&db, &query, limit, seed))
                .collect();
            for pair in runs.windows(2) {
                let (looser_result, looser_stats) = &pair[0];
                let (tighter_result, tighter_stats) = &pair[1];
                assert_eq!(
                    looser_result, tighter_result,
                    "{name}: a tighter bound limit changed a decision (seed {seed})"
                );
                assert!(
                    tighter_stats.approx_select_pruned >= looser_stats.approx_select_pruned,
                    "{name}: a tighter limit pruned fewer candidates (seed {seed})"
                );
                assert!(
                    tighter_stats.karp_luby_samples <= looser_stats.karp_luby_samples,
                    "{name}: a tighter limit cost extra samples (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn pruning_agrees_with_the_exact_reference() {
    // Pruned decisions come from exact bounds, so the pruned adaptive result
    // must also match the fully exact engine on these clear-margin suites.
    for (name, db, query) in suites() {
        let exact = UEngine::new(EvalConfig::exact());
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let truth = exact
            .evaluate(&db, &query, &mut rng)
            .expect("exact evaluation")
            .result
            .relation
            .possible_tuples();
        let (pruned, _) = run(&db, &query, ApproxSelectMode::Adaptive, true, 17);
        assert_eq!(pruned, truth, "{name} diverged from the exact reference");
    }
}
