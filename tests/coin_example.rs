//! End-to-end integration test of Example 2.2 / Figure 1: the coin-bag
//! pipeline on both engines, exact and approximate.

use engine::{evaluate_naive, ConfidenceMode, EvalConfig, UEngine};
use pdb::{tuple, Value};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::coins;

fn posterior_of(relation: &urel::URelation, coin: &str) -> f64 {
    relation
        .iter()
        .find(|row| row.tuple[0] == Value::str(coin))
        .map(|row| row.tuple[1].as_f64().expect("posterior is numeric"))
        .expect("coin type present")
}

#[test]
fn example_2_2_posterior_exact_on_both_engines() {
    let udb = coins::coin_udatabase();
    let query = coins::query_u(2);

    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let out = engine
        .evaluate(&udb, &query, &mut rng)
        .expect("succinct engine");
    assert!((posterior_of(&out.result.relation, "fair") - 1.0 / 3.0).abs() < 1e-9);
    assert!((posterior_of(&out.result.relation, "2headed") - 2.0 / 3.0).abs() < 1e-9);

    let reference = evaluate_naive(&coins::coin_database(), &query).expect("reference engine");
    let rel = reference.possible_tuples().expect("result");
    assert_eq!(rel.len(), 2);
    for expected in coins::expected_posterior_two_heads() {
        assert!(
            rel.iter().any(|t| t[0] == Value::str(expected.0)
                && (t[1].as_f64().unwrap() - expected.1).abs() < 1e-9),
            "missing {expected:?} in {rel}"
        );
    }
}

#[test]
fn example_2_2_has_eight_worlds_after_t() {
    let udb = coins::coin_udatabase();
    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let out = engine
        .evaluate(&udb, &coins::query_t(2), &mut rng)
        .expect("T evaluates");
    assert_eq!(out.database.num_possible_worlds(), 8);
    // The chosen-coin marginals of Figure 1(a).
    let r = engine
        .evaluate(&udb, &coins::query_r().conf("P"), &mut rng)
        .expect("conf(R)");
    let rel = r.result.relation.possible_tuples();
    assert!(rel.contains(&tuple!["fair", 2.0 / 3.0]));
    assert!(rel.contains(&tuple!["2headed", 1.0 / 3.0]));
}

#[test]
fn example_2_2_fpras_is_close_to_exact() {
    let udb = coins::coin_udatabase();
    let query = coins::query_u(2);
    let engine = UEngine::new(EvalConfig {
        confidence: ConfidenceMode::Fpras {
            epsilon: 0.05,
            delta: 0.01,
        },
        ..EvalConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let out = engine
        .evaluate(&udb, &query, &mut rng)
        .expect("fpras engine");
    let fair = posterior_of(&out.result.relation, "fair");
    let two_headed = posterior_of(&out.result.relation, "2headed");
    // Both numerator and denominator carry up to 5 % relative error, so allow
    // ~12 % on the ratio.
    assert!((fair - 1.0 / 3.0).abs() < 0.04, "fair posterior {fair}");
    assert!(
        (two_headed - 2.0 / 3.0).abs() < 0.08,
        "2headed posterior {two_headed}"
    );
    assert!(out.stats.karp_luby_samples > 0);
}

#[test]
fn example_6_1_approximate_selection_keeps_the_right_coin() {
    // σ̂_{conf[CoinType]/conf[∅] ≤ 0.5}(T): with the evidence of two heads the
    // fair coin's posterior is 1/3 ≤ 0.5 and the double-headed coin's is 2/3.
    let udb = coins::coin_udatabase();
    let query = coins::query_posterior_filter(2, 0.5);
    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let exact = engine.evaluate(&udb, &query, &mut rng).expect("exact σ̂");
    let exact_tuples = exact.result.relation.possible_tuples();
    assert!(exact_tuples.contains(&tuple!["fair"]));
    assert!(!exact_tuples.contains(&tuple!["2headed"]));

    // The adaptive decision agrees (margins are far from the threshold).
    let adaptive = UEngine::new(EvalConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let out = adaptive
        .evaluate(&udb, &query, &mut rng)
        .expect("adaptive σ̂");
    assert_eq!(out.result.relation.possible_tuples(), exact_tuples);
    assert!(out.result.max_error() <= 0.05 + 1e-9);
}

#[test]
fn generalised_coin_bags_keep_probabilities_consistent() {
    for (fair, double) in [(1i64, 1i64), (3, 2), (5, 1)] {
        let udb = coins::coin_udatabase_with(fair, double, 1);
        let engine = UEngine::new(EvalConfig::exact());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let out = engine
            .evaluate(&udb, &coins::query_r().conf("P"), &mut rng)
            .expect("conf(R)");
        let rel = out.result.relation.possible_tuples();
        let total: f64 = rel.iter().map(|t| t[1].as_f64().unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-9, "marginals sum to {total}");
        let expected_fair = fair as f64 / (fair + double) as f64;
        assert!(rel
            .iter()
            .any(|t| t[0] == Value::str("fair")
                && (t[1].as_f64().unwrap() - expected_fair).abs() < 1e-9));
    }
}
