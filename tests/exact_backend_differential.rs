//! Differential suite for the exact d-DNNF backend and canonical shared
//! sampling.
//!
//! The cost model may answer any individual confidence *exactly* instead of
//! sampling it — that must never change what a query returns beyond
//! replacing an (ε, δ) estimate with the true value.  In particular:
//!
//! * `aconf` answers with the backend enabled equal the exact-confidence
//!   reference (they are no longer estimates at all) and are independent of
//!   the caller's seed;
//! * σ̂ keep/drop decisions are unchanged on the clear-margin workload
//!   suites whichever backend the cost model picks, in both Monte Carlo
//!   decision modes, across seeds;
//! * canonical shared sampling makes approximate answers pure functions of
//!   (content, configuration, ε/δ): two evaluations under *different*
//!   caller seeds agree bit for bit, and the caller's RNG stream still
//!   advances exactly as before (a later draw sees the same state).

use engine::{ApproxSelectMode, ConfidenceMode, EvalConfig, UEngine};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use urel::UDatabase;
use workloads::{coins, CleaningWorkload, SensorWorkload};

const NODE_BUDGET: u32 = confidence::cost::DEFAULT_NODE_BUDGET;

fn sigma_suites() -> Vec<(&'static str, UDatabase, algebra::Query)> {
    let sensors = SensorWorkload {
        num_sensors: 8,
        readings_per_sensor: 4,
        high_probability: 0.45,
        seed: 29,
    };
    let cleaning = CleaningWorkload {
        num_records: 6,
        alternatives_per_record: 2,
        num_cities: 3,
        seed: 13,
    };
    vec![
        (
            "coins",
            coins::coin_udatabase(),
            coins::query_posterior_filter(2, 0.4),
        ),
        (
            "sensors",
            sensors.database(),
            SensorWorkload::alarm_query(0.7, 0.05, 0.05),
        ),
        (
            "cleaning",
            cleaning.database(),
            CleaningWorkload::confident_city_query(0.6, 0.05, 0.05),
        ),
    ]
}

#[test]
fn backend_choice_never_changes_a_sigma_decision() {
    for (name, db, query) in sigma_suites() {
        for mode in [
            ApproxSelectMode::Adaptive,
            ApproxSelectMode::FixedIterations(64),
        ] {
            for seed in 0..6u64 {
                let run = |budget: u32| {
                    let engine = UEngine::new(
                        EvalConfig {
                            approx_select: mode,
                            confidence: ConfidenceMode::Exact,
                            ..EvalConfig::default()
                        }
                        .with_exact_backend(budget),
                    );
                    let mut rng = ChaCha8Rng::seed_from_u64(seed);
                    engine
                        .evaluate(&db, &query, &mut rng)
                        .expect("σ̂ evaluation")
                };
                let sampled = run(0);
                let backed = run(NODE_BUDGET);
                assert_eq!(
                    sampled.result.relation.possible_tuples(),
                    backed.result.relation.possible_tuples(),
                    "{name}: the exact backend changed a decision ({mode:?}, seed {seed})"
                );
                assert!(
                    backed.stats.karp_luby_samples <= sampled.stats.karp_luby_samples,
                    "{name}: the backend cost extra samples ({mode:?}, seed {seed})"
                );
            }
        }
    }
}

#[test]
fn backed_aconf_equals_the_exact_reference_and_ignores_the_seed() {
    let db = coins::coin_udatabase();
    let approximate =
        algebra::parse_query("aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))")
            .unwrap();
    let exact =
        algebra::parse_query("conf(project[CoinType](repairkey[ @ Count](Coins)))").unwrap();

    let reference = {
        let engine = UEngine::new(EvalConfig::exact());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        engine.evaluate(&db, &exact, &mut rng).unwrap()
    };
    let engine = UEngine::new(EvalConfig::default().with_exact_backend(NODE_BUDGET));
    let mut outputs = Vec::new();
    for seed in [7u64, 31337, 0] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        outputs.push(engine.evaluate(&db, &approximate, &mut rng).unwrap());
    }
    for out in &outputs {
        assert_eq!(
            out.result.relation, reference.result.relation,
            "a compiled aconf answer must equal exact model counting"
        );
        assert_eq!(out.stats.karp_luby_samples, 0, "no samples were needed");
        assert!(out.stats.exact_compiled_answers > 0);
        assert_eq!(out.stats.sampled_answers, 0);
    }
}

#[test]
fn shared_sampling_answers_are_seed_independent_but_streams_still_advance() {
    let db = coins::coin_udatabase();
    let query =
        algebra::parse_query("aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))")
            .unwrap();
    let engine = UEngine::new(EvalConfig::default().with_shared_sampling(true));

    let mut rng_a = ChaCha8Rng::seed_from_u64(1);
    let a = engine.evaluate(&db, &query, &mut rng_a).unwrap();
    let mut rng_b = ChaCha8Rng::seed_from_u64(2);
    let b = engine.evaluate(&db, &query, &mut rng_b).unwrap();
    assert_eq!(
        a.result.relation, b.result.relation,
        "canonical streams must make the answer independent of the caller's seed"
    );
    assert!(a.stats.karp_luby_samples > 0, "still a sampled answer");

    // The master-seed draw still happens, so the caller's stream is exactly
    // where a non-shared evaluation would have left it.
    let mut plain_rng = ChaCha8Rng::seed_from_u64(1);
    let plain_engine = UEngine::new(EvalConfig::default());
    plain_engine.evaluate(&db, &query, &mut plain_rng).unwrap();
    assert_eq!(
        rng_a.next_u64(),
        plain_rng.next_u64(),
        "shared sampling must not change how much caller randomness is consumed"
    );
}
