//! Randomized fault-storm property test for the concurrent serving path
//! (compiled only under the `failpoints` feature:
//! `cargo test -p uadb --features failpoints`).
//!
//! N concurrent sessions evaluate a mixed workload (exact confidence,
//! Monte Carlo `aconf`, a pure query, and a deliberately over-budgeted
//! heavy `aconf`) while an updater thread toggles the database between two
//! known states and every failpoint in the engine injects errors, panics,
//! latency and deadline burns.  The invariant under storm:
//!
//! * every request resolves to a **full answer bit-identical to a cold
//!   evaluation** over one of the two database states with the same seed,
//! * or to a **degraded bounds answer** whose intervals contain the true
//!   confidence of one of the two states,
//! * or to a **classified error** (transient, or a tagged deadline) —
//!   never a panic escaping the engine, never an unclassified failure.
//!
//! After the storm clears, the engine must serve warm answers bit-identical
//! to a cold engine over the final state: no stale or quarantine-leaked
//! pool state survives.
//!
//! Set `FAULT_STORM_SMOKE=1` to run a reduced CI-smoke variant.

#![cfg(feature = "failpoints")]

use engine::faults::{self, FaultPlan};
use engine::{
    DegradedReason, EngineError, EvalConfig, EvaluatedRelation, Request, RetryPolicy,
    ServingAnswer, ServingEngine,
};
use pdb::{relation, schema, tuple};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use urel::{UDatabase, URelation};

/// State A: counts (2, 1) — confidences fair 2/3, 2headed 1/3.
fn coins_a() -> pdb::Relation {
    relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]]
}

/// State B: counts (1, 1) — confidences 1/2 each.
fn coins_b() -> pdb::Relation {
    relation![schema!["CoinType", "Count"]; ["fair", 1], ["2headed", 1]]
}

fn db_with(coins: pdb::Relation) -> UDatabase {
    UDatabase::from_complete_relations([("Coins", coins)])
}

const Q_EXACT: &str = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
const Q_SAMPLE: &str = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
const Q_PURE: &str = "poss(Coins)";
/// Needs tens of millions of samples: its short per-request deadline always
/// expires mid-sampling, exercising the degraded bounds path under storm.
const Q_HEAVY: &str = "aconf[0.0005, 0.01](project[CoinType](repairkey[ @ Count](Coins)))";

const QUERIES: [&str; 3] = [Q_EXACT, Q_SAMPLE, Q_PURE];

fn seed_of(session: usize, round: usize) -> u64 {
    (session as u64) * 1_000 + round as u64
}

/// True confidence of one output tuple under states A and B.
fn true_confidences(t: &pdb::Tuple) -> (f64, f64) {
    if *t == tuple!["fair"] {
        (2.0 / 3.0, 1.0 / 2.0)
    } else {
        assert_eq!(*t, tuple!["2headed"]);
        (1.0 / 3.0, 1.0 / 2.0)
    }
}

/// Drives every registered failpoint site individually: arms a full-rate
/// plan confined to one site and crosses it on the serving path, asserting
/// the injection lands where the registry claims.  This test is also the
/// anchor for the `xtask lint` failpoint cross-check — every site name in
/// `engine::faults::{SITES, COST_SITES, CORRUPT_SITES}` must appear below
/// as a string literal, and stale literals here fail the lint.
#[test]
fn every_registered_site_injects_where_it_claims() {
    let _guard = faults::exclusive();
    let config = EvalConfig::default();
    let full = |site| {
        FaultPlan::storm(1, 1_000_000)
            .with_kinds(faults::ERROR)
            .at(site)
    };

    // The four fallible sites surface as a classified `Injected` error
    // naming the site that fired.
    for (site, query) in [
        ("admission", Q_EXACT),
        ("prepare", Q_EXACT),
        ("cold-eval", Q_EXACT),
        ("estimate", Q_SAMPLE),
    ] {
        let serving = ServingEngine::new(config, db_with(coins_a())).unwrap();
        faults::arm(&full(site));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = serving.evaluate(query, &mut rng).unwrap_err();
        faults::disarm();
        assert_eq!(
            err,
            EngineError::Injected { site },
            "site {site:?} must inject its own classified error"
        );
    }

    // `absorb` is cost-only: a fault drops the pool absorb, which is a
    // legal cache miss — the answer itself must still be exact.
    {
        let serving = ServingEngine::new(config, db_with(coins_a())).unwrap();
        let oracle = ServingEngine::new(config, db_with(coins_a())).unwrap();
        faults::arm(&full("absorb"));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let out = serving.evaluate(Q_EXACT, &mut rng).unwrap();
        let injected = faults::injected_count();
        faults::disarm();
        assert!(injected > 0, "the absorb probe must fire on a cold eval");
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let truth = oracle.evaluate(Q_EXACT, &mut rng).unwrap();
        assert_eq!(out.result.relation, truth.result.relation);
    }

    // `patch` is cost-only too: a fault demotes the pool slot instead of
    // patching it, and the next evaluation recomputes it from scratch.  A
    // patch is only attempted for a pure sub-plan off the stateful spine,
    // so the query joins a pure `Labels` scan against a Coins repair-key.
    {
        let labels = relation![schema!["CoinType", "Label"]; ["fair", "ok"], ["2headed", "trick"]];
        let db = UDatabase::from_complete_relations([("Coins", coins_a()), ("Labels", labels)]);
        let touching = "aconf[0.3, 0.1](project[Label](join(repairkey[ @ Count](Coins), Labels)))";
        let serving = ServingEngine::new(config, db.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        serving.evaluate(touching, &mut rng).unwrap();
        let old = serving.database().relation("Labels").unwrap().clone();
        let mut new = old.clone();
        new.insert(urel::Condition::always(), tuple!["2headed", "sneaky"])
            .unwrap();
        let delta = old.diff(&new).unwrap();
        faults::arm(&full("patch"));
        serving.apply_deltas([("Labels", delta)]).unwrap();
        let injected = faults::injected_count();
        faults::disarm();
        assert!(
            injected > 0,
            "the patch probe must fire on a pure-slot delta"
        );
        let mut db_after = db;
        db_after.set_relation("Labels".to_owned(), new, true);
        let oracle = ServingEngine::new(config, db_after).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let warm = serving.evaluate(touching, &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let truth = oracle.evaluate(touching, &mut rng).unwrap();
        assert_eq!(warm.result.relation, truth.result.relation);
    }

    // `storage` corrupts checkpoint segments on the way to disk; the digest
    // check must reject the checkpoint on restore rather than decode it.
    {
        let serving = ServingEngine::new(config, db_with(coins_a())).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "uadb-fault-site-ckpt-{}-{:x}",
            std::process::id(),
            seed_of(0, 0)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        faults::arm(&full("storage"));
        serving.checkpoint(&dir).unwrap();
        let injected = faults::injected_count();
        faults::disarm();
        assert!(injected > 0, "the storage probe must corrupt a segment");
        match ServingEngine::restore(config, &dir) {
            Err(EngineError::Storage { .. }) => {}
            Err(other) => panic!("expected a storage rejection, got {other:?}"),
            Ok(_) => panic!("a corrupted checkpoint must not restore"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn fault_storm_keeps_answers_exact_degraded_or_classified() {
    let smoke = std::env::var("FAULT_STORM_SMOKE").is_ok();
    let sessions = if smoke { 2 } else { 4 };
    let rounds = if smoke { 4 } else { 12 };
    let toggles = if smoke { 8 } else { 30 };

    let config = EvalConfig::default();
    let serving = ServingEngine::new(config, db_with(coins_a())).unwrap();

    // Cold ground truths for both database states, computed *before* the
    // storm is armed (the registry is process-global, so an armed oracle
    // would be faulted too).  One clean engine per state serves as the cold
    // oracle for every seed, by the engine's warm ≡ cold invariant.
    let oracle_a = ServingEngine::new(config, db_with(coins_a())).unwrap();
    let oracle_b = ServingEngine::new(config, db_with(coins_b())).unwrap();
    let truth = |oracle: &ServingEngine, text: &str, seed: u64| -> EvaluatedRelation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        oracle
            .evaluate(text, &mut rng)
            .expect("clean oracle")
            .result
    };
    // (session, round) → the two states' cold truths for that round's query
    // (heavy rounds are excluded: their deadline guarantees they never
    // complete in full, and they are validated via their bounds instead).
    let mut truths: HashMap<(usize, usize), (EvaluatedRelation, EvaluatedRelation)> =
        HashMap::new();
    for s in 0..sessions {
        for r in 0..rounds {
            if r % 4 == 3 {
                continue;
            }
            let text = QUERIES[(s + r) % QUERIES.len()];
            let seed = seed_of(s, r);
            truths.insert(
                (s, r),
                (truth(&oracle_a, text, seed), truth(&oracle_b, text, seed)),
            );
        }
    }

    // The registry is process-global: hold the storm lock for both phases.
    let _guard = faults::exclusive();
    faults::arm(&FaultPlan::storm(0xdead_5eed, 200_000));

    std::thread::scope(|scope| {
        let serving = &serving;
        let truths = &truths;
        // Updater: toggles Coins between the two states for the duration of
        // the storm (exercising invalidation, and the absorb/patch
        // failpoints, which only drop pool state).
        scope.spawn(move || {
            for i in 0..toggles {
                let next = if i % 2 == 0 { coins_b() } else { coins_a() };
                serving
                    .update_relations([("Coins", URelation::from_complete(&next))])
                    .unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        for s in 0..sessions {
            scope.spawn(move || {
                let mut session = serving.session().with_retry_policy(RetryPolicy {
                    max_retries: 4,
                    base_backoff: Duration::from_micros(200),
                    max_backoff: Duration::from_millis(2),
                    jitter_seed: s as u64,
                });
                for r in 0..rounds {
                    let seed = seed_of(s, r);
                    let mut rng = ChaCha8Rng::seed_from_u64(seed);
                    // Every fourth round over-budgets the heavy query so the
                    // degraded bounds path runs under storm too.
                    let heavy = r % 4 == 3;
                    let request = if heavy {
                        Request::new(Q_HEAVY)
                            .with_deadline(Instant::now() + Duration::from_millis(10))
                    } else {
                        Request::new(QUERIES[(s + r) % QUERIES.len()])
                    };
                    match session.evaluate_degradable(&request, &mut rng) {
                        Ok(ServingAnswer::Full(out)) => {
                            // Heavy rounds cannot complete within their
                            // deadline; everything else must be
                            // bit-identical to a cold run over one of the
                            // two states with the same seed.
                            assert!(!heavy, "session {s} round {r}: heavy query finished");
                            let (a, b) = &truths[&(s, r)];
                            let matches_a =
                                out.result.relation == a.relation && out.result.errors == a.errors;
                            let matches_b =
                                out.result.relation == b.relation && out.result.errors == b.errors;
                            assert!(
                                matches_a || matches_b,
                                "session {s} round {r}: full answer matches neither \
                                 state's cold truth"
                            );
                        }
                        Ok(ServingAnswer::Degraded(d)) => {
                            assert!(matches!(
                                d.reason,
                                DegradedReason::DeadlineExpired | DegradedReason::QueueSaturated
                            ));
                            assert_eq!(d.bounds.len(), 2, "both coin tuples get bounds");
                            for (t, bounds) in &d.bounds {
                                let (pa, pb) = true_confidences(t);
                                assert!(
                                    (bounds.lower <= pa && pa <= bounds.upper)
                                        || (bounds.lower <= pb && pb <= bounds.upper),
                                    "session {s} round {r}: bounds [{}, {}] contain \
                                     neither state's true confidence ({pa}, {pb})",
                                    bounds.lower,
                                    bounds.upper
                                );
                            }
                        }
                        Err(e) => {
                            // Retries exhausted or a budget failed: the
                            // error must be classified — transient, or a
                            // stage-tagged deadline.
                            assert!(
                                e.is_transient()
                                    || matches!(e, EngineError::DeadlineExceeded { .. }),
                                "session {s} round {r}: unclassified error {e:?}"
                            );
                        }
                    }
                }
            });
        }
    });

    assert!(
        faults::injected_count() > 0,
        "the storm must actually inject faults"
    );
    faults::disarm();

    // Phase 2: storm cleared, database quiesced at state A.  Warm answers
    // must be bit-identical to a cold engine over state A — no stale or
    // quarantine-leaked pool state may influence a post-storm answer.
    serving
        .update_relations([("Coins", URelation::from_complete(&coins_a()))])
        .unwrap();
    let cold = ServingEngine::new(config, db_with(coins_a())).unwrap();
    for text in QUERIES {
        for seed in [3, 99] {
            let mut warm_rng = ChaCha8Rng::seed_from_u64(seed);
            let mut cold_rng = ChaCha8Rng::seed_from_u64(seed);
            let warm = serving.evaluate(text, &mut warm_rng).unwrap();
            let reference = cold.evaluate(text, &mut cold_rng).unwrap();
            assert_eq!(warm.result.relation, reference.result.relation);
            assert_eq!(warm.result.errors, reference.result.errors);
            assert_eq!(warm.database, reference.database);
        }
    }
}
