//! Planner pipeline tests: the logical-plan → physical-operator pipeline must
//! agree with the possible-worlds ground truth (`evaluate_naive`) on random
//! tuple-independent databases, and the batched parallel confidence
//! estimation must be deterministic and equal to the sequential per-event
//! path under a fixed seed.

use algebra::{parse_query, LogicalPlan, Query};
use confidence::{event_seed, ConfidenceEstimator, FprasEstimator, FprasParams};
use engine::{evaluate_naive, CompiledSpace, EvalConfig, UEngine};
use pdb::{Tuple, Value};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use workloads::TupleIndependentDb;

/// Value-wise tuple comparison with a small tolerance on numeric columns.
fn tuples_close(a: &Tuple, b: &Tuple) -> bool {
    if a.arity() != b.arity() {
        return false;
    }
    a.values()
        .zip(b.values())
        .all(|(x, y)| match (x.as_f64(), y.as_f64()) {
            (Some(p), Some(q)) => (p - q).abs() < 1e-9,
            _ => x == y,
        })
}

/// Runs `query` through the plan pipeline (exact config) and through the
/// possible-worlds reference engine on the same tuple-independent database,
/// asserting equal possible tuples and equal exact confidences.
fn assert_pipeline_matches_ground_truth(gen: TupleIndependentDb, query: &Query) {
    let udb = gen.database();
    let explicit = urel::decode_default(&udb).expect("small database decodes");

    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let piped = engine.evaluate(&udb, query, &mut rng).expect("pipeline");
    let reference = evaluate_naive(&explicit, query).expect("reference");

    let piped_poss = piped.result.relation.possible_tuples();
    let reference_poss = reference.possible_tuples().expect("reference poss");
    assert_eq!(
        piped_poss.len(),
        reference_poss.len(),
        "result sizes differ for {query}: {piped_poss} vs {reference_poss}"
    );
    let compiled = CompiledSpace::compile(piped.database.wtable()).expect("compile");
    for t in piped_poss.iter() {
        let reference_tuple = reference_poss
            .iter()
            .find(|u| tuples_close(t, u))
            .unwrap_or_else(|| panic!("tuple {t} missing from the reference result for {query}"));
        let event = compiled
            .event(&piped.result.relation.conditions_for(t))
            .expect("event");
        let p_piped =
            confidence::exact::probability(&event, compiled.space()).expect("exact probability");
        let p_reference = reference
            .confidence(reference_tuple)
            .expect("reference confidence");
        assert!(
            (p_piped - p_reference).abs() < 1e-9,
            "confidence of {t} differs for {query}: {p_piped} vs {p_reference}"
        );
    }
}

/// A random positive UA query over the generated `T(Id, A, B)`.
fn arb_query() -> impl Strategy<Value = Query> {
    (0usize..5, any::<bool>()).prop_map(|(shape, with_conf)| {
        let base = Query::table("T");
        let shaped = match shape {
            0 => base.project(&["A"]),
            1 => base
                .select(algebra::Predicate::ge(
                    algebra::Expr::attr("A"),
                    algebra::Expr::konst(1),
                ))
                .project(&["Id", "A"]),
            2 => base
                .clone()
                .project(&["A"])
                .natural_join(base.project(&["A", "B"])),
            3 => base.clone().project(&["B"]).union(base.project(&["A"])),
            _ => base.poss(),
        };
        if with_conf {
            shaped.conf("P")
        } else {
            shaped
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Plan-then-execute equals the possible-worlds ground truth on random
    /// tuple-independent databases (Proposition 3.5 / the §3 parsimonious
    /// translation, now routed through the operator DAG).
    #[test]
    fn plan_then_execute_matches_naive_ground_truth(
        num_tuples in 1usize..7,
        seed in 0u64..500,
        query in arb_query(),
    ) {
        let gen = TupleIndependentDb {
            num_tuples,
            domain_size: 3,
            tuple_probability: None,
            seed,
        };
        assert_pipeline_matches_ground_truth(gen, &query);
    }
}

#[test]
fn workload_queries_share_one_plan_shape() {
    // The coin workload's U query contains T twice (via conf(T) and
    // conf(π_∅(T))); the plan must share every repeated subquery, so the
    // node count is far below the syntax-tree size.
    let query = workloads::coins::query_u(2);
    let plan = LogicalPlan::lower(&query).unwrap();
    assert!(
        plan.len() < query.size(),
        "DAG ({} nodes) must be smaller than the syntax tree ({} operators)",
        plan.len(),
        query.size()
    );
    // All shared scans collapse.
    assert_eq!(plan.scans().len(), 3);
}

#[test]
fn batched_parallel_confidence_matches_the_sequential_path() {
    // The engine's `conf_{ε,δ}` operator estimates all tuple lineages as one
    // parallel batch seeded by a single master draw.  Reconstruct that
    // computation sequentially and compare estimate for estimate.
    let gen = TupleIndependentDb {
        num_tuples: 12,
        domain_size: 4,
        tuple_probability: None,
        seed: 11,
    };
    let udb = gen.database();
    let query = parse_query("aconf[0.2, 0.1](T)").unwrap();

    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let out = engine.evaluate(&udb, &query, &mut rng).unwrap();

    // The query triggers exactly one sampling operator, so the master seed is
    // the first draw from an identically seeded RNG.
    let master_seed = ChaCha8Rng::seed_from_u64(42).next_u64();
    let compiled = CompiledSpace::compile(udb.wtable()).unwrap();
    let estimator = FprasEstimator::new(FprasParams::new(0.2, 0.1).unwrap());
    let relation = udb.relation("T").unwrap();
    let prob_idx = out.result.relation.schema().arity() - 1;

    let tuple_events = relation.tuple_events();
    let result_tuples: Vec<Tuple> = out
        .result
        .relation
        .possible_tuples()
        .iter()
        .cloned()
        .collect();
    assert_eq!(result_tuples.len(), tuple_events.len());
    for (i, ((t, conditions), out_t)) in tuple_events.iter().zip(&result_tuples).enumerate() {
        let event = compiled.event(conditions).unwrap();
        let sequential = estimator
            .estimate_event(&event, compiled.space(), event_seed(master_seed, i))
            .unwrap();
        assert_eq!(
            out_t[prob_idx],
            Value::float(sequential.estimate),
            "parallel batch and sequential estimation disagree on {t}"
        );
    }

    // And the whole evaluation is deterministic under the seed.
    let mut rng2 = ChaCha8Rng::seed_from_u64(42);
    let again = engine.evaluate(&udb, &query, &mut rng2).unwrap();
    assert_eq!(out.result.relation, again.result.relation);
    assert_eq!(out.stats, again.stats);
}

#[test]
fn adaptive_approx_select_is_deterministic_under_a_seed() {
    // Adaptive σ̂ decisions run one Figure 3 instance per candidate, in
    // parallel, each on a sub-seeded RNG: two evaluations with the same seed
    // must agree exactly, regardless of thread scheduling.
    let db = workloads::SensorWorkload {
        num_sensors: 5,
        readings_per_sensor: 3,
        high_probability: 0.4,
        seed: 7,
    }
    .database();
    let query = workloads::SensorWorkload::alarm_query(0.6, 0.05, 0.05);
    let engine = UEngine::new(EvalConfig::default());
    let mut a = ChaCha8Rng::seed_from_u64(3);
    let mut b = ChaCha8Rng::seed_from_u64(3);
    let out_a = engine.evaluate(&db, &query, &mut a).unwrap();
    let out_b = engine.evaluate(&db, &query, &mut b).unwrap();
    assert_eq!(out_a.result.relation, out_b.result.relation);
    assert_eq!(out_a.result.errors, out_b.result.errors);
    assert_eq!(out_a.stats, out_b.stats);
}

#[test]
fn term_less_approx_select_decides_every_candidate() {
    // σ̂ with zero confidence terms has one (empty) candidate and decides the
    // predicate on no values; every decision mode must keep it under a true
    // predicate, matching the possible-worlds reference.  (Regression test:
    // an earlier flat-batch chunking dropped the candidate for k = 0.)
    use engine::{ApproxSelectMode, ConfidenceMode};
    let gen = TupleIndependentDb {
        num_tuples: 3,
        domain_size: 2,
        tuple_probability: None,
        seed: 5,
    };
    let udb = gen.database();
    let query = Query::table("T").approx_select(vec![], algebra::Predicate::True, 0.1, 0.1);

    let reference = evaluate_naive(&urel::decode_default(&udb).unwrap(), &query).unwrap();
    assert_eq!(reference.possible_tuples().unwrap().len(), 1);

    for mode in [
        ApproxSelectMode::Exact,
        ApproxSelectMode::Adaptive,
        ApproxSelectMode::FixedIterations(4),
    ] {
        let engine = UEngine::new(EvalConfig {
            approx_select: mode,
            confidence: ConfidenceMode::Exact,
            ..EvalConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = engine.evaluate(&udb, &query, &mut rng).unwrap();
        assert_eq!(
            out.result.relation.possible_tuples().len(),
            1,
            "mode {mode:?} must decide the term-less candidate"
        );
    }
}
