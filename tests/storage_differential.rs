//! Storage-grade differential tests for the out-of-core tier.
//!
//! Three executions of the same plan over the same database and seed must be
//! bit-identical — result relation, content digest, error bounds, statistics,
//! final database state, and the caller's RNG stream:
//!
//! 1. the **row** baseline (the single-threaded, single-batch sequential
//!    schedule),
//! 2. the **columnar** sharded executor (per-attribute arenas probed per
//!    chunk),
//! 3. **columnar + spill** (a tiny byte budget forcing chunk outputs through
//!    digest-verified temporary segment files).
//!
//! And the checkpoint store must uphold the same invariant across process
//! boundaries: after *any* interleaving of `update_relations` / `apply_deltas`
//! commits, a `checkpoint` → `restore` → warm-evaluate answer equals a fresh
//! cold engine over the same content — while a corrupted or truncated
//! checkpoint is rejected with a classified storage error rather than served.

use algebra::{parse_query, LogicalPlan};
use engine::{catalog_of, EngineError, EvalConfig, ServingEngine, UEngine};
use pdb::{Schema, Tuple, Value};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use urel::{UDatabase, URelation};

/// Builds the complete relation `R(K, W)` (repair-key input: key + weight).
fn relation_r(rows: &[(i64, i64)]) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["K", "W"]).unwrap());
    for &(k, w) in rows {
        rel.insert(Tuple::new(vec![Value::Int(k), Value::Int(w)]))
            .unwrap();
    }
    URelation::from_complete(&rel)
}

/// Builds the complete relation `S(K, B)` (a pure join side).
fn relation_s(rows: &[(i64, i64)]) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["K", "B"]).unwrap());
    for &(k, b) in rows {
        rel.insert(Tuple::new(vec![Value::Int(k), Value::Int(b)]))
            .unwrap();
    }
    URelation::from_complete(&rel)
}

fn database(r: &[(i64, i64)], s: &[(i64, i64)]) -> UDatabase {
    let mut db = UDatabase::new();
    db.set_relation("R", relation_r(r), true);
    db.set_relation("S", relation_s(s), true);
    db
}

/// Operator pipelines covering every pure operator the columnar/spill path
/// rewrites (selection, projection, join, product via join of disjoint
/// schemas is exercised inside the planner) plus the stateful spine
/// (repair-key, conf, aconf) the checkpoint store snapshots.
fn pipelines() -> Vec<String> {
    vec![
        "poss(join(R, S))".to_string(),
        "poss(select[K = 1](R))".to_string(),
        "poss(project[B](join(select[W > 1](R), S)))".to_string(),
        "conf(project[K](repairkey[K @ W](R)))".to_string(),
        "aconf[0.4, 0.2](project[B](join(repairkey[K @ W](R), S)))".to_string(),
    ]
}

fn checkpoint_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("uadb-storage-diff-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    /// Row ≡ columnar ≡ spilled, bit for bit, per seed: the sequential
    /// single-batch schedule, the sharded columnar executor, and the
    /// spilling executor under tiny byte budgets all produce the same
    /// relations, digests, stats, final database, and RNG stream.
    #[test]
    fn row_columnar_and_spilled_executions_are_bit_identical(
        r0 in proptest::collection::vec((0i64..5, 1i64..6), 1..12),
        s0 in proptest::collection::vec((0i64..5, 1i64..8), 1..12),
        seed in 0u64..1000,
    ) {
        let db = database(&r0, &s0);
        let catalog = catalog_of(&db).unwrap();
        for (qi, text) in pipelines().iter().enumerate() {
            let query = parse_query(text).unwrap();
            let plan = LogicalPlan::lower_validated(&query, &catalog).unwrap();
            let case_seed = seed.wrapping_mul(31).wrapping_add(qi as u64);

            // Row baseline: sequential schedule, fully resident.
            let row_engine = UEngine::new(EvalConfig::default());
            let mut row_rng = ChaCha8Rng::seed_from_u64(case_seed);
            let row = row_engine
                .evaluate_plan_sequential(&db, &plan, &mut row_rng)
                .unwrap();

            // Columnar sharded, resident; and columnar with spill budgets
            // small enough that every chunk output goes through disk.
            let variants = [
                EvalConfig::default().with_shards(4),
                EvalConfig::default().with_shards(4).with_spill_budget_bytes(64),
                EvalConfig::default().with_shards(1).with_spill_budget_bytes(256),
            ];
            for config in variants {
                let engine = UEngine::new(config);
                let mut rng = ChaCha8Rng::seed_from_u64(case_seed);
                let out = engine.evaluate_plan(&db, &plan, &mut rng).unwrap();
                prop_assert_eq!(
                    &out.result.relation, &row.result.relation,
                    "relation diverged for `{}` under {:?}", text, config
                );
                prop_assert_eq!(
                    out.result.relation.content_digest(),
                    row.result.relation.content_digest()
                );
                prop_assert_eq!(&out.result.errors, &row.result.errors);
                prop_assert_eq!(out.result.complete, row.result.complete);
                prop_assert_eq!(
                    out.stats, row.stats,
                    "stats diverged for `{}` under {:?}", text, config
                );
                prop_assert_eq!(&out.database, &row.database);
                prop_assert_eq!(
                    rng.next_u64(),
                    row_rng.clone().next_u64(),
                    "RNG stream diverged for `{}` under {:?}", text, config
                );
            }
        }
    }

    /// Restored-warm ≡ re-prepared-cold: after an arbitrary interleaving of
    /// full replacements and diff-derived deltas, a checkpointed-and-restored
    /// engine answers every pipeline bit-identically to a fresh cold engine
    /// over the same final content, from the same RNG state.
    #[test]
    fn checkpoint_restore_warm_equals_fresh_cold_under_interleaved_commits(
        r0 in proptest::collection::vec((0i64..4, 1i64..6), 1..8),
        s0 in proptest::collection::vec((0i64..4, 1i64..6), 1..8),
        ops in proptest::collection::vec(
            (0u8..2, any::<bool>(), proptest::collection::vec((0i64..4, 1i64..6), 1..8)),
            1..4,
        ),
        seed in 0u64..1000,
    ) {
        let config = EvalConfig::default();
        let queries = pipelines();
        let serving = ServingEngine::new(config, database(&r0, &s0)).unwrap();

        // Warm every pipeline, interleaving commits between evaluations.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for q in &queries {
            serving.evaluate(q, &mut rng).unwrap();
        }
        for (kind, which, rows) in &ops {
            let (name, target) = if *which {
                ("S", relation_s(rows))
            } else {
                ("R", relation_r(rows))
            };
            match kind {
                0 => serving.update_relations([(name, target)]).unwrap(),
                _ => {
                    let old = serving.database().relation(name).unwrap().clone();
                    let delta = old.diff(&target).unwrap();
                    serving.apply_deltas([(name, delta)]).unwrap();
                }
            }
            // Re-warm one query after each commit so the pool carries a mix
            // of patched, demoted and re-created state into the checkpoint.
            serving.evaluate(&queries[0], &mut rng).unwrap();
        }

        let dir = checkpoint_dir(&format!("interleave-{seed}"));
        serving.checkpoint(&dir).unwrap();
        let restored = ServingEngine::restore(config, &dir).unwrap();
        let final_db = serving.database().clone();

        for (qi, q) in queries.iter().enumerate() {
            let case_seed = seed.wrapping_mul(131).wrapping_add(qi as u64);
            let mut warm_rng = ChaCha8Rng::seed_from_u64(case_seed);
            let warm = restored.evaluate(q, &mut warm_rng).unwrap();

            let cold_engine = ServingEngine::new(config, final_db.clone()).unwrap();
            let mut cold_rng = ChaCha8Rng::seed_from_u64(case_seed);
            let cold = cold_engine.evaluate(q, &mut cold_rng).unwrap();

            prop_assert_eq!(
                &warm.result.relation, &cold.result.relation,
                "restored answer diverged for `{}`", q
            );
            prop_assert_eq!(
                warm.result.relation.content_digest(),
                cold.result.relation.content_digest()
            );
            prop_assert_eq!(&warm.result.errors, &cold.result.errors);
            prop_assert_eq!(warm.result.complete, cold.result.complete);
            prop_assert_eq!(warm.stats, cold.stats, "stats diverged for `{}`", q);
            prop_assert_eq!(&warm.database, &cold.database);
            prop_assert_eq!(warm_rng.next_u64(), cold_rng.next_u64());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A checkpoint whose bytes were tampered with — any segment, any byte — is
/// rejected by `restore` with a classified [`EngineError::Storage`], and the
/// caller's fallback (construct a cold engine from authoritative content)
/// still serves correct answers.  Partial directories (a deleted segment, a
/// missing manifest — what a crash mid-checkpoint leaves) are rejected the
/// same way.
#[test]
fn corrupted_and_partial_checkpoints_fall_back_to_cold() {
    let config = EvalConfig::default();
    let db = database(&[(0, 2), (1, 3), (2, 1)], &[(0, 1), (1, 4)]);
    let serving = ServingEngine::new(config, db.clone()).unwrap();
    let q = "conf(project[K](repairkey[K @ W](R)))";
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    serving.evaluate(q, &mut rng).unwrap();

    let dir = checkpoint_dir("corrupt");
    serving.checkpoint(&dir).unwrap();
    ServingEngine::restore(config, &dir).unwrap();

    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(names.iter().any(|n| n == "MANIFEST"));
    assert!(names.iter().any(|n| n.starts_with("warm-")));
    for name in &names {
        let path = dir.join(name);
        let pristine = std::fs::read(&path).unwrap();
        // A flipped byte early (header), in the middle, and at the end.
        for pos in [0, pristine.len() / 2, pristine.len() - 1] {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            match ServingEngine::restore(config, &dir) {
                Err(EngineError::Storage(_)) => {}
                other => panic!(
                    "byte {pos} of {name} flipped, restore not rejected (ok={})",
                    other.is_ok()
                ),
            }
        }
        // Truncated segment: also a storage error.
        std::fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        assert!(matches!(
            ServingEngine::restore(config, &dir),
            Err(EngineError::Storage(_))
        ));
        std::fs::write(&path, &pristine).unwrap();
    }

    // Partial directory: a listed segment missing entirely.
    let victim = names.iter().find(|n| n.starts_with("rel-")).unwrap();
    let bytes = std::fs::read(dir.join(victim)).unwrap();
    std::fs::remove_file(dir.join(victim)).unwrap();
    assert!(matches!(
        ServingEngine::restore(config, &dir),
        Err(EngineError::Storage(_))
    ));
    std::fs::write(dir.join(victim), &bytes).unwrap();

    // The documented fallback: on a storage error, serve cold from
    // authoritative content — and that engine answers correctly.
    std::fs::remove_file(dir.join("MANIFEST")).unwrap();
    let engine = match ServingEngine::restore(config, &dir) {
        Ok(engine) => engine,
        Err(EngineError::Storage(_)) => ServingEngine::new(config, db.clone()).unwrap(),
        Err(other) => panic!("unclassified restore failure: {other}"),
    };
    let mut cold_rng = ChaCha8Rng::seed_from_u64(9);
    let cold = engine.evaluate(q, &mut cold_rng).unwrap();
    let reference = ServingEngine::new(config, db).unwrap();
    let mut ref_rng = ChaCha8Rng::seed_from_u64(9);
    let expect = reference.evaluate(q, &mut ref_rng).unwrap();
    assert_eq!(cold.result.relation, expect.result.relation);
    assert_eq!(engine.stats().cold_evaluations, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `storage` failpoint flips one deterministic bit of a checkpoint
/// segment as it is written: the resulting checkpoint must be rejected by
/// `restore`, and a clean re-checkpoint after the storm restores warm
/// service (compiled only with `--features failpoints`).
#[cfg(feature = "failpoints")]
#[test]
fn storage_failpoint_corruption_is_caught_by_restore() {
    use engine::faults::{self, FaultPlan};

    let config = EvalConfig::default();
    let db = database(&[(0, 2), (1, 3)], &[(0, 1)]);
    let serving = ServingEngine::new(config, db).unwrap();
    let q = "conf(project[K](repairkey[K @ W](R)))";
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    serving.evaluate(q, &mut rng).unwrap();

    let _guard = faults::exclusive();
    // Rate 1e6 ppm: every segment write is corrupted, deterministically.
    faults::arm(&FaultPlan::storm(0xC0FF_EE00, 1_000_000).at("storage"));
    let dir = checkpoint_dir("failpoint");
    serving.checkpoint(&dir).unwrap();
    faults::disarm();
    assert!(matches!(
        ServingEngine::restore(config, &dir),
        Err(EngineError::Storage(_))
    ));

    // Storm cleared: a clean checkpoint restores warm service.
    serving.checkpoint(&dir).unwrap();
    let restored = ServingEngine::restore(config, &dir).unwrap();
    let mut warm_rng = ChaCha8Rng::seed_from_u64(13);
    let warm = restored.evaluate(q, &mut warm_rng).unwrap();
    let reference = ServingEngine::new(config, serving.database().clone()).unwrap();
    let mut cold_rng = ChaCha8Rng::seed_from_u64(13);
    let cold = reference.evaluate(q, &mut cold_rng).unwrap();
    assert_eq!(warm.result.relation, cold.result.relation);
    assert_eq!(warm.stats, cold.stats);
    assert_eq!(restored.stats().warm_evaluations, 1);
    assert_eq!(restored.stats().cold_evaluations, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
