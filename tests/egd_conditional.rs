//! Theorem 4.4 integration test: conditional probabilities under an
//! equality-generating dependency, computed in positive UA[conf] via
//! `Pr[φ ∧ ψ] = Pr[φ] − Pr[φ ∧ ¬ψ]`, cross-checked against a direct
//! possible-worlds computation.

use engine::{evaluate_naive, EvalConfig, UEngine};
use pdb::{ProbabilisticDatabase, Value};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::CleaningWorkload;

fn single_probability(db: &urel::UDatabase, query: algebra::Query) -> f64 {
    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let out = engine
        .evaluate(db, &query, &mut rng)
        .expect("query evaluates");
    let probability = out
        .result
        .relation
        .iter()
        .next()
        .and_then(|row| row.tuple[0].as_f64())
        .unwrap_or(0.0);
    probability
}

/// Directly computes Pr[some cleaned record in `city` ∧ the one-city-per-name
/// egd holds] by enumerating the repairs in the possible-worlds engine.
fn direct_probability(workload: &CleaningWorkload, city: &str) -> f64 {
    let pdb =
        ProbabilisticDatabase::from_complete_relations([("Dirty", workload.dirty())]).unwrap();
    let reference = evaluate_naive(&pdb, &CleaningWorkload::cleaned_query()).unwrap();
    let mut total = 0.0;
    for world in reference.database.worlds() {
        let rel = world.relation(&reference.result).unwrap();
        let schema = rel.schema();
        let name_idx = schema.index_of("Name").unwrap();
        let city_idx = schema.index_of("City").unwrap();
        let in_city = rel.iter().any(|t| t[city_idx] == Value::str(city));
        let egd_holds = rel.iter().all(|a| {
            rel.iter()
                .all(|b| a[name_idx] != b[name_idx] || a[city_idx] == b[city_idx])
        });
        if in_city && egd_holds {
            total += world.probability();
        }
    }
    total
}

#[test]
fn theorem_4_4_rewriting_matches_direct_computation() {
    for seed in [13u64, 14, 15] {
        let workload = CleaningWorkload {
            num_records: 6,
            alternatives_per_record: 2,
            num_cities: 3,
            seed,
        };
        let db = workload.database();
        for city in 0..workload.num_cities {
            let p_phi = single_probability(&db, CleaningWorkload::egd_phi_query(city));
            let p_violation = single_probability(&db, CleaningWorkload::egd_violation_query(city));
            let rewritten = (p_phi - p_violation).max(0.0);
            let direct = direct_probability(&workload, &format!("city{city}"));
            assert!(
                (rewritten - direct).abs() < 1e-9,
                "seed {seed}, city {city}: rewriting gives {rewritten}, direct gives {direct}"
            );
        }
    }
}

#[test]
fn egd_probabilities_are_monotone_and_bounded() {
    let workload = CleaningWorkload {
        num_records: 4,
        alternatives_per_record: 3,
        num_cities: 2,
        seed: 20,
    };
    let db = workload.database();
    for city in 0..workload.num_cities {
        let p_phi = single_probability(&db, CleaningWorkload::egd_phi_query(city));
        let p_violation = single_probability(&db, CleaningWorkload::egd_violation_query(city));
        assert!((0.0..=1.0).contains(&p_phi));
        assert!((0.0..=1.0).contains(&p_violation));
        // φ ∧ ¬ψ implies φ, so its probability cannot exceed Pr[φ].
        assert!(p_violation <= p_phi + 1e-9);
    }
}
