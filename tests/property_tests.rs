//! Cross-crate property tests: representation round trips, agreement of the
//! exact confidence methods, Karp–Luby accuracy, ε-orthotope homogeneity,
//! parser round trips, and equality of the sharded/parallel executor with
//! the sequential single-batch reference schedule on randomly generated
//! inputs.

use approx::{LinearIneq, Orthotope};
use confidence::{exact, Assignment, DnfEvent, FprasParams, ProbabilitySpace};
use engine::{EvalConfig, UEngine};
use pdb::Value;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urel::{decode_default, encode, Condition, UDatabase, URelation, Var};

// ---- random generators -----------------------------------------------------

/// Builds a tuple-independent database `T(Id, A)` from `(percent, a)` pairs.
fn tuple_independent_db(tuples: Vec<(u32, i64)>) -> UDatabase {
    let mut db = UDatabase::new();
    let schema = pdb::Schema::new(["Id", "A"]).unwrap();
    let mut rel = URelation::empty(schema);
    for (i, (percent, a)) in tuples.into_iter().enumerate() {
        let var = Var::new(format!("t{i}"));
        db.wtable_mut()
            .add_bool_variable(var.clone(), percent as f64 / 100.0)
            .unwrap();
        rel.insert(
            Condition::new([(var, Value::Bool(true))]).unwrap(),
            pdb::Tuple::new(vec![Value::Int(i as i64), Value::Int(a)]),
        )
        .unwrap();
    }
    db.set_relation("T", rel, false);
    db
}

/// A random small tuple-independent U-relational database (≤ 8 Boolean
/// variables so decoding stays cheap).
fn arb_udatabase() -> impl Strategy<Value = UDatabase> {
    proptest::collection::vec((1u32..99, 0i64..6), 1..8).prop_map(tuple_independent_db)
}

/// A random tuple-independent database large enough to exercise the sharded
/// operator paths (chunking starts at 128 input rows).
fn arb_large_udatabase() -> impl Strategy<Value = UDatabase> {
    proptest::collection::vec((1u32..99, 0i64..6), 1..180).prop_map(tuple_independent_db)
}

/// A random DNF event over ≤ 10 Boolean variables with ≤ 6 terms.
fn arb_event() -> impl Strategy<Value = (DnfEvent, ProbabilitySpace)> {
    (
        proptest::collection::vec(5u32..95, 2..10),
        proptest::collection::vec(
            proptest::collection::vec((0usize..10, 0usize..2), 1..4),
            1..6,
        ),
    )
        .prop_map(|(probs, raw_terms)| {
            let mut space = ProbabilitySpace::new();
            for p in &probs {
                space.add_bool_variable(*p as f64 / 100.0).unwrap();
            }
            let num_vars = probs.len();
            let mut terms = Vec::new();
            for pairs in raw_terms {
                let pairs: Vec<(usize, usize)> =
                    pairs.into_iter().map(|(v, a)| (v % num_vars, a)).collect();
                if let Ok(a) = Assignment::new(pairs) {
                    terms.push(a);
                }
            }
            if terms.is_empty() {
                terms.push(Assignment::new([(0, 0)]).unwrap());
            }
            (DnfEvent::new(terms), space)
        })
}

// ---- properties -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Theorem 3.1: decoding and re-encoding a U-relational database
    /// preserves every tuple confidence.
    #[test]
    fn representation_round_trip_preserves_confidence(db in arb_udatabase()) {
        let explicit = decode_default(&db).unwrap();
        let re_encoded = encode(&explicit).unwrap();
        let decoded_again = decode_default(&re_encoded).unwrap();
        for t in explicit.poss("T").unwrap().iter() {
            let a = explicit.confidence("T", t).unwrap();
            let b = decoded_again.confidence("T", t).unwrap();
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The three exact confidence methods agree with each other and stay in
    /// [0, 1].
    #[test]
    fn exact_methods_agree((event, space) in arb_event()) {
        let p1 = exact::by_enumeration(&event, &space, 1 << 20).unwrap();
        let p2 = exact::by_shannon_expansion(&event, &space).unwrap();
        let p3 = exact::by_inclusion_exclusion(&event, &space, 24).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p1));
        prop_assert!((p1 - p2).abs() < 1e-9, "enumeration {p1} vs shannon {p2}");
        prop_assert!((p1 - p3).abs() < 1e-9, "enumeration {p1} vs incl-excl {p3}");
    }

    /// Simplification and independent-component factorisation never change
    /// the event probability.
    #[test]
    fn event_transformations_preserve_probability((event, space) in arb_event()) {
        let p = exact::by_shannon_expansion(&event, &space).unwrap();
        let simplified = event.simplified();
        let p_simplified = exact::by_shannon_expansion(&simplified, &space).unwrap();
        prop_assert!((p - p_simplified).abs() < 1e-9);
        let components = event.independent_components();
        let mut q = 1.0;
        for c in &components {
            q *= 1.0 - exact::by_shannon_expansion(c, &space).unwrap();
        }
        prop_assert!((p - (1.0 - q)).abs() < 1e-9);
    }

    /// Theorem 5.2: the closed-form ε always produces an orthotope on which
    /// the linear inequality is constant (checked at the corners).
    #[test]
    fn linear_epsilon_is_homogeneous(
        coeffs in proptest::collection::vec(-200i32..200, 1..5),
        values in proptest::collection::vec(5u32..95, 5),
        slack in 1u32..50,
    ) {
        let k = coeffs.len();
        let coeffs: Vec<f64> = coeffs.iter().map(|c| *c as f64 / 100.0).collect();
        let point: Vec<f64> = values.iter().take(k).map(|v| *v as f64 / 100.0).collect();
        prop_assume!(point.len() == k);
        let lhs: f64 = coeffs.iter().zip(&point).map(|(a, x)| a * x).sum();
        let ineq = LinearIneq::new(coeffs, lhs - slack as f64 / 100.0);
        prop_assume!(ineq.eval(&point).unwrap());
        let eps = match ineq.epsilon_max(&point) {
            Ok(e) => e.min(0.999),
            Err(_) => return Ok(()),
        };
        prop_assume!(eps > 1e-6);
        let orthotope = Orthotope::relative(&point, eps * 0.999).unwrap();
        for corner in orthotope.corners() {
            prop_assert!(ineq.eval(&corner).unwrap(), "corner {corner:?} flips {ineq}");
        }
    }

    /// The Karp–Luby FPRAS stays within its relative-error budget for the
    /// vast majority of seeds (allowing the δ fraction of failures over the
    /// whole property run would be flaky, so ε is tested with head-room).
    #[test]
    fn fpras_is_accurate((event, space) in arb_event(), seed in 0u64..1000) {
        let exact_p = exact::by_shannon_expansion(&event, &space).unwrap();
        prop_assume!(exact_p > 0.01);
        let params = FprasParams::new(0.25, 0.01).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let estimate = confidence::approximate_confidence(&event, &space, params, &mut rng)
            .unwrap()
            .estimate;
        // ε = 0.25 with δ = 0.01: a violation by more than 1.5× the budget in
        // a single sampled run would indicate a real bug rather than noise.
        prop_assert!(
            (estimate - exact_p).abs() <= 0.375 * exact_p,
            "estimate {estimate} too far from {exact_p}"
        );
    }

    /// The sharded/parallel slot executor is bit-identical to the sequential
    /// single-batch reference schedule on random tuple-independent databases,
    /// for a fixed seed — across pure relational plans, exact and FPRAS
    /// confidence computation, and adaptive σ̂ (with candidate pruning on its
    /// default setting).
    #[test]
    fn sharded_executor_equals_sequential(db in arb_large_udatabase(), seed in 0u64..500) {
        use algebra::{ConfTerm, Expr, Predicate, Query};
        let queries = vec![
            algebra::parse_query("conf(project[A](T))").unwrap(),
            algebra::parse_query("aconf[0.5, 0.3](project[A](T))").unwrap(),
            algebra::parse_query("join(T, select[A >= 2](T))").unwrap(),
            Query::table("T").approx_select(
                vec![ConfTerm::new("P1", ["A"])],
                Predicate::ge(Expr::attr("P1"), Expr::konst(0.357)),
                0.1,
                0.1,
            ),
        ];
        let catalog = engine::catalog_of(&db).unwrap();
        for query in &queries {
            let plan = algebra::LogicalPlan::lower_validated(query, &catalog).unwrap();

            let sharded = UEngine::new(EvalConfig::default().with_shards(6));
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = sharded.evaluate_plan(&db, &plan, &mut rng).unwrap();

            let sequential = UEngine::new(EvalConfig::default().with_shards(1));
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let b = sequential
                .evaluate_plan_sequential(&db, &plan, &mut rng)
                .unwrap();

            prop_assert_eq!(&a.result.relation, &b.result.relation, "relation for {}", query);
            prop_assert_eq!(&a.result.errors, &b.result.errors, "errors for {}", query);
            prop_assert_eq!(a.result.complete, b.result.complete);
            prop_assert_eq!(a.stats, b.stats, "stats for {}", query);
            prop_assert_eq!(&a.database, &b.database, "database for {}", query);
        }
    }

    /// The textual query syntax round-trips through Display → parse for
    /// queries assembled from random building blocks.
    #[test]
    fn parser_round_trips(
        key in prop_oneof![Just(Vec::new()), Just(vec!["A".to_string()])],
        threshold in 1u32..99,
        use_conf in any::<bool>(),
        use_aselect in any::<bool>(),
    ) {
        use algebra::{ConfTerm, Expr, Predicate, Query};
        let key_refs: Vec<&str> = key.iter().map(String::as_str).collect();
        let mut q = Query::table("R").repair_key(&key_refs, "W").select(
            Predicate::ge(Expr::attr("A"), Expr::konst(threshold as f64 / 100.0)),
        );
        if use_aselect {
            q = q.approx_select(
                vec![ConfTerm::new("P1", ["A"])],
                Predicate::ge(Expr::attr("P1"), Expr::konst(0.5)),
                0.05,
                0.05,
            );
        }
        if use_conf {
            q = q.conf("P");
        }
        let text = q.to_string();
        let reparsed = algebra::parse_query(&text).unwrap();
        prop_assert_eq!(reparsed.to_string(), text);
    }
}
