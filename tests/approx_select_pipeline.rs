//! Integration tests of the approximate-selection pipeline on the sensor and
//! cleaning workloads: adaptive decisions match the exact reference whenever
//! the margins are clear, error bounds are honoured, the textual syntax
//! round-trips, and the Theorem 6.7 driver meets its target.

use algebra::parse_query;
use engine::{evaluate_adaptive, ApproxSelectMode, ConfidenceMode, EvalConfig, UEngine};
use pdb::{Tuple, Value};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use workloads::{CleaningWorkload, SensorWorkload};

fn sensor_workload() -> SensorWorkload {
    SensorWorkload {
        num_sensors: 9,
        readings_per_sensor: 4,
        high_probability: 0.4,
        seed: 123,
    }
}

/// Picks a threshold in the widest gap between two adjacent sensor
/// probabilities, so every sensor has a clear margin to the threshold.
fn clear_threshold(workload: &SensorWorkload) -> f64 {
    let mut probs: Vec<f64> = (0..workload.num_sensors)
        .map(|s| workload.exact_high_probability(s))
        .collect();
    probs.push(0.0);
    probs.push(1.0);
    probs.sort_by(f64::total_cmp);
    probs
        .windows(2)
        .max_by(|a, b| (a[1] - a[0]).total_cmp(&(b[1] - b[0])))
        .map(|w| 0.5 * (w[0] + w[1]))
        .unwrap_or(0.5)
}

#[test]
fn adaptive_alarms_match_exact_alarms_on_clear_margins() {
    let workload = sensor_workload();
    let db = workload.database();
    // Pick a threshold that stays clear of every sensor's true probability.
    let threshold = clear_threshold(&workload);
    assert!(
        workload.smallest_margin(threshold) > 0.02,
        "workload accidentally placed a sensor on the boundary (threshold {threshold})"
    );
    let query = SensorWorkload::alarm_query(threshold, 0.02, 0.05);

    let exact = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let exact_out = exact.evaluate(&db, &query, &mut rng).expect("exact");

    let adaptive = UEngine::new(EvalConfig {
        approx_select: ApproxSelectMode::Adaptive,
        confidence: ConfidenceMode::Exact,
        ..EvalConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let adaptive_out = adaptive.evaluate(&db, &query, &mut rng).expect("adaptive");

    assert_eq!(
        exact_out.result.relation.possible_tuples(),
        adaptive_out.result.relation.possible_tuples()
    );
    assert!(adaptive_out.result.max_error() <= 0.05 + 1e-9);
    // Clear margins let the exact-bounds pruning settle candidates without
    // sampling; whatever the bounds cannot decide is sampled.  Together they
    // cover every candidate.
    assert!(adaptive_out.stats.approx_select_pruned > 0);
    assert!(
        adaptive_out.stats.karp_luby_samples > 0
            || adaptive_out.stats.approx_select_pruned
                == adaptive_out.stats.approx_select_decisions
    );
    assert_eq!(adaptive_out.stats.approx_select_operators, 1);

    // With pruning disabled every candidate is sampled, and the keep/drop
    // decisions still match (the regression guarantee of the pruning layer).
    let unpruned_engine = UEngine::new(
        EvalConfig {
            approx_select: ApproxSelectMode::Adaptive,
            confidence: ConfidenceMode::Exact,
            ..EvalConfig::default()
        }
        .with_pruning(false),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let unpruned = unpruned_engine
        .evaluate(&db, &query, &mut rng)
        .expect("unpruned adaptive");
    assert!(unpruned.stats.karp_luby_samples > 0);
    assert_eq!(unpruned.stats.approx_select_pruned, 0);
    assert_eq!(
        unpruned.result.relation.possible_tuples(),
        adaptive_out.result.relation.possible_tuples()
    );

    // Ground truth from the generator agrees with the exact engine.
    let expected: Vec<Tuple> = workload
        .expected_alarms(threshold)
        .into_iter()
        .map(|s| Tuple::new(vec![Value::Int(s as i64)]))
        .collect();
    let exact_tuples = exact_out.result.relation.possible_tuples();
    assert_eq!(exact_tuples.len(), expected.len());
    for t in expected {
        assert!(exact_tuples.contains(&t), "missing {t}");
    }
}

#[test]
fn theorem_6_7_driver_meets_the_error_target() {
    let workload = sensor_workload();
    let db = workload.database();
    let query = SensorWorkload::alarm_query(0.65, 0.05, 0.05);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let out = evaluate_adaptive(&db, &query, 0.05, 0.1, &mut rng).expect("adaptive driver");
    assert!(out.output.result.max_error() <= 0.1);
    assert!(out.iterations_used <= out.l0);
    // The attempts are strictly increasing in l.
    for pair in out.attempts.windows(2) {
        assert!(pair[0].0 < pair[1].0);
    }
}

#[test]
fn textual_syntax_round_trips_for_workload_queries() {
    for query in [
        SensorWorkload::alarm_query(0.5, 0.02, 0.05),
        CleaningWorkload::confident_city_query(0.8, 0.02, 0.05),
        CleaningWorkload::egd_phi_query(1),
        CleaningWorkload::egd_violation_query(0),
        workloads::coins::query_posterior_filter(2, 0.5),
    ] {
        let text = query.to_string();
        let reparsed = parse_query(&text).expect("display output parses");
        assert_eq!(reparsed.to_string(), text);
    }
}

#[test]
fn cleaning_confidence_threshold_results_are_consistent() {
    let workload = CleaningWorkload {
        num_records: 5,
        alternatives_per_record: 2,
        num_cities: 3,
        seed: 77,
    };
    let db = workload.database();
    // Threshold 0: every city with any candidate qualifies; threshold just
    // above 1 excludes everything.
    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let all = engine
        .evaluate(
            &db,
            &CleaningWorkload::confident_city_query(1e-9, 0.05, 0.05),
            &mut rng,
        )
        .expect("low threshold");
    let none = engine
        .evaluate(
            &db,
            &CleaningWorkload::confident_city_query(1.0 + 1e-9, 0.05, 0.05),
            &mut rng,
        )
        .expect("high threshold");
    assert!(!all.result.relation.is_empty());
    assert!(none.result.relation.is_empty());
    // Monotonicity: raising the threshold never adds cities.
    let mid = engine
        .evaluate(
            &db,
            &CleaningWorkload::confident_city_query(0.6, 0.05, 0.05),
            &mut rng,
        )
        .expect("mid threshold");
    assert!(mid.result.relation.len() <= all.result.relation.len());
    for row in mid.result.relation.iter() {
        assert!(all.result.relation.possible_tuples().contains(&row.tuple));
    }
}

#[test]
fn fpras_confidence_mode_composes_with_adaptive_selection() {
    // Both sources of approximation at once: conf_{ε,δ} values inside the
    // pipeline and adaptive σ̂ decisions on top.
    let workload = sensor_workload();
    let db = workload.database();
    let query = SensorWorkload::alarm_query(0.65, 0.05, 0.1);
    let engine = UEngine::new(EvalConfig {
        approx_select: ApproxSelectMode::Adaptive,
        confidence: ConfidenceMode::Fpras {
            epsilon: 0.1,
            delta: 0.05,
        },
        ..EvalConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let out = engine
        .evaluate(&db, &query, &mut rng)
        .expect("composed evaluation");
    // Result is a subset of all sensors and carries bounded error.
    assert!(out.result.relation.len() <= workload.num_sensors);
    assert!(out.result.max_error() <= 0.5);
}
