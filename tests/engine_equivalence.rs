//! Cross-engine equivalence: the succinct U-relational engine and the
//! possible-worlds reference engine must agree on exact results, for the
//! workload queries and for randomly generated positive UA queries over small
//! random databases.

use algebra::{parse_query, Query};
use engine::{evaluate_naive, EvalConfig, UEngine};
use pdb::{ProbabilisticDatabase, Relation, Schema, Tuple, Value};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use urel::UDatabase;
use workloads::coins;

/// Evaluates `query` on both engines over the same complete input relations
/// and asserts the exact confidence of every possible result tuple matches.
fn assert_engines_agree(relations: &[(String, Relation)], query: &Query) {
    let udb =
        UDatabase::from_complete_relations(relations.iter().map(|(n, r)| (n.clone(), r.clone())));
    let pdb = ProbabilisticDatabase::from_complete_relations(
        relations.iter().map(|(n, r)| (n.clone(), r.clone())),
    )
    .expect("well-formed complete database");

    let engine = UEngine::new(EvalConfig::exact());
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let succinct = engine
        .evaluate(&udb, query, &mut rng)
        .expect("succinct engine");
    let reference = evaluate_naive(&pdb, query).expect("reference engine");

    // Same possible tuples, with a numeric tolerance because computed
    // probability columns may differ in the last bits between the two
    // engines (different summation/multiplication orders).
    let succinct_poss = succinct.result.relation.possible_tuples();
    let reference_poss = reference.possible_tuples().expect("reference poss");
    assert_eq!(
        succinct_poss.len(),
        reference_poss.len(),
        "result sizes differ for {query}: {succinct_poss} vs {reference_poss}"
    );
    for t in succinct_poss.iter() {
        let matched = reference_poss.iter().any(|u| tuples_close(t, u));
        assert!(
            matched,
            "tuple {t} missing from the reference result for {query}"
        );
    }

    // Same per-tuple confidence (computed exactly on both sides).
    let compiled = engine::CompiledSpace::compile(succinct.database.wtable()).expect("compile");
    for t in succinct_poss.iter() {
        let event = compiled
            .event(&succinct.result.relation.conditions_for(t))
            .expect("event");
        let p_succinct = confidence::exact::probability(&event, compiled.space()).expect("exact");
        let reference_tuple = reference_poss
            .iter()
            .find(|u| tuples_close(t, u))
            .expect("matched above");
        let p_reference = reference
            .confidence(reference_tuple)
            .expect("reference confidence");
        assert!(
            (p_succinct - p_reference).abs() < 1e-9,
            "confidence of {t} differs for {query}: {p_succinct} vs {p_reference}"
        );
    }
}

/// Value-wise tuple comparison with a small tolerance on numeric columns.
fn tuples_close(a: &Tuple, b: &Tuple) -> bool {
    if a.arity() != b.arity() {
        return false;
    }
    a.values()
        .zip(b.values())
        .all(|(x, y)| match (x.as_f64(), y.as_f64()) {
            (Some(p), Some(q)) => (p - q).abs() < 1e-9,
            _ => x == y,
        })
}

#[test]
fn engines_agree_on_the_coin_workload_queries() {
    let relations = coins::coin_relations();
    for query in [
        coins::query_r(),
        coins::query_s(),
        coins::query_t(1),
        coins::query_t(2),
        coins::query_u(2),
        coins::query_posterior_filter(2, 0.5),
        parse_query("poss(project[CoinType](repairkey[ @ Count](Coins)))").unwrap(),
        parse_query("cert(project[CoinType](repairkey[ @ Count](Coins)))").unwrap(),
        parse_query("union(project[CoinType](Coins), project[CoinType](Faces))").unwrap(),
        parse_query("diffc(project[CoinType](Faces), project[CoinType](Coins))").unwrap(),
    ] {
        assert_engines_agree(&relations, &query);
    }
}

// ---- randomised equivalence -----------------------------------------------

/// A small random complete relation R(A, B, W) with strictly positive weights.
fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..4, 0i64..4, 1i64..5), 1..8).prop_map(|rows| {
        let schema = Schema::new(["A", "B", "W"]).unwrap();
        let mut rel = Relation::empty(schema);
        for (a, b, w) in rows {
            let _ = rel.insert(Tuple::new(vec![
                Value::Int(a),
                Value::Int(b),
                Value::Int(w),
            ]));
        }
        rel
    })
}

/// A random positive UA query over R: repair-key by a random key, then a
/// couple of relational operators, optionally capped by conf.
fn arb_query() -> impl Strategy<Value = Query> {
    let key_choice = prop_oneof![Just(Vec::new()), Just(vec!["A"]), Just(vec!["A", "B"])];
    (key_choice, 0usize..4, any::<bool>()).prop_map(|(key, shape, with_conf)| {
        let key_refs: Vec<&str> = key.to_vec();
        let base = Query::table("R").repair_key(&key_refs, "W");
        let shaped = match shape {
            0 => base.project(&["A"]),
            1 => base.select(algebra::Predicate::ge(
                algebra::Expr::attr("B"),
                algebra::Expr::konst(1),
            )),
            2 => base
                .clone()
                .project(&["A"])
                .natural_join(base.project(&["A", "B"])),
            _ => base
                .project(&["B"])
                .union(Query::table("R").project(&["A"])),
        };
        if with_conf {
            shaped.conf("P")
        } else {
            shaped
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn engines_agree_on_random_positive_queries(rel in arb_relation(), query in arb_query()) {
        // Guard against world-count blow-ups in the reference engine.
        let groups: usize = {
            let key: Vec<&str> = vec![];
            pdb::repair_count(&rel, &key).unwrap_or(usize::MAX)
        };
        prop_assume!(groups <= 512);
        assert_engines_agree(&[("R".to_string(), rel)], &query);
    }
}
