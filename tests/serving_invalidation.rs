//! Serving-layer invalidation correctness: after *any* sequence of
//! `update_relations` calls, a warm-path evaluation must be bit-identical
//! (result relation, error bounds, statistics, final database state) to what
//! a cold `ServingEngine` over the updated database produces from the same
//! RNG state — no matter whether the update killed pooled entries, dropped
//! individual sub-plan results, or touched nothing the queries scan.

use algebra::{ConfTerm, Expr, Predicate, Query};
use engine::{EvalConfig, ServingEngine};
use pdb::{Schema, Tuple, Value};
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use urel::{UDatabase, URelation};

/// Builds the complete relation `R(K, W)` (repair-key input: key + weight).
fn relation_r(rows: &[(i64, i64)]) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["K", "W"]).unwrap());
    for &(k, w) in rows {
        rel.insert(Tuple::new(vec![Value::Int(k), Value::Int(w)]))
            .unwrap();
    }
    URelation::from_complete(&rel)
}

/// Builds the complete relation `S(K, B)` (a pure join side).
fn relation_s(rows: &[(i64, i64)]) -> URelation {
    let mut rel = pdb::Relation::empty(Schema::new(["K", "B"]).unwrap());
    for &(k, b) in rows {
        rel.insert(Tuple::new(vec![Value::Int(k), Value::Int(b)]))
            .unwrap();
    }
    URelation::from_complete(&rel)
}

fn database(r: &[(i64, i64)], s: &[(i64, i64)]) -> UDatabase {
    let mut db = UDatabase::new();
    db.set_relation("R", relation_r(r), true);
    db.set_relation("S", relation_s(s), true);
    db
}

/// The mixed workload: deterministic, sampling, shared-prefix and σ̂
/// queries over `R` and `S`.
fn workload_queries() -> Vec<String> {
    let sigma = Query::table("R")
        .repair_key(&["K"], "W")
        .approx_select(
            vec![ConfTerm::new("P1", ["K"])],
            Predicate::ge(Expr::attr("P1"), Expr::konst(0.4)),
            0.2,
            0.2,
        )
        .to_string();
    vec![
        "conf(project[K](repairkey[K @ W](R)))".to_string(),
        "aconf[0.4, 0.2](project[K](repairkey[K @ W](R)))".to_string(),
        "aconf[0.3, 0.15](project[B](join(repairkey[K @ W](R), S)))".to_string(),
        "poss(join(R, S))".to_string(),
        sigma,
    ]
}

/// One arbitrary content update: `false` replaces `R`, `true` replaces `S`.
fn arb_update() -> impl Strategy<Value = (bool, Vec<(i64, i64)>)> {
    (
        any::<bool>(),
        proptest::collection::vec((0i64..4, 1i64..6), 1..8),
    )
}

/// One arbitrary workload operation for the delta-path property: a full
/// replacement via `update_relations` (kind 0), the same target content
/// shipped as a diff-derived delta via `apply_deltas` (kind 1), or a
/// single-row delta edit (kind 2 — always below the patch-worthiness bound,
/// so it exercises the in-place patch path).
fn arb_op() -> impl Strategy<Value = (u8, bool, Vec<(i64, i64)>)> {
    (
        0u8..3,
        any::<bool>(),
        proptest::collection::vec((0i64..4, 1i64..6), 1..8),
    )
}

proptest! {
    /// After every update, every query's warm answer equals a cold serving
    /// engine's answer over the updated database, bit for bit.
    #[test]
    fn warm_path_is_bit_identical_to_cold_after_updates(
        r0 in proptest::collection::vec((0i64..4, 1i64..6), 1..8),
        s0 in proptest::collection::vec((0i64..4, 1i64..6), 1..8),
        updates in proptest::collection::vec(arb_update(), 1..4),
        seed in 0u64..1000,
    ) {
        let config = EvalConfig::default();
        let db = database(&r0, &s0);
        let queries = workload_queries();
        let serving = ServingEngine::new(config, db).unwrap();

        // Warm every query once.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for q in &queries {
            serving.evaluate(q, &mut rng).unwrap();
        }

        for (round, (which, rows)) in updates.iter().enumerate() {
            let (name, rel) = if *which {
                ("S", relation_s(rows))
            } else {
                ("R", relation_r(rows))
            };
            serving.update_relations([(name, rel)]).unwrap();

            for (qi, q) in queries.iter().enumerate() {
                let case_seed = seed
                    .wrapping_mul(31)
                    .wrapping_add((round * queries.len() + qi) as u64);
                let mut warm_rng = ChaCha8Rng::seed_from_u64(case_seed);
                let warm = serving.evaluate(q, &mut warm_rng).unwrap();

                let cold_serving =
                    ServingEngine::new(config, serving.database().clone()).unwrap();
                let mut cold_rng = ChaCha8Rng::seed_from_u64(case_seed);
                let cold = cold_serving.evaluate(q, &mut cold_rng).unwrap();

                prop_assert_eq!(
                    &warm.result.relation, &cold.result.relation,
                    "relation diverged for `{}` after update #{}", q, round
                );
                prop_assert_eq!(
                    &warm.result.errors, &cold.result.errors,
                    "errors diverged for `{}` after update #{}", q, round
                );
                prop_assert_eq!(warm.result.complete, cold.result.complete);
                prop_assert_eq!(
                    warm.stats, cold.stats,
                    "stats diverged for `{}` after update #{}", q, round
                );
                prop_assert_eq!(
                    &warm.database, &cold.database,
                    "database diverged for `{}` after update #{}", q, round
                );
                // The RNG streams advanced identically too.
                prop_assert_eq!(warm_rng.next_u64(), cold_rng.next_u64());
            }
        }
    }

    /// The delta path composes with full replacements: after *any*
    /// interleaving of `apply_deltas` (patched or demoted slots alike),
    /// `update_relations` and warm evaluations, every query's warm answer
    /// equals a cold serving engine over the final database bit for bit —
    /// patched slots are never silently stale.  `ServingStats` is
    /// cross-checked: a patched slot is patched (not recomputed), so
    /// `subplans_recomputed` may only grow in rounds where something was
    /// demoted, dropped or re-run cold.
    #[test]
    fn delta_interleavings_stay_bit_identical(
        r0 in proptest::collection::vec((0i64..4, 1i64..6), 1..8),
        s0 in proptest::collection::vec((0i64..4, 1i64..6), 1..8),
        ops in proptest::collection::vec(arb_op(), 1..4),
        seed in 0u64..1000,
    ) {
        let config = EvalConfig::default();
        let db = database(&r0, &s0);
        let queries = workload_queries();
        let serving = ServingEngine::new(config, db).unwrap();

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for q in &queries {
            serving.evaluate(q, &mut rng).unwrap();
        }

        for (round, (kind, which, rows)) in ops.iter().enumerate() {
            let (name, target) = if *which {
                ("S", relation_s(rows))
            } else {
                ("R", relation_r(rows))
            };
            let before = serving.stats();
            match kind {
                0 => serving.update_relations([(name, target)]).unwrap(),
                1 => {
                    // The same replacement shipped as a diff-derived delta.
                    let old = serving.database().relation(name).unwrap().clone();
                    let delta = old.diff(&target).unwrap();
                    serving.apply_deltas([(name, delta)]).unwrap();
                }
                _ => {
                    // A single-row edit: insert the first generated row if
                    // absent, else delete it — guaranteed patch-worthy.
                    let old = serving.database().relation(name).unwrap().clone();
                    let mut new = old.clone();
                    let rel = if *which {
                        relation_s(&rows[..1])
                    } else {
                        relation_r(&rows[..1])
                    };
                    let row = rel.iter().next().unwrap().clone();
                    if old.contains_row(&row) {
                        new.remove_row(&row);
                    } else {
                        new.insert(row.condition, row.tuple).unwrap();
                    }
                    let delta = old.diff(&new).unwrap();
                    prop_assert!(delta.magnitude() <= 1);
                    serving.apply_deltas([(name, delta)]).unwrap();
                }
            }
            let after_update = serving.stats();

            for (qi, q) in queries.iter().enumerate() {
                let case_seed = seed
                    .wrapping_mul(131)
                    .wrapping_add((round * queries.len() + qi) as u64);
                let mut warm_rng = ChaCha8Rng::seed_from_u64(case_seed);
                let warm = serving.evaluate(q, &mut warm_rng).unwrap();

                let cold_serving =
                    ServingEngine::new(config, serving.database().clone()).unwrap();
                let mut cold_rng = ChaCha8Rng::seed_from_u64(case_seed);
                let cold = cold_serving.evaluate(q, &mut cold_rng).unwrap();

                prop_assert_eq!(
                    &warm.result.relation, &cold.result.relation,
                    "relation diverged for `{}` after op #{}", q, round
                );
                prop_assert_eq!(&warm.result.errors, &cold.result.errors);
                prop_assert_eq!(warm.result.complete, cold.result.complete);
                prop_assert_eq!(
                    warm.stats, cold.stats,
                    "stats diverged for `{}` after op #{}", q, round
                );
                prop_assert_eq!(
                    &warm.database, &cold.database,
                    "database diverged for `{}` after op #{}", q, round
                );
                prop_assert_eq!(warm_rng.next_u64(), cold_rng.next_u64());
            }

            // Stats cross-check: if the op only patched (nothing demoted,
            // dropped or spine-invalidated), the round's warm evaluations
            // must resume without recomputing a single sub-plan — a patched
            // slot that were stale could only stay bit-identical by being
            // recomputed, so this pins down that the patch itself is live.
            let after_evals = serving.stats();
            prop_assert_eq!(after_evals.subplans_patched, after_update.subplans_patched);
            let nothing_demoted = after_update.subplans_demoted == before.subplans_demoted
                && after_update.subplans_invalidated == before.subplans_invalidated
                && after_update.snapshots_invalidated == before.snapshots_invalidated;
            if nothing_demoted {
                prop_assert_eq!(
                    after_evals.subplans_recomputed, before.subplans_recomputed,
                    "round {} patched in place but still recomputed", round
                );
                prop_assert_eq!(after_evals.cold_evaluations, before.cold_evaluations);
            }
        }
    }

    /// N concurrent sessions over one shared engine — each with its own
    /// seeded RNG and a schedule that interleaves warm and cold evaluations
    /// (every round rotates each session onto a query another session may
    /// or may not have pooled yet) — produce answer streams bit-identical
    /// to the same per-session schedules run sequentially on a fresh
    /// engine, and to cold single-query engines at the same RNG states.
    /// This is the warm ≡ cold invariant extended to the concurrent path:
    /// answers are a function of (text, database, own RNG) only, never of
    /// the pool state other sessions left behind.
    #[test]
    fn concurrent_sessions_are_bit_identical_to_sequential_and_cold(
        r0 in proptest::collection::vec((0i64..4, 1i64..6), 1..8),
        s0 in proptest::collection::vec((0i64..4, 1i64..6), 1..8),
        seed in 0u64..1000,
    ) {
        let config = EvalConfig::default();
        let queries = workload_queries();
        let sessions = queries.len();
        let rounds = 3usize;
        let session_seed = |s: usize| seed.wrapping_add(1 + 1000 * s as u64);

        let shared = ServingEngine::new(config, database(&r0, &s0)).unwrap();
        let concurrent: Vec<Vec<_>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..sessions)
                .map(|s| {
                    let shared = &shared;
                    let queries = &queries;
                    scope.spawn(move || {
                        let mut session = shared.session();
                        let mut rng = ChaCha8Rng::seed_from_u64(session_seed(s));
                        (0..rounds)
                            .map(|round| {
                                let q = &queries[(s + round) % queries.len()];
                                let out = session.evaluate(q, &mut rng).unwrap();
                                // Tap the stream so RNG advancement is
                                // compared too.
                                (out, rng.next_u64())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let shared_stats = shared.stats();
        prop_assert_eq!(
            shared_stats.cold_evaluations + shared_stats.warm_evaluations,
            (sessions * rounds) as u64,
            "every concurrent request must be counted exactly once"
        );

        let sequential_engine = ServingEngine::new(config, database(&r0, &s0)).unwrap();
        for s in 0..sessions {
            let mut rng = ChaCha8Rng::seed_from_u64(session_seed(s));
            for round in 0..rounds {
                let q = &queries[(s + round) % queries.len()];
                // Cold reference: a fresh engine at the same RNG state.
                let mut cold_rng = rng.clone();
                let cold_engine = ServingEngine::new(config, database(&r0, &s0)).unwrap();
                let cold = cold_engine.evaluate(q, &mut cold_rng).unwrap();
                let out = sequential_engine.evaluate(q, &mut rng).unwrap();
                let (conc, conc_tap) = &concurrent[s][round];
                prop_assert_eq!(
                    &conc.result.relation, &out.result.relation,
                    "session {} round {} (`{}`) diverged from sequential", s, round, q
                );
                prop_assert_eq!(&conc.result.errors, &out.result.errors);
                prop_assert_eq!(conc.result.complete, out.result.complete);
                prop_assert_eq!(
                    conc.stats, out.stats,
                    "session {} round {} (`{}`) stats diverged", s, round, q
                );
                prop_assert_eq!(&conc.database, &out.database);
                prop_assert_eq!(
                    &cold.result.relation, &out.result.relation,
                    "session {} round {} (`{}`) diverged from cold", s, round, q
                );
                prop_assert_eq!(&cold.result.errors, &out.result.errors);
                prop_assert_eq!(cold.stats, out.stats);
                prop_assert_eq!(&cold.database, &out.database);
                let tap = rng.next_u64();
                prop_assert_eq!(*conc_tap, tap, "concurrent RNG stream diverged");
                prop_assert_eq!(cold_rng.next_u64(), tap, "cold RNG stream diverged");
            }
        }
    }

    /// Updates that do not intersect a query's footprint keep its warm path:
    /// the pooled entry survives and no evaluation runs cold again.
    #[test]
    fn disjoint_updates_keep_queries_warm(
        s_rows in proptest::collection::vec((0i64..4, 1i64..6), 1..8),
    ) {
        let config = EvalConfig::default();
        let db = database(&[(0, 2), (1, 3)], &[(0, 1)]);
        let serving = ServingEngine::new(config, db).unwrap();
        let q = "aconf[0.4, 0.2](project[K](repairkey[K @ W](R)))";
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        serving.evaluate(q, &mut rng).unwrap();

        serving.update_relations([("S", relation_s(&s_rows))]).unwrap();
        serving.evaluate(q, &mut rng).unwrap();
        let stats = serving.stats();
        prop_assert_eq!(stats.cold_evaluations, 1);
        prop_assert_eq!(stats.warm_evaluations, 1);
        prop_assert_eq!(stats.snapshots_invalidated, 0);
        prop_assert_eq!(stats.subplans_invalidated, 0);
    }
}

/// Commits racing in-flight evaluations must never leave stale state in the
/// pool: evaluator sessions hammer the shared engine while an updater
/// thread storms `update_relations` / `apply_deltas` commits at it.  Once
/// the storm settles, every query served warm from whatever the pool
/// retained must be bit-identical to a cold engine over the final content —
/// which fails if a snapshot captured from a pre-commit database was ever
/// absorbed after the commit's invalidation pass ran (the epoch-guard
/// regression, reviewed on the concurrent front door).
#[test]
fn update_storm_under_concurrent_sessions_leaves_no_stale_pool_state() {
    let config = EvalConfig::default();
    let queries = workload_queries();
    let r_final = [(0, 4), (1, 2), (2, 5)];
    let s0 = [(0, 1), (1, 4), (2, 2)];
    let shared = ServingEngine::new(config, database(&[(0, 2), (1, 3)], &s0)).unwrap();

    std::thread::scope(|scope| {
        for s in 0..4usize {
            let shared = &shared;
            let queries = &queries;
            scope.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(90 + s as u64);
                for round in 0..24usize {
                    let q = &queries[(s + round) % queries.len()];
                    // Answers during the storm reflect *some* committed
                    // database version; only absence of panics/errors is
                    // asserted here, staleness is checked after the join.
                    shared.evaluate(q, &mut rng).unwrap();
                }
            });
        }
        scope.spawn(|| {
            for round in 0..16usize {
                let rows: Vec<(i64, i64)> =
                    (0..3).map(|k| (k, 1 + ((round as i64 + k) % 5))).collect();
                shared.update_relations([("R", relation_r(&rows))]).unwrap();
            }
            // The last commit pins the final content the checks below use.
            shared
                .update_relations([("R", relation_r(&r_final))])
                .unwrap();
        });
    });

    for (i, q) in queries.iter().enumerate() {
        let cold_engine = ServingEngine::new(config, database(&r_final, &s0)).unwrap();
        let mut cold_rng = ChaCha8Rng::seed_from_u64(7 + i as u64);
        let cold = cold_engine.evaluate(q, &mut cold_rng).unwrap();
        let mut warm_rng = ChaCha8Rng::seed_from_u64(7 + i as u64);
        let warm = shared.evaluate(q, &mut warm_rng).unwrap();
        assert_eq!(
            cold.result.relation, warm.result.relation,
            "`{q}` served stale state after the update storm"
        );
        assert_eq!(cold.result.errors, warm.result.errors);
        assert_eq!(cold.database, warm.database);
        assert_eq!(cold_rng.next_u64(), warm_rng.next_u64());
    }
}
