//! Relation schemas: named attribute lists.

use crate::error::{PdbError, Result};
use std::fmt;

/// The schema of a relation: an ordered list of distinct attribute names.
///
/// The paper treats `sch(R)` as a set of attributes but relies on an implicit
/// order for tuples; we make that order explicit and keep attribute names
/// unique within a schema (duplicates arising from `×` are disambiguated by
/// the caller, as in `UR.D`/`US.D` in Section 3).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Schema {
    attrs: Vec<String>,
}

impl Schema {
    /// Creates a schema from attribute names, which must be distinct.
    pub fn new<S: Into<String>>(attrs: impl IntoIterator<Item = S>) -> Result<Self> {
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(PdbError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(Schema { attrs })
    }

    /// The empty schema (for `π_∅`, Boolean queries).
    pub fn empty() -> Self {
        Schema { attrs: Vec::new() }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attribute names in order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Position of attribute `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }

    /// Positions of several attributes, failing on the first unknown one.
    pub fn indices_of(&self, names: &[impl AsRef<str>]) -> Result<Vec<usize>> {
        names
            .iter()
            .map(|n| {
                self.index_of(n.as_ref())
                    .ok_or_else(|| PdbError::UnknownAttribute(n.as_ref().to_owned()))
            })
            .collect()
    }

    /// True if `name` is an attribute of this schema.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Schema of a projection onto `names` (in the given order).
    pub fn project(&self, names: &[impl AsRef<str>]) -> Result<Schema> {
        let idx = self.indices_of(names)?;
        Ok(Schema {
            attrs: idx.iter().map(|&i| self.attrs[i].clone()).collect(),
        })
    }

    /// Concatenates two schemas; duplicate names on the right are prefixed
    /// with `prefix` (mirroring `US.D`-style disambiguation of Section 3).
    pub fn concat(&self, other: &Schema, prefix: &str) -> Result<Schema> {
        let mut attrs = self.attrs.clone();
        for a in &other.attrs {
            if attrs.contains(a) {
                let renamed = format!("{prefix}.{a}");
                if attrs.contains(&renamed) {
                    return Err(PdbError::DuplicateAttribute(renamed));
                }
                attrs.push(renamed);
            } else {
                attrs.push(a.clone());
            }
        }
        Ok(Schema { attrs })
    }

    /// Renames attribute `from` to `to`.
    pub fn rename(&self, from: &str, to: &str) -> Result<Schema> {
        let i = self
            .index_of(from)
            .ok_or_else(|| PdbError::UnknownAttribute(from.to_owned()))?;
        if self.contains(to) && from != to {
            return Err(PdbError::DuplicateAttribute(to.to_owned()));
        }
        let mut attrs = self.attrs.clone();
        attrs[i] = to.to_owned();
        Ok(Schema { attrs })
    }

    /// Returns a new schema with `name` appended (used by `conf`, which adds
    /// the probability column `P`).
    pub fn with_appended(&self, name: &str) -> Result<Schema> {
        if self.contains(name) {
            return Err(PdbError::DuplicateAttribute(name.to_owned()));
        }
        let mut attrs = self.attrs.clone();
        attrs.push(name.to_owned());
        Ok(Schema { attrs })
    }

    /// Attributes of `self` that are not in `other` (set difference, order
    /// preserved).  Used by repair-key to compute `(sch(R) − A⃗) − B`.
    pub fn minus(&self, other: &[impl AsRef<str>]) -> Vec<String> {
        let other: Vec<&str> = other.iter().map(|s| s.as_ref()).collect();
        self.attrs
            .iter()
            .filter(|a| !other.contains(&a.as_str()))
            .cloned()
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.attrs.join(", "))
    }
}

/// Builds a [`Schema`], panicking on duplicate names (intended for literals).
#[macro_export]
macro_rules! schema {
    ($($a:expr),* $(,)?) => {
        $crate::Schema::new(vec![$($a.to_string()),*]).expect("duplicate attribute in schema! literal")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicates() {
        assert!(Schema::new(["A", "B", "A"]).is_err());
        assert!(Schema::new(["A", "B"]).is_ok());
    }

    #[test]
    fn lookup_and_projection() {
        let s = schema!["CoinType", "Count"];
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("Count"), Some(1));
        assert!(s.contains("CoinType"));
        assert!(!s.contains("Face"));
        let p = s.project(&["Count"]).unwrap();
        assert_eq!(p.attrs(), &["Count".to_string()]);
        assert!(s.project(&["Nope"]).is_err());
    }

    #[test]
    fn concat_disambiguates() {
        let s = schema!["A", "B"];
        let t = schema!["B", "C"];
        let c = s.concat(&t, "t").unwrap();
        assert_eq!(
            c.attrs(),
            &[
                "A".to_string(),
                "B".to_string(),
                "t.B".to_string(),
                "C".to_string()
            ]
        );
    }

    #[test]
    fn rename_and_append() {
        let s = schema!["A", "B"];
        let r = s.rename("B", "P1").unwrap();
        assert_eq!(r.attrs(), &["A".to_string(), "P1".to_string()]);
        assert!(s.rename("A", "B").is_err());
        assert!(s.rename("Z", "Q").is_err());
        let a = s.with_appended("P").unwrap();
        assert_eq!(a.arity(), 3);
        assert!(s.with_appended("A").is_err());
    }

    #[test]
    fn minus_preserves_order() {
        let s = schema!["A", "B", "C", "D"];
        assert_eq!(s.minus(&["B", "D"]), vec!["A".to_string(), "C".to_string()]);
        assert_eq!(s.minus(&["X"]).len(), 4);
    }

    #[test]
    fn empty_schema() {
        let e = Schema::empty();
        assert!(e.is_empty());
        assert_eq!(e.arity(), 0);
        assert_eq!(e.to_string(), "()");
    }
}
