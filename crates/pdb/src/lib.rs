//! # Possible-worlds probabilistic data model
//!
//! This crate implements the probabilistic database model of Section 2 of
//! Koch, *"Approximating Predicates and Expressive Queries on Probabilistic
//! Databases"* (PODS 2008): a probabilistic database is a finite weighted set
//! of possible worlds, each a complete relational instance, with
//!
//! * a completeness function `c` marking relations that agree by definition
//!   across all worlds,
//! * tuple confidence `Pr[t ∈ R]` as the total weight of the worlds
//!   containing the tuple,
//! * the `repair-key` uncertainty-introducing operation, and
//! * the product combination `W₁ ⊗ W₂` of independent databases.
//!
//! This is the paper's *nonsuccinct* representation (Proposition 3.5); the
//! succinct U-relational representation is the `urel` crate, and query
//! evaluation over either lives in the `engine` crate.  Because every
//! operation here has straightforward enumerate-all-worlds semantics, this
//! crate doubles as the ground-truth oracle for the approximation machinery.
//!
//! ## Example: picking a coin from the bag (Example 2.2)
//!
//! ```
//! use pdb::{relation, schema, tuple, ProbabilisticDatabase};
//!
//! let mut db = ProbabilisticDatabase::from_complete_relations([
//!     ("Coins", relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]]),
//! ]).unwrap();
//! db.repair_key("Coins", &[], "Count", "Picked").unwrap();
//! let p = db.confidence("Picked", &tuple!["fair", 2]).unwrap();
//! assert!((p - 2.0 / 3.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod database;
mod error;
mod relation;
mod repair_key;
mod schema;
mod tuple;
mod value;
mod world;

pub use database::{ProbabilisticDatabase, DISTRIBUTION_TOLERANCE};
pub use error::{PdbError, Result};
pub use relation::Relation;
pub use repair_key::{repair_count, repairs, Repair};
pub use schema::Schema;
pub use tuple::Tuple;
pub use value::{Value, F64};
pub use world::World;

/// A 128-bit-plus-length content fingerprint of any hashable value: two
/// independently seeded 64-bit hashes plus an explicit size.  A collision
/// would require two distinct values agreeing on both hashes *and* the
/// size — vanishingly unlikely — so caches and serving layers use the
/// triple as a content identity without retaining the value itself.  This
/// is the shared primitive behind [`Relation::content_digest`] and
/// `urel::URelation::content_digest`.
pub fn content_fingerprint<T: std::hash::Hash + ?Sized>(
    value: &T,
    len: usize,
) -> (u64, u64, usize) {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h1 = DefaultHasher::new();
    value.hash(&mut h1);
    let mut h2 = DefaultHasher::new();
    0xC3A5_C85C_97CB_3127_u64.hash(&mut h2);
    value.hash(&mut h2);
    (h1.finish(), h2.finish(), len)
}
