//! # Possible-worlds probabilistic data model
//!
//! This crate implements the probabilistic database model of Section 2 of
//! Koch, *"Approximating Predicates and Expressive Queries on Probabilistic
//! Databases"* (PODS 2008): a probabilistic database is a finite weighted set
//! of possible worlds, each a complete relational instance, with
//!
//! * a completeness function `c` marking relations that agree by definition
//!   across all worlds,
//! * tuple confidence `Pr[t ∈ R]` as the total weight of the worlds
//!   containing the tuple,
//! * the `repair-key` uncertainty-introducing operation, and
//! * the product combination `W₁ ⊗ W₂` of independent databases.
//!
//! This is the paper's *nonsuccinct* representation (Proposition 3.5); the
//! succinct U-relational representation is the `urel` crate, and query
//! evaluation over either lives in the `engine` crate.  Because every
//! operation here has straightforward enumerate-all-worlds semantics, this
//! crate doubles as the ground-truth oracle for the approximation machinery.
//!
//! ## Example: picking a coin from the bag (Example 2.2)
//!
//! ```
//! use pdb::{relation, schema, tuple, ProbabilisticDatabase};
//!
//! let mut db = ProbabilisticDatabase::from_complete_relations([
//!     ("Coins", relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]]),
//! ]).unwrap();
//! db.repair_key("Coins", &[], "Count", "Picked").unwrap();
//! let p = db.confidence("Picked", &tuple!["fair", 2]).unwrap();
//! assert!((p - 2.0 / 3.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod database;
mod error;
mod relation;
mod repair_key;
mod schema;
mod tuple;
mod value;
mod world;

pub use database::{ProbabilisticDatabase, DISTRIBUTION_TOLERANCE};
pub use error::{PdbError, Result};
pub use relation::Relation;
pub use repair_key::{repair_count, repairs, Repair};
pub use schema::Schema;
pub use tuple::Tuple;
pub use value::{Value, F64};
pub use world::World;
