//! Tuples: ordered sequences of [`Value`]s.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A database tuple.
///
/// Tuples are positional; attribute names live in the relation's
/// [`Schema`](crate::schema::Schema).  They are ordered and hashable so that
/// relations can be stored as canonical sorted sets, which keeps the
/// possible-worlds reference engine deterministic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Creates a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// The empty (0-ary) tuple, the only inhabitant of `π_∅`-style results.
    pub fn empty() -> Self {
        Tuple(Vec::new())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// True if the tuple has no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value at position `i`, if present.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Iterates over the values in attribute order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// Consumes the tuple and returns its values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// Projects onto the given positions (in the given order).
    ///
    /// Positions may repeat; out-of-range positions panic, mirroring the fact
    /// that projections are validated against the schema before execution.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenates two tuples (used by `×` and join).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Returns a copy of the tuple with `value` appended.
    pub fn with_appended(&self, value: Value) -> Tuple {
        let mut v = self.0.clone();
        v.push(value);
        Tuple(v)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Builds a tuple from a list of things convertible into [`Value`].
///
/// ```
/// use pdb::{tuple, Value};
/// let t = tuple!["fair", 2];
/// assert_eq!(t[0], Value::str("fair"));
/// assert_eq!(t[1], Value::Int(2));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Tuple {
        Tuple::new(vec![Value::Int(1), Value::str("a"), Value::float(0.5)])
    }

    #[test]
    fn arity_and_access() {
        let t = abc();
        assert_eq!(t.arity(), 3);
        assert_eq!(t[1], Value::str("a"));
        assert_eq!(t.get(2), Some(&Value::float(0.5)));
        assert_eq!(t.get(3), None);
        assert!(!t.is_empty());
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn project_reorders_and_repeats() {
        let t = abc();
        let p = t.project(&[2, 0, 0]);
        assert_eq!(
            p,
            Tuple::new(vec![Value::float(0.5), Value::Int(1), Value::Int(1)])
        );
    }

    #[test]
    fn concat_and_append() {
        let t = abc();
        let u = Tuple::new(vec![Value::Bool(true)]);
        let c = t.concat(&u);
        assert_eq!(c.arity(), 4);
        assert_eq!(c[3], Value::Bool(true));
        let a = t.with_appended(Value::Int(9));
        assert_eq!(a.arity(), 4);
        assert_eq!(a[3], Value::Int(9));
        // original untouched
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = tuple![1, "a"];
        let b = tuple![1, "b"];
        let c = tuple![2, "a"];
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display() {
        assert_eq!(abc().to_string(), "(1, a, 0.5)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn macro_builds_values() {
        let t = tuple!["x", 3, 0.25, true];
        assert_eq!(t.arity(), 4);
        assert_eq!(t[3], Value::Bool(true));
    }
}
