//! Scalar values stored in tuples.
//!
//! The paper's algebra allows arithmetic in selection conditions and in the
//! arguments of `π`/`ρ` (Section 2), and the `conf` operator extends tuples
//! with a numeric probability column `P`.  Values therefore need a numeric
//! type with a total order so that relations (sets of tuples) can be kept in
//! deterministic, canonical order.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A totally ordered, hashable wrapper around `f64`.
///
/// Ordering uses [`f64::total_cmp`], so `NaN` values are admitted and sort
/// after all other numbers; equality is bit-pattern based for `NaN` and value
/// based otherwise (with `-0.0 == 0.0` normalised at construction).
#[derive(Clone, Copy, Debug)]
pub struct F64(f64);

impl F64 {
    /// Wraps a float, normalising `-0.0` to `0.0` so equal-looking values
    /// compare equal.
    pub fn new(v: f64) -> Self {
        if v == 0.0 {
            F64(0.0)
        } else {
            F64(v)
        }
    }

    /// Returns the wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

/// A single attribute value.
///
/// `Null` exists only so that failure-injection tests can exercise missing
/// data; the algebra itself never produces it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Absent value (sorts first).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total ordering.
    Float(F64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Convenience constructor for floats.
    pub fn float(v: f64) -> Self {
        Value::Float(F64::new(v))
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Numeric view: integers and floats are numbers, booleans count as 0/1.
    ///
    /// Returns `None` for strings and nulls, which lets arithmetic report a
    /// type error instead of silently coercing.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.get()),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(_) | Value::Null => None,
        }
    }

    /// Returns the integer if this value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string slice if this value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if the value is numeric (int, float or bool).
    pub fn is_numeric(&self) -> bool {
        self.as_f64().is_some()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn f64_total_order_and_hash() {
        let a = F64::new(1.0);
        let b = F64::new(1.0);
        assert_eq!(a, b);
        assert!(F64::new(-1.0) < F64::new(0.0));
        assert!(F64::new(0.0) < F64::new(1.0));
        // -0.0 is normalised
        assert_eq!(F64::new(-0.0), F64::new(0.0));
        // NaN admitted and ordered last
        assert!(F64::new(f64::NAN) > F64::new(f64::INFINITY));
    }

    #[test]
    fn value_ordering_is_total_and_stable() {
        let mut set = BTreeSet::new();
        set.insert(Value::Null);
        set.insert(Value::Bool(true));
        set.insert(Value::Int(3));
        set.insert(Value::float(2.5));
        set.insert(Value::str("x"));
        assert_eq!(set.len(), 5);
        let first = set.iter().next().unwrap();
        assert_eq!(*first, Value::Null);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::float(0.25).as_f64(), Some(0.25));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
        assert!(Value::Int(1).is_numeric());
        assert!(!Value::str("a").is_numeric());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(1.5f64), Value::float(1.5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::float(0.5).to_string(), "0.5");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
