//! Error type for the possible-worlds data model.

use std::fmt;

/// Errors raised by the `pdb` crate.
#[derive(Clone, Debug, PartialEq)]
pub enum PdbError {
    /// A schema was declared with two attributes of the same name.
    DuplicateAttribute(String),
    /// An attribute name was referenced that is not part of the schema.
    UnknownAttribute(String),
    /// A relation name was referenced that is not part of the database.
    UnknownRelation(String),
    /// A tuple's arity does not match the relation schema.
    ArityMismatch {
        /// Arity expected by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// Two relations that should share a schema do not.
    SchemaMismatch(String),
    /// World probabilities do not form a distribution (each must be in
    /// `(0, 1]` and they must sum to 1).
    InvalidDistribution(String),
    /// `repair-key` was applied with a non-positive or non-numeric weight.
    InvalidWeight(String),
    /// An operation that requires a complete relation was applied to an
    /// uncertain one (for example `repair-key` or `−c`).
    NotComplete(String),
    /// Generic invariant violation with a description.
    Invariant(String),
}

impl fmt::Display for PdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdbError::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}`"),
            PdbError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            PdbError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            PdbError::ArityMismatch { expected, actual } => {
                write!(f, "arity mismatch: expected {expected}, got {actual}")
            }
            PdbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            PdbError::InvalidDistribution(m) => write!(f, "invalid distribution: {m}"),
            PdbError::InvalidWeight(m) => write!(f, "invalid repair-key weight: {m}"),
            PdbError::NotComplete(r) => {
                write!(f, "relation `{r}` must be complete for this operation")
            }
            PdbError::Invariant(m) => write!(f, "invariant violation: {m}"),
        }
    }
}

impl std::error::Error for PdbError {}

/// Result alias for the `pdb` crate.
pub type Result<T> = std::result::Result<T, PdbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PdbError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(PdbError::UnknownRelation("R".into())
            .to_string()
            .contains("`R`"));
        assert!(PdbError::NotComplete("S".into())
            .to_string()
            .contains("complete"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&PdbError::Invariant("x".into()));
    }
}
