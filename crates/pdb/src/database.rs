//! Probabilistic databases as finite weighted sets of possible worlds
//! (Section 2 of the paper).

use crate::error::{PdbError, Result};
use crate::relation::Relation;
use crate::repair_key::repairs;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::world::World;
use std::collections::BTreeMap;

/// Numerical slack accepted when checking that world probabilities sum to 1.
pub const DISTRIBUTION_TOLERANCE: f64 = 1e-9;

/// A probabilistic database: a finite set of possible worlds whose
/// probabilities sum to 1, together with the completeness function `c`
/// marking which relations are complete by definition.
///
/// This is the *nonsuccinct* representation of the paper (used in
/// Proposition 3.5 and as the reference semantics for everything else).  The
/// succinct U-relational representation lives in the `urel` crate.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbabilisticDatabase {
    /// `c(R) = true` iff `R` is complete by definition.
    complete: BTreeMap<String, bool>,
    worlds: Vec<World>,
}

impl ProbabilisticDatabase {
    /// Creates a database consisting of a single world of probability 1 in
    /// which every given relation is complete.
    pub fn from_complete_relations(
        relations: impl IntoIterator<Item = (impl Into<String>, Relation)>,
    ) -> Result<Self> {
        let mut world = World::new(1.0)?;
        let mut complete = BTreeMap::new();
        for (name, rel) in relations {
            let name = name.into();
            world.set_relation(name.clone(), rel);
            complete.insert(name, true);
        }
        Ok(ProbabilisticDatabase {
            complete,
            worlds: vec![world],
        })
    }

    /// Creates a database from explicit worlds and a completeness marking.
    ///
    /// Validates that probabilities form a distribution, that every world
    /// defines the same relation names with identical schemas, and that
    /// relations marked complete are identical across worlds.
    pub fn from_worlds(
        worlds: Vec<World>,
        complete: impl IntoIterator<Item = (impl Into<String>, bool)>,
    ) -> Result<Self> {
        let complete: BTreeMap<String, bool> =
            complete.into_iter().map(|(n, c)| (n.into(), c)).collect();
        let db = ProbabilisticDatabase { complete, worlds };
        db.validate()?;
        Ok(db)
    }

    /// The possible worlds.
    pub fn worlds(&self) -> &[World] {
        &self.worlds
    }

    /// Number of possible worlds.
    pub fn num_worlds(&self) -> usize {
        self.worlds.len()
    }

    /// Names of all relations (taken from the first world).
    pub fn relation_names(&self) -> Vec<String> {
        self.worlds
            .first()
            .map(|w| w.relation_names())
            .unwrap_or_default()
    }

    /// True if relation `name` is marked complete by definition.
    pub fn is_complete(&self, name: &str) -> bool {
        self.complete.get(name).copied().unwrap_or(false)
    }

    /// Schema of relation `name`.
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        let w = self
            .worlds
            .first()
            .ok_or_else(|| PdbError::Invariant("database has no worlds".into()))?;
        Ok(w.relation(name)?.schema().clone())
    }

    /// Sum of the world probabilities (should be 1).
    pub fn total_probability(&self) -> f64 {
        self.worlds.iter().map(World::probability).sum()
    }

    /// Checks all invariants of the possible-worlds model.
    pub fn validate(&self) -> Result<()> {
        if self.worlds.is_empty() {
            return Err(PdbError::InvalidDistribution(
                "a probabilistic database needs at least one world".into(),
            ));
        }
        let total = self.total_probability();
        if (total - 1.0).abs() > DISTRIBUTION_TOLERANCE {
            return Err(PdbError::InvalidDistribution(format!(
                "world probabilities sum to {total}, expected 1"
            )));
        }
        let names = self.worlds[0].relation_names();
        for w in &self.worlds {
            if w.relation_names() != names {
                return Err(PdbError::SchemaMismatch(
                    "worlds define different relation names".into(),
                ));
            }
        }
        for name in &names {
            let first = self.worlds[0].relation(name)?;
            for w in &self.worlds[1..] {
                let r = w.relation(name)?;
                if r.schema() != first.schema() {
                    return Err(PdbError::SchemaMismatch(format!(
                        "relation `{name}` has differing schemas across worlds"
                    )));
                }
                if self.is_complete(name) && r != first {
                    return Err(PdbError::NotComplete(format!(
                        "relation `{name}` is marked complete but differs across worlds"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Confidence in tuple `t` for relation `name`:
    /// `Pr[t ∈ R] = Σ_{i : t ∈ Rⁱ} p⁽ⁱ⁾`.
    pub fn confidence(&self, name: &str, t: &Tuple) -> Result<f64> {
        // Validate the relation exists.
        self.schema_of(name)?;
        Ok(self
            .worlds
            .iter()
            .filter(|w| w.contains(name, t))
            .map(World::probability)
            .sum())
    }

    /// `poss(R)`: the union of `R` over all worlds.
    pub fn poss(&self, name: &str) -> Result<Relation> {
        let schema = self.schema_of(name)?;
        let mut out = Relation::empty(schema);
        for w in &self.worlds {
            for t in w.relation(name)?.iter() {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// `cert(R)`: tuples present in every world.
    pub fn cert(&self, name: &str) -> Result<Relation> {
        let schema = self.schema_of(name)?;
        let mut out = Relation::empty(schema);
        for t in self.poss(name)?.iter() {
            if self.worlds.iter().all(|w| w.contains(name, t)) {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// The `conf` operation (Definition 2.1): one complete relation holding
    /// every possible tuple of `R` extended by its exact confidence in a new
    /// column `prob_attr`.
    pub fn conf(&self, name: &str, prob_attr: &str) -> Result<Relation> {
        let schema = self.schema_of(name)?.with_appended(prob_attr)?;
        let mut out = Relation::empty(schema);
        for t in self.poss(name)?.iter() {
            let p = self.confidence(name, t)?;
            out.insert(t.with_appended(Value::float(p)))?;
        }
        Ok(out)
    }

    /// Applies a per-world operation, storing its output as relation
    /// `out_name` in every world.  This is how the classical relational
    /// algebra operations of UA are given semantics (Definition 2.1).
    ///
    /// `complete` marks whether the result is complete by definition (it is
    /// when all inputs of the operation are).
    pub fn map_worlds(
        &mut self,
        out_name: impl Into<String>,
        complete: bool,
        mut op: impl FnMut(&World) -> Result<Relation>,
    ) -> Result<()> {
        let out_name = out_name.into();
        let mut results = Vec::with_capacity(self.worlds.len());
        for w in &self.worlds {
            results.push(op(w)?);
        }
        for (w, rel) in self.worlds.iter_mut().zip(results) {
            w.set_relation(out_name.clone(), rel);
        }
        self.complete.insert(out_name, complete);
        Ok(())
    }

    /// Adds the same complete relation to every world.
    pub fn add_complete_relation(&mut self, name: impl Into<String>, rel: Relation) {
        let name = name.into();
        for w in &mut self.worlds {
            w.set_relation(name.clone(), rel.clone());
        }
        self.complete.insert(name, true);
    }

    /// `W₁ ⊗ W₂` (Equation 1): the product combination of two probabilistic
    /// databases over disjoint (or agreeing-complete) relation names.
    pub fn combine(&self, other: &ProbabilisticDatabase) -> Result<ProbabilisticDatabase> {
        let mut worlds = Vec::with_capacity(self.worlds.len() * other.worlds.len());
        for a in &self.worlds {
            for b in &other.worlds {
                worlds.push(a.combine(b)?);
            }
        }
        let mut complete = self.complete.clone();
        for (name, c) in &other.complete {
            complete.insert(name.clone(), *c);
        }
        let db = ProbabilisticDatabase { complete, worlds };
        db.validate()?;
        Ok(db)
    }

    /// `repair-key_{A⃗@B}(R)` as an uncertainty-introducing operation
    /// (Definition 2.1): `R` must be complete; the result database is
    /// `self ⊗ repair-key(R)` with the repaired relation stored as
    /// `out_name` (not complete).
    pub fn repair_key(
        &mut self,
        rel_name: &str,
        key_attrs: &[&str],
        weight_attr: &str,
        out_name: impl Into<String>,
    ) -> Result<()> {
        if !self.is_complete(rel_name) {
            return Err(PdbError::NotComplete(rel_name.to_owned()));
        }
        let out_name = out_name.into();
        // All worlds agree on a complete relation, so repair the first copy.
        let rel = self.worlds[0].relation(rel_name)?.clone();
        let reps = repairs(&rel, key_attrs, weight_attr)?;

        let mut worlds = Vec::with_capacity(self.worlds.len() * reps.len());
        for w in &self.worlds {
            for rep in &reps {
                let mut nw = w.clone();
                nw.scale_probability(rep.probability);
                nw.set_relation(out_name.clone(), rep.relation.clone());
                worlds.push(nw);
            }
        }
        self.worlds = worlds;
        self.complete.insert(out_name, false);
        self.validate()
    }

    /// Coalesces worlds with identical contents by summing their
    /// probabilities.  Keeps results small after chains of `repair-key`.
    pub fn coalesce(&mut self) {
        let mut merged: Vec<World> = Vec::new();
        for w in &self.worlds {
            if let Some(existing) = merged.iter_mut().find(|m| m.content() == w.content()) {
                let factor = (existing.probability() + w.probability()) / existing.probability();
                existing.scale_probability(factor);
            } else {
                merged.push(w.clone());
            }
        }
        self.worlds = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{relation, schema, tuple};

    fn coin_db() -> ProbabilisticDatabase {
        ProbabilisticDatabase::from_complete_relations([
            (
                "Coins",
                relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]],
            ),
            (
                "Faces",
                relation![schema!["CoinType", "Face", "FProb"];
                    ["fair", "H", 0.5], ["fair", "T", 0.5], ["2headed", "H", 1.0]],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn complete_db_has_one_world() {
        let db = coin_db();
        assert_eq!(db.num_worlds(), 1);
        assert!((db.total_probability() - 1.0).abs() < 1e-12);
        assert!(db.is_complete("Coins"));
        assert!(!db.is_complete("R"));
        db.validate().unwrap();
    }

    #[test]
    fn repair_key_creates_worlds_with_example_2_2_probabilities() {
        let mut db = coin_db();
        db.repair_key("Coins", &[], "Count", "PickedCoin").unwrap();
        assert_eq!(db.num_worlds(), 2);
        assert!(!db.is_complete("PickedCoin"));
        let p_fair = db.confidence("PickedCoin", &tuple!["fair", 2]).unwrap();
        let p_2h = db.confidence("PickedCoin", &tuple!["2headed", 1]).unwrap();
        assert!((p_fair - 2.0 / 3.0).abs() < 1e-12);
        assert!((p_2h - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn repair_key_requires_complete_relation() {
        let mut db = coin_db();
        db.repair_key("Coins", &[], "Count", "R").unwrap();
        let err = db.repair_key("R", &[], "Count", "S");
        assert!(matches!(err, Err(PdbError::NotComplete(_))));
    }

    #[test]
    fn conf_poss_cert() {
        let mut db = coin_db();
        db.repair_key("Coins", &[], "Count", "R").unwrap();
        let conf = db.conf("R", "P").unwrap();
        assert_eq!(conf.len(), 2);
        assert_eq!(conf.schema().attrs().last().unwrap(), "P");
        let poss = db.poss("R").unwrap();
        assert_eq!(poss.len(), 2);
        let cert = db.cert("R").unwrap();
        assert!(cert.is_empty());
        // Coins is complete: cert = poss.
        assert_eq!(db.cert("Coins").unwrap().len(), 2);
    }

    #[test]
    fn map_worlds_applies_relational_ops_per_world() {
        let mut db = coin_db();
        db.repair_key("Coins", &[], "Count", "R").unwrap();
        db.map_worlds("FairOnly", false, |w| {
            Ok(w.relation("R")?.select(|t| t[0] == Value::str("fair")))
        })
        .unwrap();
        let p = db.confidence("FairOnly", &tuple!["fair", 2]).unwrap();
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        let p = db.confidence("FairOnly", &tuple!["2headed", 1]).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn combine_multiplies_world_sets() {
        let mut a = coin_db();
        a.repair_key("Coins", &[], "Count", "R").unwrap();
        let b = ProbabilisticDatabase::from_worlds(
            vec![
                {
                    let mut w = World::new(0.5).unwrap();
                    w.set_relation("S", relation![schema!["X"]; [1]]);
                    w
                },
                {
                    let mut w = World::new(0.5).unwrap();
                    w.set_relation("S", relation![schema!["X"]; [2]]);
                    w
                },
            ],
            [("S", false)],
        )
        .unwrap();
        let c = a.combine(&b).unwrap();
        assert_eq!(c.num_worlds(), 4);
        assert!((c.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_distributions() {
        let w1 = {
            let mut w = World::new(0.4).unwrap();
            w.set_relation("R", relation![schema!["A"]; [1]]);
            w
        };
        let w2 = {
            let mut w = World::new(0.4).unwrap();
            w.set_relation("R", relation![schema!["A"]; [2]]);
            w
        };
        let err = ProbabilisticDatabase::from_worlds(vec![w1, w2], [("R", false)]);
        assert!(matches!(err, Err(PdbError::InvalidDistribution(_))));
    }

    #[test]
    fn validation_catches_incomplete_complete_relations() {
        let w1 = {
            let mut w = World::new(0.5).unwrap();
            w.set_relation("R", relation![schema!["A"]; [1]]);
            w
        };
        let w2 = {
            let mut w = World::new(0.5).unwrap();
            w.set_relation("R", relation![schema!["A"]; [2]]);
            w
        };
        let err = ProbabilisticDatabase::from_worlds(vec![w1, w2], [("R", true)]);
        assert!(matches!(err, Err(PdbError::NotComplete(_))));
    }

    #[test]
    fn coalesce_merges_identical_worlds() {
        let mut db = coin_db();
        db.repair_key("Coins", &[], "Count", "R").unwrap();
        // Project R to the empty schema in every world: both worlds now have
        // identical content except for R itself, so nothing merges; then drop
        // R by overwriting it with the same projection to force a merge.
        db.map_worlds("E", false, |w| {
            Ok(w.relation("R")?.project(&[] as &[&str]).unwrap())
        })
        .unwrap();
        db.map_worlds("R", false, |w| Ok(w.relation("E")?.clone()))
            .unwrap();
        db.coalesce();
        assert_eq!(db.num_worlds(), 1);
        assert!((db.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_of_unknown_relation_errors() {
        let db = coin_db();
        assert!(db.confidence("Nope", &tuple![1]).is_err());
        assert!(db.poss("Nope").is_err());
        assert!(db.schema_of("Nope").is_err());
    }
}
