//! Possible worlds: complete instances paired with a probability.

use crate::error::{PdbError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;
use std::collections::BTreeMap;
use std::fmt;

/// One possible world `⟨R₁, …, R_k, p⟩`: a complete database instance with a
/// probability `0 < p ≤ 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct World {
    relations: BTreeMap<String, Relation>,
    prob: f64,
}

impl World {
    /// Creates a world with the given probability and no relations.
    pub fn new(prob: f64) -> Result<Self> {
        if !(prob > 0.0 && prob <= 1.0 + 1e-12) {
            return Err(PdbError::InvalidDistribution(format!(
                "world probability {prob} not in (0, 1]"
            )));
        }
        Ok(World {
            relations: BTreeMap::new(),
            prob,
        })
    }

    /// The world's probability `p`.
    pub fn probability(&self) -> f64 {
        self.prob
    }

    /// Rescales the probability (used by `⊗` and by coalescing).
    pub(crate) fn scale_probability(&mut self, factor: f64) {
        self.prob *= factor;
    }

    /// Sets (or replaces) a relation.
    pub fn set_relation(&mut self, name: impl Into<String>, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| PdbError::UnknownRelation(name.to_owned()))
    }

    /// True if the world defines `name`.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Names of the relations in this world.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// True if tuple `t` is in relation `name` in this world.
    pub fn contains(&self, name: &str, t: &Tuple) -> bool {
        self.relations.get(name).is_some_and(|r| r.contains(t))
    }

    /// Merges the relations of `other` into this world, multiplying the
    /// probabilities.  Relations present in both must be identical (they can
    /// only be the complete ones, which agree by definition).
    pub fn combine(&self, other: &World) -> Result<World> {
        let mut relations = self.relations.clone();
        for (name, rel) in &other.relations {
            match relations.get(name) {
                Some(existing) if existing != rel => {
                    return Err(PdbError::SchemaMismatch(format!(
                        "relation `{name}` differs between combined worlds"
                    )));
                }
                _ => {
                    relations.insert(name.clone(), rel.clone());
                }
            }
        }
        Ok(World {
            relations,
            prob: self.prob * other.prob,
        })
    }

    /// The world's database content without the probability, used to decide
    /// whether two worlds are identical and can be coalesced.
    pub fn content(&self) -> &BTreeMap<String, Relation> {
        &self.relations
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "world (p = {}):", self.prob)?;
        for (name, rel) in &self.relations {
            writeln!(f, "{name} {rel}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{relation, schema, tuple};

    #[test]
    fn rejects_bad_probability() {
        assert!(World::new(0.0).is_err());
        assert!(World::new(-0.1).is_err());
        assert!(World::new(1.5).is_err());
        assert!(World::new(1.0).is_ok());
        assert!(World::new(1e-9).is_ok());
    }

    #[test]
    fn relation_access() {
        let mut w = World::new(0.5).unwrap();
        w.set_relation("R", relation![schema!["A"]; [1], [2]]);
        assert!(w.has_relation("R"));
        assert!(w.contains("R", &tuple![1]));
        assert!(!w.contains("R", &tuple![3]));
        assert!(!w.contains("S", &tuple![1]));
        assert!(w.relation("S").is_err());
        assert_eq!(w.relation_names(), vec!["R".to_string()]);
    }

    #[test]
    fn combine_multiplies_probabilities() {
        let mut a = World::new(0.5).unwrap();
        a.set_relation("R", relation![schema!["A"]; [1]]);
        let mut b = World::new(0.25).unwrap();
        b.set_relation("S", relation![schema!["B"]; [2]]);
        let c = a.combine(&b).unwrap();
        assert!((c.probability() - 0.125).abs() < 1e-12);
        assert!(c.has_relation("R") && c.has_relation("S"));
    }

    #[test]
    fn combine_rejects_conflicting_shared_relations() {
        let mut a = World::new(0.5).unwrap();
        a.set_relation("R", relation![schema!["A"]; [1]]);
        let mut b = World::new(0.5).unwrap();
        b.set_relation("R", relation![schema!["A"]; [2]]);
        assert!(a.combine(&b).is_err());
        // identical shared relation is fine
        let mut c = World::new(0.5).unwrap();
        c.set_relation("R", relation![schema!["A"]; [1]]);
        assert!(a.combine(&c).is_ok());
    }
}
