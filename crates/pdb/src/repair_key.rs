//! World-level semantics of the `repair-key` operation (Section 2).
//!
//! `repair-key_{A⃗@B}(R)` computes all subset-maximal relations obtainable
//! from the complete relation `R` by removing tuples such that `A⃗` becomes a
//! key, i.e. it picks exactly one tuple per `A⃗`-group.  Each repair is a
//! choice function `f : π_{A⃗}(R) → R`, weighted by the product over groups of
//! the chosen tuple's `B` value divided by the group's total `B` weight.

use crate::error::{PdbError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;

/// One repair: the chosen tuples and the probability of this choice.
#[derive(Clone, Debug, PartialEq)]
pub struct Repair {
    /// The repaired relation `R_f`.
    pub relation: Relation,
    /// Its probability `p_f`.
    pub probability: f64,
}

/// Enumerates all repairs of `rel` for key `key_attrs` with weight column
/// `weight_attr`.
///
/// The number of repairs is the product of the group sizes, so this is
/// intended for reference semantics and moderate inputs; the succinct engine
/// in the `engine` crate introduces random variables instead (Section 3).
///
/// Errors if a weight is non-numeric or not strictly positive, or if a group
/// has zero total weight.
pub fn repairs(rel: &Relation, key_attrs: &[&str], weight_attr: &str) -> Result<Vec<Repair>> {
    let groups = rel.group_by(key_attrs)?;

    // Validate weights up front so failure injection gets a typed error.
    let mut weighted_groups: Vec<Vec<(Tuple, f64)>> = Vec::with_capacity(groups.len());
    for (_, members) in &groups {
        let mut wm = Vec::with_capacity(members.len());
        let mut total = 0.0;
        for t in members {
            let w = rel.numeric_value(t, weight_attr)?;
            if !w.is_finite() || w <= 0.0 {
                return Err(PdbError::InvalidWeight(format!(
                    "weight {w} of tuple {t} is not a positive finite number"
                )));
            }
            total += w;
            wm.push((t.clone(), w));
        }
        if total <= 0.0 {
            return Err(PdbError::InvalidWeight(
                "group has zero total weight".to_owned(),
            ));
        }
        for entry in &mut wm {
            entry.1 /= total;
        }
        weighted_groups.push(wm);
    }

    // Cartesian product over the groups' choices.
    let mut out: Vec<Repair> = vec![Repair {
        relation: Relation::empty(rel.schema().clone()),
        probability: 1.0,
    }];
    for group in &weighted_groups {
        let mut next = Vec::with_capacity(out.len() * group.len());
        for partial in &out {
            for (tuple, p) in group {
                let mut relation = partial.relation.clone();
                relation.insert(tuple.clone())?;
                next.push(Repair {
                    relation,
                    probability: partial.probability * p,
                });
            }
        }
        out = next;
    }
    Ok(out)
}

/// Number of repairs `repairs` would produce, without materialising them.
pub fn repair_count(rel: &Relation, key_attrs: &[&str]) -> Result<usize> {
    let groups = rel.group_by(key_attrs)?;
    Ok(groups.iter().map(|(_, m)| m.len()).product())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{relation, schema, tuple};

    fn coins() -> Relation {
        relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]]
    }

    fn faces() -> Relation {
        relation![schema!["CoinType", "Face", "FProb"];
            ["fair", "H", 0.5], ["fair", "T", 0.5], ["2headed", "H", 1.0]]
    }

    #[test]
    fn repair_on_empty_key_picks_one_tuple_total() {
        // Example 2.2: repair-key_∅@Count(Coins) yields two worlds with
        // probabilities 2/3 and 1/3.
        let reps = repairs(&coins(), &[], "Count").unwrap();
        assert_eq!(reps.len(), 2);
        let mut probs: Vec<f64> = reps.iter().map(|r| r.probability).collect();
        probs.sort_by(f64::total_cmp);
        assert!((probs[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((probs[1] - 2.0 / 3.0).abs() < 1e-12);
        for r in &reps {
            assert_eq!(r.relation.len(), 1);
        }
        // The heavier repair keeps the `fair` tuple.
        let fair = reps
            .iter()
            .find(|r| r.relation.contains(&tuple!["fair", 2]))
            .unwrap();
        assert!((fair.probability - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn repair_on_key_groups_by_key() {
        // Keying Faces by CoinType picks one face per coin type:
        // 2 choices for fair × 1 for 2headed = 2 repairs, each containing two
        // tuples.
        let reps = repairs(&faces(), &["CoinType"], "FProb").unwrap();
        assert_eq!(reps.len(), 2);
        for r in &reps {
            assert_eq!(r.relation.len(), 2);
            assert!((r.probability - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let reps = repairs(&faces(), &["CoinType", "Face"], "FProb").unwrap();
        // Every tuple is alone in its group: single repair of probability 1.
        assert_eq!(reps.len(), 1);
        assert!((reps[0].probability - 1.0).abs() < 1e-12);
        assert_eq!(reps[0].relation.len(), 3);

        let reps = repairs(&faces(), &[], "FProb").unwrap();
        let total: f64 = reps.iter().map(|r| r.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn rejects_bad_weights() {
        let r = relation![schema!["A", "W"]; [1, 0], [2, 1]];
        assert!(repairs(&r, &[], "W").is_err());
        let r = relation![schema!["A", "W"]; [1, -1.0], [2, 1]];
        assert!(repairs(&r, &[], "W").is_err());
        let r = relation![schema!["A", "W"]; [1, "x"]];
        assert!(repairs(&r, &[], "W").is_err());
        let r = relation![schema!["A", "W"]; [1, 1]];
        assert!(repairs(&r, &[], "Missing").is_err());
    }

    #[test]
    fn repair_of_empty_relation_is_single_empty_world() {
        let r = Relation::empty(schema!["A", "W"]);
        let reps = repairs(&r, &[], "W").unwrap();
        assert_eq!(reps.len(), 1);
        assert!(reps[0].relation.is_empty());
        assert!((reps[0].probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repair_count_matches_enumeration() {
        assert_eq!(repair_count(&coins(), &[]).unwrap(), 2);
        assert_eq!(repair_count(&faces(), &["CoinType"]).unwrap(), 2);
        assert_eq!(repair_count(&faces(), &[]).unwrap(), 3);
        assert_eq!(
            repairs(&faces(), &["CoinType"], "FProb").unwrap().len(),
            repair_count(&faces(), &["CoinType"]).unwrap()
        );
    }
}
