//! Relations: schema-carrying sets of tuples with the classical relational
//! algebra operations applied *within one possible world*.

use crate::error::{PdbError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::BTreeSet;
use std::fmt;

/// A finite relation under set semantics.
///
/// Tuples are kept in a sorted set so iteration order is canonical; this is
/// what makes the naive possible-worlds engine usable as a deterministic
/// ground-truth oracle in tests.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Relation {
    schema: Schema,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// Creates a relation from a schema and tuples, validating arities.
    pub fn new(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> Result<Self> {
        let mut r = Relation::empty(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// A 128-bit-plus-length content fingerprint
    /// ([`content_fingerprint`](crate::content_fingerprint) over schema and
    /// tuples).  The relational identity used by caches and serving layers:
    /// equal digests mean content-equal relations up to hash collision, so
    /// a replacement with an unchanged digest is a no-op update.
    pub fn content_digest(&self) -> (u64, u64, usize) {
        crate::content_fingerprint(self, self.tuples.len())
    }

    /// Inserts a tuple, checking its arity; returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.schema.arity() {
            return Err(PdbError::ArityMismatch {
                expected: self.schema.arity(),
                actual: t.arity(),
            });
        }
        Ok(self.tuples.insert(t))
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterates over tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Selection: keeps tuples satisfying `pred`.
    pub fn select(&self, mut pred: impl FnMut(&Tuple) -> bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.iter().filter(|t| pred(t)).cloned().collect(),
        }
    }

    /// Selection where the predicate may fail (for example on a type error in
    /// an arithmetic condition); the first error aborts the operation.
    pub fn try_select(&self, mut pred: impl FnMut(&Tuple) -> Result<bool>) -> Result<Relation> {
        let mut out = Relation::empty(self.schema.clone());
        for t in &self.tuples {
            if pred(t)? {
                out.tuples.insert(t.clone());
            }
        }
        Ok(out)
    }

    /// Projection onto the named attributes (duplicates eliminated).
    pub fn project(&self, names: &[impl AsRef<str>]) -> Result<Relation> {
        let idx = self.schema.indices_of(names)?;
        let schema = self.schema.project(names)?;
        let tuples = self.tuples.iter().map(|t| t.project(&idx)).collect();
        Ok(Relation { schema, tuples })
    }

    /// Generalised projection / renaming: each output attribute is produced
    /// by a function of the input tuple.  This is how `ρ_{A+B→C}` and the
    /// arithmetic arguments of `π` are executed.
    pub fn map<F>(&self, schema: Schema, mut f: F) -> Result<Relation>
    where
        F: FnMut(&Tuple) -> Result<Tuple>,
    {
        let mut out = Relation::empty(schema);
        for t in &self.tuples {
            let u = f(t)?;
            out.insert(u)?;
        }
        Ok(out)
    }

    /// Cartesian product; right-hand attribute names clashing with the left
    /// are prefixed with `rhs_prefix`.
    pub fn product(&self, other: &Relation, rhs_prefix: &str) -> Result<Relation> {
        let schema = self.schema.concat(other.schema(), rhs_prefix)?;
        let mut tuples = BTreeSet::new();
        for a in &self.tuples {
            for b in &other.tuples {
                tuples.insert(a.concat(b));
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// Natural join on the shared attribute names.
    pub fn natural_join(&self, other: &Relation) -> Result<Relation> {
        let shared: Vec<String> = self
            .schema
            .attrs()
            .iter()
            .filter(|a| other.schema.contains(a))
            .cloned()
            .collect();
        let left_idx = self.schema.indices_of(&shared)?;
        let right_idx = other.schema.indices_of(&shared)?;
        let right_rest: Vec<String> = other.schema.minus(&shared);
        let right_rest_idx = other.schema.indices_of(&right_rest)?;

        let mut schema_attrs: Vec<String> = self.schema.attrs().to_vec();
        schema_attrs.extend(right_rest.iter().cloned());
        let schema = Schema::new(schema_attrs)?;

        let mut tuples = BTreeSet::new();
        for a in &self.tuples {
            let akey = a.project(&left_idx);
            for b in &other.tuples {
                if b.project(&right_idx) == akey {
                    tuples.insert(a.concat(&b.project(&right_rest_idx)));
                }
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// Union; schemas must have the same arity (attribute names are taken
    /// from the left operand, as the algebra identifies columns by position).
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        self.check_union_compatible(other)?;
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        Ok(Relation {
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Set difference; schemas must be union-compatible.
    pub fn difference(&self, other: &Relation) -> Result<Relation> {
        self.check_union_compatible(other)?;
        let tuples = self
            .tuples
            .iter()
            .filter(|t| !other.tuples.contains(*t))
            .cloned()
            .collect();
        Ok(Relation {
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Intersection; schemas must be union-compatible.
    pub fn intersection(&self, other: &Relation) -> Result<Relation> {
        self.check_union_compatible(other)?;
        let tuples = self
            .tuples
            .iter()
            .filter(|t| other.tuples.contains(*t))
            .cloned()
            .collect();
        Ok(Relation {
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Renames a single attribute.
    pub fn rename_attr(&self, from: &str, to: &str) -> Result<Relation> {
        Ok(Relation {
            schema: self.schema.rename(from, to)?,
            tuples: self.tuples.clone(),
        })
    }

    /// Groups tuples by the values of the named key attributes, returning the
    /// groups in canonical key order.  Used by `repair-key`.
    pub fn group_by(&self, key: &[impl AsRef<str>]) -> Result<Vec<(Tuple, Vec<Tuple>)>> {
        let idx = self.schema.indices_of(key)?;
        let mut groups: Vec<(Tuple, Vec<Tuple>)> = Vec::new();
        for t in &self.tuples {
            let k = t.project(&idx);
            match groups.binary_search_by(|(g, _)| g.cmp(&k)) {
                Ok(i) => groups[i].1.push(t.clone()),
                Err(i) => groups.insert(i, (k, vec![t.clone()])),
            }
        }
        Ok(groups)
    }

    /// Reads a numeric attribute of a tuple, with a typed error otherwise.
    pub fn numeric_value(&self, t: &Tuple, attr: &str) -> Result<f64> {
        let i = self
            .schema
            .index_of(attr)
            .ok_or_else(|| PdbError::UnknownAttribute(attr.to_owned()))?;
        t[i].as_f64().ok_or_else(|| {
            PdbError::InvalidWeight(format!("attribute `{attr}` of {t} is not numeric"))
        })
    }

    fn check_union_compatible(&self, other: &Relation) -> Result<()> {
        if self.schema.arity() != other.schema.arity() {
            return Err(PdbError::SchemaMismatch(format!(
                "{} vs {}",
                self.schema, other.schema
            )));
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

/// Builds a relation literal from a schema and rows of values.
///
/// ```
/// use pdb::{relation, schema};
/// let coins = relation![schema!["CoinType", "Count"];
///     ["fair", 2],
///     ["2headed", 1],
/// ];
/// assert_eq!(coins.len(), 2);
/// ```
#[macro_export]
macro_rules! relation {
    ($schema:expr; $([$($v:expr),* $(,)?]),* $(,)?) => {
        $crate::Relation::new(
            $schema,
            vec![$($crate::tuple![$($v),*]),*],
        ).expect("invalid relation! literal")
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::{schema, tuple};

    fn coins() -> Relation {
        relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]]
    }

    fn faces() -> Relation {
        relation![schema!["CoinType", "Face", "FProb"];
            ["fair", "H", 0.5], ["fair", "T", 0.5], ["2headed", "H", 1.0]]
    }

    #[test]
    fn content_digests_identify_content() {
        assert_eq!(coins().content_digest(), coins().content_digest());
        assert_ne!(coins().content_digest(), faces().content_digest());
        // The length component alone separates truncations.
        let mut shorter = coins();
        let t = tuple!["2headed", 1];
        shorter = shorter.select(|row| row != &t);
        assert_ne!(coins().content_digest(), shorter.content_digest());
    }

    #[test]
    fn insert_checks_arity() {
        let mut r = Relation::empty(schema!["A"]);
        assert!(r.insert(tuple![1]).unwrap());
        assert!(!r.insert(tuple![1]).unwrap()); // duplicate
        assert!(r.insert(tuple![1, 2]).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn select_and_project() {
        let r = coins();
        let fair = r.select(|t| t[0] == Value::str("fair"));
        assert_eq!(fair.len(), 1);
        let types = r.project(&["CoinType"]).unwrap();
        assert_eq!(types.len(), 2);
        assert_eq!(types.schema().attrs(), &["CoinType".to_string()]);
        assert!(r.project(&["Nope"]).is_err());
    }

    #[test]
    fn projection_eliminates_duplicates() {
        let r = faces();
        let p = r.project(&["CoinType"]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn product_prefixes_clashing_names() {
        let r = coins();
        let s = faces();
        let p = r.product(&s, "f").unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.schema().arity(), 5);
        assert!(p.schema().contains("f.CoinType"));
    }

    #[test]
    fn natural_join_matches_on_shared_attrs() {
        let j = coins().natural_join(&faces()).unwrap();
        // fair matches 2 faces, 2headed matches 1
        assert_eq!(j.len(), 3);
        assert_eq!(j.schema().attrs().len(), 4);
    }

    #[test]
    fn natural_join_without_shared_attrs_is_product() {
        let a = relation![schema!["A"]; [1], [2]];
        let b = relation![schema!["B"]; [10]];
        let j = a.natural_join(&b).unwrap();
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn union_difference_intersection() {
        let a = relation![schema!["A"]; [1], [2]];
        let b = relation![schema!["A"]; [2], [3]];
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.difference(&b).unwrap().len(), 1);
        assert_eq!(a.intersection(&b).unwrap().len(), 1);
        let c = relation![schema!["A", "B"]; [1, 2]];
        assert!(a.union(&c).is_err());
        assert!(a.difference(&c).is_err());
    }

    #[test]
    fn group_by_orders_groups() {
        let g = faces().group_by(&["CoinType"]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].0, tuple!["2headed"]);
        assert_eq!(g[0].1.len(), 1);
        assert_eq!(g[1].1.len(), 2);
        // Grouping by the empty key puts everything in one group.
        let g0 = faces().group_by(&[] as &[&str]).unwrap();
        assert_eq!(g0.len(), 1);
        assert_eq!(g0[0].1.len(), 3);
    }

    #[test]
    fn numeric_value_errors_on_strings() {
        let r = coins();
        let t = tuple!["fair", 2];
        assert_eq!(r.numeric_value(&t, "Count").unwrap(), 2.0);
        assert!(r.numeric_value(&t, "CoinType").is_err());
        assert!(r.numeric_value(&t, "Missing").is_err());
    }

    #[test]
    fn map_builds_new_columns() {
        let r = coins();
        let out_schema = schema!["CoinType", "Double"];
        let doubled = r
            .map(out_schema, |t| {
                let c = t[1].as_f64().unwrap() * 2.0;
                Ok(Tuple::new(vec![t[0].clone(), Value::float(c)]))
            })
            .unwrap();
        assert!(doubled.contains(&tuple!["fair", 4.0]));
    }

    #[test]
    fn try_select_propagates_errors() {
        let r = coins();
        let res = r.try_select(|t| {
            t[0].as_f64()
                .map(|v| v > 0.0)
                .ok_or(PdbError::Invariant("not numeric".into()))
        });
        assert!(res.is_err());
    }
}
