//! Property tests for the relational core: algebraic laws of the per-world
//! operations and invariants of `repair-key`.

use pdb::{repair_count, repairs, Relation, Schema, Tuple, Value};
use proptest::prelude::*;

fn arb_relation(max_rows: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..5, 0i64..5, 1i64..6), 0..max_rows).prop_map(|rows| {
        let schema = Schema::new(["A", "B", "W"]).unwrap();
        let mut rel = Relation::empty(schema);
        for (a, b, w) in rows {
            let _ = rel.insert(Tuple::new(vec![
                Value::Int(a),
                Value::Int(b),
                Value::Int(w),
            ]));
        }
        rel
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Union is commutative and associative; intersection distributes as set
    /// semantics dictate.
    #[test]
    fn union_laws(a in arb_relation(8), b in arb_relation(8), c in arb_relation(8)) {
        let ab = a.union(&b).unwrap();
        let ba = b.union(&a).unwrap();
        prop_assert_eq!(&ab, &ba);
        let left = ab.union(&c).unwrap();
        let right = a.union(&b.union(&c).unwrap()).unwrap();
        prop_assert_eq!(left, right);
        // Union with itself is identity.
        prop_assert_eq!(a.union(&a).unwrap(), a.clone());
    }

    /// Difference and intersection relate as A ∩ B = A − (A − B).
    #[test]
    fn difference_intersection_law(a in arb_relation(8), b in arb_relation(8)) {
        let diff = a.difference(&b).unwrap();
        let derived_intersection = a.difference(&diff).unwrap();
        prop_assert_eq!(derived_intersection, a.intersection(&b).unwrap());
        // Difference never grows.
        prop_assert!(a.difference(&b).unwrap().len() <= a.len());
    }

    /// Selection commutes with union and distributes over intersection.
    #[test]
    fn selection_commutes_with_union(a in arb_relation(8), b in arb_relation(8), bound in 0i64..5) {
        let pred = |t: &Tuple| t[0] >= Value::Int(bound);
        let left = a.union(&b).unwrap().select(pred);
        let right = a.select(pred).union(&b.select(pred)).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Projection of a union equals the union of projections.
    #[test]
    fn projection_distributes_over_union(a in arb_relation(8), b in arb_relation(8)) {
        let left = a.union(&b).unwrap().project(&["A"]).unwrap();
        let right = a
            .project(&["A"]).unwrap()
            .union(&b.project(&["A"]).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }

    /// Natural join with itself is idempotent (a relation joined with itself
    /// on all attributes is itself).
    #[test]
    fn self_join_is_identity(a in arb_relation(8)) {
        let joined = a.natural_join(&a).unwrap();
        prop_assert_eq!(joined, a.clone());
    }

    /// Repairs form a probability distribution over subset-maximal key-
    /// respecting subsets: probabilities are positive and sum to one, every
    /// repair picks exactly one tuple per key group, and the number of
    /// repairs matches the group-size product.
    #[test]
    fn repair_key_is_a_distribution(a in arb_relation(6)) {
        prop_assume!(!a.is_empty());
        let reps = repairs(&a, &["A"], "W").unwrap();
        prop_assert_eq!(reps.len(), repair_count(&a, &["A"]).unwrap());
        let total: f64 = reps.iter().map(|r| r.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let groups = a.group_by(&["A"]).unwrap();
        for rep in &reps {
            prop_assert!(rep.probability > 0.0);
            prop_assert_eq!(rep.relation.len(), groups.len());
            // One representative per group key.
            let keys = rep.relation.project(&["A"]).unwrap();
            prop_assert_eq!(keys.len(), groups.len());
        }
    }

    /// Tuple confidence under repair-key equals the tuple's weight share of
    /// its key group.
    #[test]
    fn repair_key_marginals_match_weight_shares(a in arb_relation(6)) {
        prop_assume!(!a.is_empty());
        let reps = repairs(&a, &["A"], "W").unwrap();
        for t in a.iter() {
            let marginal: f64 = reps
                .iter()
                .filter(|r| r.relation.contains(t))
                .map(|r| r.probability)
                .sum();
            let group_total: f64 = a
                .iter()
                .filter(|u| u[0] == t[0])
                .map(|u| u[2].as_f64().unwrap())
                .sum();
            let expected = t[2].as_f64().unwrap() / group_total;
            prop_assert!((marginal - expected).abs() < 1e-9,
                "tuple {} has marginal {} expected {}", t, marginal, expected);
        }
    }
}
