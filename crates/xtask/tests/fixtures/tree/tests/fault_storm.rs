#[test]
fn storm_exercises_alpha_and_beta_only() {
    let _sites = ["alpha", "beta"];
}
