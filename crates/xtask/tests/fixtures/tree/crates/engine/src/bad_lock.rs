use std::sync::Mutex;
pub fn make() -> Mutex<u32> {
    Mutex::new(0)
}
