use std::collections::{HashMap, HashSet};
pub type Lookup = HashMap<u32, u32>;
pub type Members = HashSet<u32>;
