pub const SITES: [&str; 2] = ["alpha", "delta"];
pub const COST_SITES: [&str; 1] = ["beta"];
pub const CORRUPT_SITES: [&str; 0] = [];
