pub fn fine() -> u8 {
    // SAFETY: reading a freshly created value through its own reference.
    unsafe { core::ptr::read(&7u8) }
}

pub fn bad() -> u8 {
    unsafe { core::ptr::read(&7u8) }
}
