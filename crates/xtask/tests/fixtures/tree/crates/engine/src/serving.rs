pub fn probes() {
    crate::faults::fire("alpha", None);
    crate::faults::fire_cost_only("beta");
    crate::faults::fire("zeta", None);
}
