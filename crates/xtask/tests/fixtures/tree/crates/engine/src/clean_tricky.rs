// A Mutex named in a comment must not trip the raw-lock rule, and an
// unsafe keyword here must not trip the SAFETY rule either.
pub const DOC: &str = "Mutex::new, unsafe, and HashMap live in this string";
pub const RAW: &str = r#"RwLock<"quoted"> and a Condvar"#;

pub fn lifetimes<'scope>(x: &'scope str) -> &'scope str {
    x
}

pub struct OrderedMutexLike;
