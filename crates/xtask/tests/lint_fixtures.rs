//! The lint's own acceptance tests: every rule must flag its fixture
//! violation, every decoy must stay silent, and the real repository tree
//! must lint clean (this test is what keeps it that way).

use std::path::PathBuf;
use xtask::{lint, RULE_ALLOWLIST, RULE_DETERMINISM, RULE_FAILPOINTS, RULE_RAW_LOCK, RULE_SAFETY};

fn fixture_tree() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree")
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn every_rule_flags_its_fixture_violation() {
    let findings = lint(&fixture_tree()).expect("fixture tree is scannable");
    let have: Vec<(&str, &str, usize, &str)> = findings
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line, f.token.as_str()))
        .collect();
    let want = [
        // Raw Mutex at import, signature, and construction.
        (RULE_RAW_LOCK, "crates/engine/src/bad_lock.rs", 1, "Mutex"),
        (RULE_RAW_LOCK, "crates/engine/src/bad_lock.rs", 2, "Mutex"),
        (RULE_RAW_LOCK, "crates/engine/src/bad_lock.rs", 3, "Mutex"),
        // The second unsafe block has no SAFETY comment.
        (RULE_SAFETY, "crates/engine/src/bad_unsafe.rs", 7, "unsafe"),
        // HashMap twice; HashSet is allowlisted.
        (
            RULE_DETERMINISM,
            "crates/engine/src/physical.rs",
            1,
            "HashMap",
        ),
        (
            RULE_DETERMINISM,
            "crates/engine/src/physical.rs",
            2,
            "HashMap",
        ),
        // An unregistered probe literal...
        (RULE_FAILPOINTS, "crates/engine/src/serving.rs", 4, "zeta"),
        // ...and a registered site that is neither probed nor exercised.
        (RULE_FAILPOINTS, "crates/engine/src/faults.rs", 1, "delta"),
        (RULE_FAILPOINTS, "crates/engine/src/faults.rs", 1, "delta"),
        // The decoy allowlist entry matches nothing.
        (RULE_ALLOWLIST, "lint.allow", 3, "Mutex"),
    ];
    for expected in want {
        assert!(
            have.contains(&expected),
            "missing expected finding {expected:?} in {have:#?}"
        );
    }
    assert_eq!(
        findings.len(),
        want.len(),
        "unexpected extra findings: {findings:#?}"
    );
}

#[test]
fn decoys_in_comments_strings_and_wrapper_names_stay_silent() {
    let findings = lint(&fixture_tree()).expect("fixture tree is scannable");
    assert!(
        findings
            .iter()
            .all(|f| f.path != "crates/engine/src/clean_tricky.rs"),
        "clean_tricky.rs must produce no findings: {findings:#?}"
    );
    // The first unsafe block carries a SAFETY comment and must pass.
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == RULE_SAFETY && f.line == 3),
        "the SAFETY-annotated block must not be flagged"
    );
}

#[test]
fn the_repository_tree_lints_clean() {
    let findings = lint(&repo_root()).expect("repository tree is scannable");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; fix or allowlist:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
