//! `cargo run -p xtask -- lint` — run the workspace lint (see the library
//! docs for the rules).  Exits 0 on a clean tree, 1 with findings on
//! stdout otherwise, 2 on usage or configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = args.iter().map(String::as_str);
    if args.next() != Some("lint") {
        eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
        return ExitCode::from(2);
    }
    let root = match (args.next(), args.next()) {
        (Some("--root"), Some(dir)) => PathBuf::from(dir),
        (None, _) => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
            return ExitCode::from(2);
        }
    };
    match xtask::lint(&root) {
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("xtask lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
    }
}
