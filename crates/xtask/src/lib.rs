//! The workspace lint: machine checks for the invariants ARCHITECTURE.md
//! can only state in prose.
//!
//! `cargo run -p xtask -- lint` walks every Rust source file in the
//! repository and enforces four rules:
//!
//! 1. **`raw-lock`** — no raw `std::sync` lock construction (`Mutex`,
//!    `RwLock`, `Condvar`) outside the ranked wrappers in
//!    `crates/engine/src/sync.rs` and `vendor/rayon/src/lockcheck.rs`.
//!    Every lock in the process must carry a `LockRank` so the lock-order
//!    checker sees it.
//! 2. **`unsafe-safety`** — every `unsafe` keyword is preceded by a
//!    `// SAFETY:` comment (attributes may sit between the comment and the
//!    keyword).
//! 3. **`determinism`** — the modules on the deterministic evaluation path
//!    must not read wall clocks (`Instant`, `SystemTime`) or iterate
//!    hash-ordered containers (`HashMap`, `HashSet`); answers are replayed
//!    bit-for-bit from a seed, so iteration order and time are both
//!    forbidden inputs.  Sanctioned uses (deadline checks, lookup-only
//!    maps) are listed in the allowlist with a justification.
//! 4. **`failpoints`** — the failpoint registry in
//!    `crates/engine/src/faults.rs` and its uses stay in sync three ways:
//!    every probe call site names a registered site, every registered site
//!    has a probe call site, and every registered site is exercised by a
//!    string literal in `tests/fault_storm.rs`.
//!
//! Findings are suppressed by `lint.allow` at the repository root; an
//! allowlist entry that no longer matches anything is itself a finding
//! (rule **`allowlist`**), so the list can only shrink as code is fixed.
//!
//! The scanner is line- and token-based, not a parser: comments and string
//! literals are blanked before identifier matching (so prose and message
//! text never trip a rule), and identifiers match whole tokens only
//! (`OrderedMutex` does not contain the token `Mutex`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Rule name: raw `std::sync` lock outside the ranked wrappers.
pub const RULE_RAW_LOCK: &str = "raw-lock";
/// Rule name: `unsafe` without a `// SAFETY:` comment above it.
pub const RULE_SAFETY: &str = "unsafe-safety";
/// Rule name: wall clock or hash-order iteration in a deterministic module.
pub const RULE_DETERMINISM: &str = "determinism";
/// Rule name: failpoint registry and probe/test literals out of sync.
pub const RULE_FAILPOINTS: &str = "failpoints";
/// Rule name: a `lint.allow` entry that matches nothing (or is malformed).
pub const RULE_ALLOWLIST: &str = "allowlist";

/// The two files allowed to construct raw `std::sync` primitives: the
/// ranked wrappers themselves.
const RAW_LOCK_EXEMPT: [&str; 2] = ["crates/engine/src/sync.rs", "vendor/rayon/src/lockcheck.rs"];

/// The deterministic evaluation path: algebra rewriting, u-relations,
/// confidence compilation and world enumeration, physical evaluation, and
/// delta maintenance.  See ARCHITECTURE.md invariant 2 (bit-replayable
/// answers) for why time and hash order are forbidden here.
const DETERMINISTIC_DIRS: [&str; 2] = ["crates/algebra/src/", "crates/urel/src/"];
const DETERMINISTIC_FILES: [&str; 7] = [
    "crates/confidence/src/compile.rs",
    "crates/confidence/src/bitworld.rs",
    "crates/confidence/src/dnnf.rs",
    "crates/confidence/src/cost.rs",
    "crates/engine/src/physical.rs",
    "crates/engine/src/delta.rs",
    "crates/engine/src/sched.rs",
];

/// Where the failpoint registry lives and where every site must be
/// exercised.
const FAULTS_REGISTRY: &str = "crates/engine/src/faults.rs";
const FAULT_STORM_SUITE: &str = "tests/fault_storm.rs";

/// One lint violation, pointing at a repository-relative file and line.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repository-relative path with `/` separators.
    pub path: String,
    /// 1-based line number the finding anchors to.
    pub line: usize,
    /// One of the `RULE_*` names.
    pub rule: &'static str,
    /// The offending token — what an allowlist entry must name to
    /// suppress this finding.
    pub token: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A source file split into the three views the rules scan.
///
/// All views have identical line structure (newlines are preserved), so a
/// line index is valid across them and against the original file.
pub struct Source {
    /// Comments and string/char-literal *contents* blanked to spaces:
    /// identifier matching runs here.
    pub code: Vec<String>,
    /// Comments blanked, string literals kept: failpoint site literals are
    /// extracted from here.
    pub code_with_strings: Vec<String>,
    /// The file verbatim: `// SAFETY:` comments are found here.
    pub raw: Vec<String>,
}

/// Splits `text` into the lint [`Source`] views with a single pass that
/// understands line and (nested) block comments, normal and raw string
/// literals, byte strings, char literals, and lifetimes (`'scope` is code,
/// not an unterminated char literal).
pub fn split_views(text: &str) -> Source {
    let chars: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut with_strings = String::with_capacity(text.len());
    // Newlines always pass through both views so line numbers survive.
    fn emit(out: &mut String, c: char, visible: bool) {
        out.push(if c == '\n' || visible { c } else { ' ' });
    }
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        // Line comment: blank to end of line in both code views.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                emit(&mut code, chars[i], false);
                emit(&mut with_strings, chars[i], false);
                i += 1;
            }
            continue;
        }
        // Block comment, which Rust nests.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    for _ in 0..2 {
                        emit(&mut code, chars[i], false);
                        emit(&mut with_strings, chars[i], false);
                        i += 1;
                    }
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    for _ in 0..2 {
                        emit(&mut code, chars[i], false);
                        emit(&mut with_strings, chars[i], false);
                        i += 1;
                    }
                    if depth == 0 {
                        break;
                    }
                } else {
                    emit(&mut code, chars[i], false);
                    emit(&mut with_strings, chars[i], false);
                    i += 1;
                }
            }
            continue;
        }
        // String literal.  Raw-ness is decided by the characters already
        // consumed: trailing `#`s, then `r` (optionally preceded by `b`)
        // that does not terminate a longer identifier.
        if c == '"' {
            let mut j = i;
            let mut hashes = 0usize;
            while j > 0 && chars[j - 1] == '#' {
                j -= 1;
                hashes += 1;
            }
            let is_raw = j > 0 && chars[j - 1] == 'r' && {
                let mut k = j - 1;
                if k > 0 && chars[k - 1] == 'b' {
                    k -= 1;
                }
                k == 0 || (!chars[k - 1].is_alphanumeric() && chars[k - 1] != '_')
            };
            let hashes = if is_raw { hashes } else { 0 };
            emit(&mut code, '"', false);
            emit(&mut with_strings, '"', true);
            i += 1;
            if is_raw {
                while i < chars.len() {
                    let closes = chars[i] == '"'
                        && i + hashes < chars.len()
                        && chars[i + 1..i + 1 + hashes].iter().all(|&h| h == '#');
                    if closes {
                        for _ in 0..=hashes {
                            emit(&mut code, chars[i], false);
                            emit(&mut with_strings, chars[i], true);
                            i += 1;
                        }
                        break;
                    }
                    emit(&mut code, chars[i], false);
                    emit(&mut with_strings, chars[i], true);
                    i += 1;
                }
            } else {
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        for _ in 0..2 {
                            emit(&mut code, chars[i], false);
                            emit(&mut with_strings, chars[i], true);
                            i += 1;
                        }
                        continue;
                    }
                    let done = chars[i] == '"';
                    emit(&mut code, chars[i], false);
                    emit(&mut with_strings, chars[i], true);
                    i += 1;
                    if done {
                        break;
                    }
                }
            }
            continue;
        }
        // Char literal vs lifetime: `'x'` and `'\n'` are literals, `'a` in
        // `<'a>` (no closing quote within reach) is a lifetime and stays
        // code.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                emit(&mut code, chars[i], true);
                emit(&mut with_strings, chars[i], true);
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    emit(&mut code, chars[i], true);
                    emit(&mut with_strings, chars[i], true);
                    i += 1;
                }
                if i < chars.len() {
                    emit(&mut code, chars[i], true);
                    emit(&mut with_strings, chars[i], true);
                    i += 1;
                }
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                for _ in 0..3 {
                    emit(&mut code, chars[i], true);
                    emit(&mut with_strings, chars[i], true);
                    i += 1;
                }
                continue;
            }
            // A lifetime: fall through as ordinary code.
        }
        emit(&mut code, c, true);
        emit(&mut with_strings, c, true);
        i += 1;
    }
    let lines = |s: &str| s.split('\n').map(str::to_owned).collect();
    Source {
        code: lines(&code),
        code_with_strings: lines(&with_strings),
        raw: lines(text),
    }
}

/// Yields every maximal identifier token (`[A-Za-z_][A-Za-z0-9_]*`) on a
/// line, so `OrderedMutex` is one token and never matches `Mutex`.
pub fn identifiers(line: &str) -> Vec<&str> {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident(bytes[i]) {
            let start = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            if !bytes[start].is_ascii_digit() {
                out.push(&line[start..i]);
            }
        } else {
            i += 1;
        }
    }
    out
}

/// One `lint.allow` entry: `rule path token`, with `#` comments.
struct AllowEntry {
    rule: String,
    path: String,
    token: String,
    line: usize,
    used: bool,
}

/// Parses `lint.allow`; malformed lines become `allowlist` findings.
fn load_allowlist(root: &Path, findings: &mut Vec<Finding>) -> Vec<AllowEntry> {
    let path = root.join("lint.allow");
    let Ok(text) = fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if let [rule, path, token] = fields[..] {
            entries.push(AllowEntry {
                rule: rule.to_owned(),
                path: path.to_owned(),
                token: token.to_owned(),
                line: idx + 1,
                used: false,
            });
        } else {
            findings.push(Finding {
                path: "lint.allow".to_owned(),
                line: idx + 1,
                rule: RULE_ALLOWLIST,
                token: line.to_owned(),
                message: format!("malformed allowlist entry (want `rule path token`): {line:?}"),
            });
        }
    }
    entries
}

/// Recursively collects every `.rs` file under the scan roots, skipping
/// build output and the lint's own test fixtures (which are violations on
/// purpose).
fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = ["crates", "src", "tests", "examples", "vendor"]
        .iter()
        .map(|d| root.join(d))
        .filter(|d| d.is_dir())
        .collect();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() {
                if name != "target" && !path.ends_with("crates/xtask/tests/fixtures") {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// `path` relative to `root`, with `/` separators.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn is_deterministic_path(rel: &str) -> bool {
    DETERMINISTIC_DIRS.iter().any(|d| rel.starts_with(d)) || DETERMINISTIC_FILES.contains(&rel)
}

/// Whether any comment line directly above `line` (1-based, skipping
/// attributes and earlier comment lines) contains `SAFETY:`.
fn has_safety_comment(raw: &[String], line: usize) -> bool {
    let mut idx = line - 1; // 0-based index of the `unsafe` line itself
    while idx > 0 {
        idx -= 1;
        let t = raw[idx].trim_start();
        if t.starts_with("//") {
            if t.contains("SAFETY:") {
                return true;
            }
        } else if !(t.starts_with("#[") || t.starts_with("#![")) {
            return false;
        }
    }
    false
}

/// Extracts the failpoint site literals of one probe-call line: the first
/// string argument of `fire(`, `fire_cost_only(`, `corrupt_bytes(`, and
/// `FaultPlan::at` (matched as `.at(`).
fn probe_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for pat in ["fire(", "fire_cost_only(", "corrupt_bytes(", ".at("] {
        let mut from = 0;
        while let Some(hit) = line[from..].find(pat) {
            let start = from + hit;
            from = start + pat.len();
            // Reject matches that end a longer identifier (`misfire(`).
            if !pat.starts_with('.') && start > 0 {
                let before = line.as_bytes()[start - 1];
                if before.is_ascii_alphanumeric() || before == b'_' {
                    continue;
                }
            }
            let rest = line[from..].trim_start();
            if let Some(lit) = rest.strip_prefix('"') {
                if let Some(end) = lit.find('"') {
                    out.push(lit[..end].to_owned());
                }
            }
        }
    }
    out
}

/// Pulls the string literals out of `pub const <name>: [...] = [...];` in
/// the registry source (comment-stripped view, literals kept).
fn registry_array(text: &str, name: &str) -> Option<Vec<String>> {
    let needle = format!("const {name}:");
    let start = text.find(&needle)?;
    // Slice from the `=` so the `;` inside the `[&str; N]` type does not
    // truncate the value expression.
    let tail = &text[start..];
    let eq = tail.find('=')?;
    let value = &tail[eq..];
    let end = value.find(';')?;
    let mut sites = Vec::new();
    let mut rest = &value[..end];
    while let Some(q) = rest.find('"') {
        let lit = &rest[q + 1..];
        let close = lit.find('"')?;
        sites.push(lit[..close].to_owned());
        rest = &lit[close + 1..];
    }
    Some(sites)
}

/// Runs every rule over the tree rooted at `root` and returns the
/// surviving findings, sorted by path and line.  `Err` is reserved for a
/// tree the lint cannot scan at all (missing registry or storm suite).
pub fn lint(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let mut allow = load_allowlist(root, &mut findings);

    let raw_lock_tokens = ["Mutex", "RwLock", "Condvar"];
    let hash_tokens = ["HashMap", "HashSet"];
    let clock_tokens = ["Instant", "SystemTime"];

    // site -> (file, line) of one probe call; gathered during the walk.
    let mut probed: BTreeMap<String, (String, usize)> = BTreeMap::new();
    let mut probe_findings: Vec<(String, usize, String)> = Vec::new();
    let mut registry_text = None;
    let mut storm_text = None;

    for path in rust_files(root) {
        let rel = rel(root, &path);
        let text = fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
        let views = split_views(&text);
        let deterministic = is_deterministic_path(&rel);
        let lock_exempt = RAW_LOCK_EXEMPT.contains(&rel.as_str());

        for (idx, line) in views.code.iter().enumerate() {
            let lineno = idx + 1;
            // Dedup per line+token: one `use` line naming a token twice is
            // one finding.
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for ident in identifiers(line) {
                if !seen.insert(ident) {
                    continue;
                }
                if !lock_exempt && raw_lock_tokens.contains(&ident) {
                    findings.push(Finding {
                        path: rel.clone(),
                        line: lineno,
                        rule: RULE_RAW_LOCK,
                        token: ident.to_owned(),
                        message: format!(
                            "raw `std::sync::{ident}` outside engine::sync — use the ranked \
                             wrapper (Ordered{ident}) so the lock carries a LockRank"
                        ),
                    });
                }
                if ident == "unsafe" && !has_safety_comment(&views.raw, lineno) {
                    findings.push(Finding {
                        path: rel.clone(),
                        line: lineno,
                        rule: RULE_SAFETY,
                        token: "unsafe".to_owned(),
                        message: "`unsafe` without a `// SAFETY:` comment above it".to_owned(),
                    });
                }
                if deterministic && hash_tokens.contains(&ident) {
                    findings.push(Finding {
                        path: rel.clone(),
                        line: lineno,
                        rule: RULE_DETERMINISM,
                        token: ident.to_owned(),
                        message: format!(
                            "`{ident}` in a deterministic module: iteration order is \
                             nondeterministic — use the BTree variant, or allowlist a \
                             lookup-only use"
                        ),
                    });
                }
                if deterministic && clock_tokens.contains(&ident) {
                    findings.push(Finding {
                        path: rel.clone(),
                        line: lineno,
                        rule: RULE_DETERMINISM,
                        token: ident.to_owned(),
                        message: format!(
                            "`{ident}` in a deterministic module: wall-clock reads are \
                             nondeterministic — allowlist deadline-only uses"
                        ),
                    });
                }
            }
        }

        if rel == FAULTS_REGISTRY {
            registry_text = Some(views.code_with_strings.join("\n"));
            continue; // its own tests probe synthetic sites
        }
        if rel == FAULT_STORM_SUITE {
            storm_text = Some(views.code_with_strings.join("\n"));
        }
        // The lint's own sources spell the probe patterns out; vendored
        // crates have no access to the engine registry.
        if rel.starts_with("crates/xtask/") || rel.starts_with("vendor/") {
            continue;
        }
        for (idx, line) in views.code_with_strings.iter().enumerate() {
            for site in probe_literals(line) {
                probed.entry(site.clone()).or_insert((rel.clone(), idx + 1));
                probe_findings.push((rel.clone(), idx + 1, site));
            }
        }
    }

    // The failpoint cross-check proper.
    let registry_text =
        registry_text.ok_or_else(|| format!("{FAULTS_REGISTRY} not found under {root:?}"))?;
    let storm_text =
        storm_text.ok_or_else(|| format!("{FAULT_STORM_SUITE} not found under {root:?}"))?;
    let mut registered: BTreeSet<String> = BTreeSet::new();
    for array in ["SITES", "COST_SITES", "CORRUPT_SITES"] {
        let sites = registry_array(&registry_text, array)
            .ok_or_else(|| format!("cannot parse `const {array}` in {FAULTS_REGISTRY}"))?;
        registered.extend(sites);
    }
    for (path, line, site) in probe_findings {
        if !registered.contains(&site) {
            findings.push(Finding {
                path,
                line,
                rule: RULE_FAILPOINTS,
                token: site.clone(),
                message: format!(
                    "probe names unregistered failpoint site {site:?} — add it to the \
                     registry arrays in {FAULTS_REGISTRY}"
                ),
            });
        }
    }
    for site in &registered {
        let at = |text: &str| {
            text.lines()
                .position(|l| l.contains(&format!("{site:?}")))
                .map_or(1, |i| i + 1)
        };
        if !probed.contains_key(site) {
            findings.push(Finding {
                path: FAULTS_REGISTRY.to_owned(),
                line: at(&registry_text),
                rule: RULE_FAILPOINTS,
                token: site.clone(),
                message: format!("registered failpoint site {site:?} has no probe call site"),
            });
        }
        if !storm_text.contains(&format!("{site:?}")) {
            findings.push(Finding {
                path: FAULTS_REGISTRY.to_owned(),
                line: at(&registry_text),
                rule: RULE_FAILPOINTS,
                token: site.clone(),
                message: format!(
                    "registered failpoint site {site:?} is not exercised by \
                     {FAULT_STORM_SUITE}"
                ),
            });
        }
    }

    // Apply the allowlist, then flag the entries that earned nothing.
    findings.retain(|f| {
        !allow.iter_mut().any(|e| {
            let hit = e.rule == f.rule && e.path == f.path && e.token == f.token;
            e.used |= hit;
            hit
        })
    });
    for e in &allow {
        if !e.used {
            findings.push(Finding {
                path: "lint.allow".to_owned(),
                line: e.line,
                rule: RULE_ALLOWLIST,
                token: e.token.clone(),
                message: format!(
                    "stale allowlist entry `{} {} {}` matches no finding — remove it",
                    e.rule, e.path, e.token
                ),
            });
        }
    }
    findings.sort();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked_for_identifier_matching() {
        let src = "// a Mutex in prose\nlet m = \"Mutex RwLock\"; /* Condvar */\n";
        let views = split_views(src);
        assert!(identifiers(&views.code[0]).is_empty());
        assert_eq!(identifiers(&views.code[1]), ["let", "m"]);
        // The string survives in the literal view for failpoint scanning.
        assert!(views.code_with_strings[1].contains("Mutex RwLock"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'scope>(x: &'scope str) -> &'scope str { x }\n";
        let views = split_views(src);
        assert!(identifiers(&views.code[0]).contains(&"scope"));
        assert!(views.code[0].contains('{'), "body must stay code");
    }

    #[test]
    fn raw_strings_and_char_literals_are_contained() {
        let src = "let a = r#\"Mutex \"quoted\" RwLock\"#;\nlet b = '\"';\nlet c = b'x';\nlet d = Condvar;\n";
        let views = split_views(src);
        assert!(identifiers(&views.code[0])
            .iter()
            .all(|i| *i != "Mutex" && *i != "RwLock"));
        assert_eq!(identifiers(&views.code[3]), ["let", "d", "Condvar"]);
    }

    #[test]
    fn whole_token_matching_spares_wrapper_names() {
        let views = split_views("use engine::sync::{OrderedMutex, OrderedRwLock};\n");
        let ids = identifiers(&views.code[0]);
        assert!(ids.contains(&"OrderedMutex"));
        assert!(!ids.contains(&"Mutex"));
    }

    #[test]
    fn safety_comments_allow_attributes_between() {
        let raw: Vec<String> = [
            "// SAFETY: the transmute widens a lifetime only.",
            "#[allow(clippy::transmute_ptr_to_ptr)]",
            "unsafe {",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(has_safety_comment(&raw, 3));
        let bare: Vec<String> = ["let x = 1;", "unsafe {"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(!has_safety_comment(&bare, 2));
    }

    #[test]
    fn probe_literal_extraction_matches_whole_calls() {
        assert_eq!(
            probe_literals("crate::faults::fire(\"admission\", deadline)?;"),
            ["admission"]
        );
        assert_eq!(probe_literals("plan.at(\"estimate\")"), ["estimate"]);
        assert!(probe_literals("misfire(\"nope\")").is_empty());
        assert!(probe_literals("fire(site, deadline)").is_empty());
    }

    #[test]
    fn registry_arrays_parse_including_empty_ones() {
        let text =
            "pub const SITES: [&str; 2] = [\"a\", \"b\"];\npub const COST_SITES: [&str; 0] = [];\n";
        assert_eq!(registry_array(text, "SITES").unwrap(), ["a", "b"]);
        assert!(registry_array(text, "COST_SITES").unwrap().is_empty());
        assert!(registry_array(text, "CORRUPT_SITES").is_none());
    }
}
