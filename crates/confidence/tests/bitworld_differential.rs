//! Differential properties of the bit-parallel estimation path: the
//! compiled 64-worlds-per-word kernels must estimate the same quantity as
//! the scalar reference estimator (within Chernoff tolerance of the exact
//! value, since seeds re-map between the two paths), and must stay
//! bit-deterministic per seed.

use confidence::{
    chernoff, exact, Assignment, BitKarpLuby, ConfidenceEstimator, DnfEvent, FprasEstimator,
    FprasParams, IncrementalEstimator, KarpLubyEstimator, LineagePrograms, ProbabilitySpace,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Random events over a mix of Boolean and multi-valued variables: the
/// Boolean fast path and the threshold-walk path are both exercised, and
/// term counts reach well past 64-lane saturation (with up to 28 terms a
/// block leaves many positions unchosen — the regime where stale
/// chosen-term bookkeeping between blocks would surface).
fn arb_event() -> impl Strategy<Value = (DnfEvent, ProbabilitySpace)> {
    (
        proptest::collection::vec((5u32..95, 2usize..5), 2..9),
        proptest::collection::vec(
            proptest::collection::vec((0usize..10, 0usize..5), 1..4),
            1..29,
        ),
    )
        .prop_map(|(var_specs, raw_terms)| {
            let mut space = ProbabilitySpace::new();
            for (p, alts) in &var_specs {
                if *alts == 2 {
                    space.add_bool_variable(*p as f64 / 100.0).unwrap();
                } else {
                    // A skewed but valid distribution over `alts` values.
                    let head = *p as f64 / 100.0;
                    let rest = (1.0 - head) / (*alts as f64 - 1.0);
                    let mut dist = vec![head];
                    dist.extend(std::iter::repeat_n(rest, *alts - 1));
                    space.add_variable(dist).unwrap();
                }
            }
            let n = var_specs.len();
            let mut terms = Vec::new();
            for pairs in raw_terms {
                let pairs: Vec<(usize, usize)> = pairs
                    .into_iter()
                    .map(|(v, a)| {
                        let v = v % n;
                        (v, a % var_specs[v].1)
                    })
                    .collect();
                if let Ok(a) = Assignment::new(pairs) {
                    terms.push(a);
                }
            }
            if terms.is_empty() {
                terms.push(Assignment::new([(0, 0)]).unwrap());
            }
            (DnfEvent::new(terms), space)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, .. ProptestConfig::default() })]

    /// The bit-parallel kernel and the scalar reference estimator agree with
    /// the exact probability — and hence with each other — within the
    /// Chernoff tolerance of their shared sample budget (ε = 0.5, δ = 1e-3,
    /// so a violation is overwhelmingly a correctness bug, not noise).
    #[test]
    fn bit_parallel_matches_the_scalar_reference((event, space) in arb_event(), seed in 0u64..48) {
        let exact_p = exact::probability(&event, &space).unwrap();
        prop_assume!(exact_p > 0.02 && !event.is_certain());
        let m = chernoff::required_samples(0.5, 1e-3, event.num_terms()).unwrap();

        let scalar = KarpLubyEstimator::new(event.clone(), space.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scalar_estimate = scalar.estimate(m, &mut rng).unwrap();

        let programs = Arc::new(LineagePrograms::compile(vec![event], &space).unwrap());
        let mut kernel = BitKarpLuby::new(programs, 0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bit_estimate = kernel.estimate(m, &mut rng).unwrap();

        let tolerance = 0.5 * exact_p + 1e-9;
        prop_assert!(
            (scalar_estimate - exact_p).abs() <= tolerance,
            "scalar {scalar_estimate} vs exact {exact_p} (m = {m})"
        );
        prop_assert!(
            (bit_estimate - exact_p).abs() <= tolerance,
            "bit-parallel {bit_estimate} vs exact {exact_p} (m = {m})"
        );
    }

    /// The incremental estimator (which backs the adaptive σ̂ driver and the
    /// fixed-`l` mode) converges to the exact value on its bit-parallel
    /// kernel under arbitrary batch schedules.
    #[test]
    fn incremental_bit_parallel_converges((event, space) in arb_event(), seed in 0u64..32) {
        let exact_p = exact::probability(&event, &space).unwrap();
        prop_assume!(exact_p > 0.02 && !event.is_certain());
        let m = chernoff::required_samples(0.5, 1e-3, event.num_terms()).unwrap();
        let mut estimator = IncrementalEstimator::new(event, space).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Odd-sized increments force the lane bank into play.
        let mut drawn = 0usize;
        while drawn < m {
            let n = (m - drawn).min(1 + (drawn % 97));
            estimator.add_samples(n, &mut rng);
            drawn += n;
        }
        prop_assert_eq!(estimator.samples(), m as u64);
        prop_assert!(
            (estimator.estimate() - exact_p).abs() <= 0.5 * exact_p + 1e-9,
            "incremental {} vs exact {} (m = {})", estimator.estimate(), exact_p, m
        );
    }

    /// Every block width (1, 2 and 4 words — 64, 128 and 256 lanes) lands
    /// within the shared Chernoff tolerance of the exact value, and each
    /// width is bit-deterministic per seed.
    #[test]
    fn every_block_width_matches_exact_and_is_deterministic(
        (event, space) in arb_event(),
        seed in 0u64..24,
    ) {
        let exact_p = exact::probability(&event, &space).unwrap();
        prop_assume!(exact_p > 0.02 && !event.is_certain());
        let m = chernoff::required_samples(0.5, 1e-3, event.num_terms()).unwrap();
        let programs = Arc::new(LineagePrograms::compile(vec![event], &space).unwrap());
        for words in [1usize, 2, 4] {
            let mut kernel = BitKarpLuby::new_with_width(programs.clone(), 0, words).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let estimate = kernel.estimate(m, &mut rng).unwrap();
            prop_assert!(
                (estimate - exact_p).abs() <= 0.5 * exact_p + 1e-9,
                "width {words}: {estimate} vs exact {exact_p} (m = {m})"
            );
            let mut again = BitKarpLuby::new_with_width(programs.clone(), 0, words).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            prop_assert_eq!(
                again.estimate(m, &mut rng).unwrap(),
                estimate,
                "width {} must be bit-deterministic per seed", words
            );
        }
    }

    /// Repeated bit-parallel runs under one seed are bit-identical, and the
    /// compiled estimator layer is deterministic end to end.
    #[test]
    fn bit_parallel_is_deterministic_per_seed((event, space) in arb_event(), seed in 0u64..u64::MAX) {
        let programs = Arc::new(
            LineagePrograms::compile(vec![event.clone(), event], &space).unwrap(),
        );
        if programs.trivial(0).is_none() {
            let mut a = BitKarpLuby::new(programs.clone(), 0).unwrap();
            let mut b = BitKarpLuby::new(programs.clone(), 0).unwrap();
            let mut r1 = ChaCha8Rng::seed_from_u64(seed);
            let mut r2 = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..8 {
                prop_assert_eq!(a.sample_block_bits(&mut r1), b.sample_block_bits(&mut r2));
            }
        }
        let fpras = FprasEstimator::new(FprasParams::new(0.4, 0.2).unwrap());
        let x = fpras.estimate_compiled_batch(&programs, seed).unwrap();
        let y = fpras.estimate_compiled_batch(&programs, seed).unwrap();
        prop_assert_eq!(x, y, "one master seed must reproduce the batch bit-identically");
    }
}

/// Regression: a wide union (|F| = 100 single-literal terms, exact
/// probability ≈ 1) must not be overestimated.  Most term positions go
/// unchosen in any given 64-lane block here, so lane bits surviving from a
/// previous block's choices would be counted as spurious successes and
/// push the estimate far above 1.
#[test]
fn wide_unions_are_not_overestimated_across_blocks() {
    let mut space = ProbabilitySpace::new();
    let mut terms = Vec::new();
    for _ in 0..100 {
        let v = space.add_bool_variable(0.5).unwrap();
        terms.push(Assignment::new([(v, 0)]).unwrap());
    }
    let event = DnfEvent::new(terms);
    let exact_p = exact::probability(&event, &space).unwrap();
    assert!((exact_p - 1.0).abs() < 1e-12);
    let programs = Arc::new(LineagePrograms::compile(vec![event], &space).unwrap());
    let mut kernel = BitKarpLuby::new(programs, 0).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let estimate = kernel.estimate(100_000, &mut rng).unwrap();
    assert!(
        (estimate - 1.0).abs() < 0.05,
        "bit-parallel estimate {estimate} strayed from exact 1.0"
    );
}

/// Pin (non-proptest) the trait-level contract: the compiled batch equals
/// mapping `estimate_compiled` with per-index seeds, and trivial events are
/// answered exactly.
#[test]
fn compiled_batch_equals_compiled_map() {
    let mut space = ProbabilitySpace::new();
    let x = space.add_bool_variable(0.3).unwrap();
    let y = space.add_bool_variable(0.6).unwrap();
    let events = vec![
        DnfEvent::never(),
        DnfEvent::new([Assignment::new([(x, 0)]).unwrap()]),
        DnfEvent::new([
            Assignment::new([(x, 1)]).unwrap(),
            Assignment::new([(y, 0)]).unwrap(),
        ]),
        DnfEvent::new([Assignment::always()]),
    ];
    let programs = Arc::new(LineagePrograms::compile(events, &space).unwrap());
    let fpras = FprasEstimator::new(FprasParams::new(0.2, 0.1).unwrap());
    let batch = fpras.estimate_compiled_batch(&programs, 77).unwrap();
    for (i, estimate) in batch.iter().enumerate() {
        let single = fpras
            .estimate_compiled(&programs, i, confidence::event_seed(77, i))
            .unwrap();
        assert_eq!(*estimate, single);
    }
    assert_eq!(batch[0].estimate, 0.0);
    assert!(batch[0].exact);
    assert_eq!(batch[3].estimate, 1.0);
    assert!(batch[3].exact);
    assert!(!batch[1].exact && batch[1].samples > 0);
}
