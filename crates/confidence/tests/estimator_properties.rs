//! Property tests for confidence computation: agreement of the exact
//! methods (Shannon expansion vs compiled d-DNNF weighted model counting),
//! Chernoff-bound monotonicity, and statistical sanity of the Karp–Luby
//! estimator on randomly generated events.

use confidence::{
    chernoff, dnnf, exact, Assignment, DnfEvent, KarpLubyEstimator, ProbabilitySpace,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_event() -> impl Strategy<Value = (DnfEvent, ProbabilitySpace)> {
    (
        proptest::collection::vec(5u32..95, 2..8),
        proptest::collection::vec(
            proptest::collection::vec((0usize..8, 0usize..2), 1..4),
            1..5,
        ),
    )
        .prop_map(|(probs, raw_terms)| {
            let mut space = ProbabilitySpace::new();
            for p in &probs {
                space.add_bool_variable(*p as f64 / 100.0).unwrap();
            }
            let n = probs.len();
            let mut terms = Vec::new();
            for pairs in raw_terms {
                let pairs: Vec<(usize, usize)> =
                    pairs.into_iter().map(|(v, a)| (v % n, a)).collect();
                if let Ok(a) = Assignment::new(pairs) {
                    terms.push(a);
                }
            }
            if terms.is_empty() {
                terms.push(Assignment::new([(0, 0)]).unwrap());
            }
            (DnfEvent::new(terms), space)
        })
}

/// Random events over *multi-valued* variables (2–4 alternatives each, with
/// arbitrary normalized weights), the general finite world-table case.
fn arb_multivalued_event() -> impl Strategy<Value = (DnfEvent, ProbabilitySpace)> {
    (
        proptest::collection::vec(proptest::collection::vec(1u32..50, 2..5), 2..7),
        proptest::collection::vec(
            proptest::collection::vec((0usize..7, 0usize..4), 1..4),
            1..5,
        ),
    )
        .prop_map(|(raw_weights, raw_terms)| {
            let mut space = ProbabilitySpace::new();
            let mut alt_counts = Vec::new();
            for weights in &raw_weights {
                let total: u32 = weights.iter().sum();
                let probs: Vec<f64> = weights.iter().map(|&w| w as f64 / total as f64).collect();
                alt_counts.push(probs.len());
                space.add_variable(probs).unwrap();
            }
            let n = alt_counts.len();
            let mut terms = Vec::new();
            for pairs in raw_terms {
                let pairs: Vec<(usize, usize)> = pairs
                    .into_iter()
                    .map(|(v, a)| (v % n, a % alt_counts[v % n]))
                    .collect();
                if let Ok(a) = Assignment::new(pairs) {
                    terms.push(a);
                }
            }
            if terms.is_empty() {
                terms.push(Assignment::new([(0, 0)]).unwrap());
            }
            (DnfEvent::new(terms), space)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// The compiled d-DNNF's weighted model count is *exact*: it equals the
    /// Shannon-expansion reference on random Boolean events.
    #[test]
    fn dnnf_wmc_matches_shannon_on_boolean_events((event, space) in arb_event()) {
        let reference = exact::probability(&event, &space).unwrap();
        let compiled = dnnf::probability(&event, &space, 1 << 16).unwrap();
        prop_assert!(
            (compiled - reference).abs() < 1e-9,
            "d-DNNF {compiled} vs Shannon {reference}"
        );
    }

    /// Same agreement on events over multi-valued variables, where the
    /// decision nodes fan out over every alternative and smoothing weights
    /// each unmentioned alternative by its marginal.
    #[test]
    fn dnnf_wmc_matches_shannon_on_multivalued_events(
        (event, space) in arb_multivalued_event(),
    ) {
        let reference = exact::probability(&event, &space).unwrap();
        let compiled = dnnf::probability(&event, &space, 1 << 16).unwrap();
        prop_assert!(
            (compiled - reference).abs() < 1e-9,
            "d-DNNF {compiled} vs Shannon {reference}"
        );
    }

    /// Probability monotonicity: adding a term to a DNF never decreases its
    /// probability, and the probability never exceeds the sum of term
    /// weights (union bound) nor 1.
    #[test]
    fn probability_is_monotone_in_terms((event, space) in arb_event(), extra in 0usize..8) {
        let p = exact::probability(&event, &space).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        let m = event.total_term_weight(&space).unwrap();
        prop_assert!(p <= m + 1e-12);

        let mut bigger = event.clone();
        let var = extra % space.num_variables();
        bigger.push(Assignment::new([(var, 0)]).unwrap());
        let q = exact::probability(&bigger, &space).unwrap();
        prop_assert!(q + 1e-12 >= p, "adding a term decreased the probability: {p} -> {q}");
    }

    /// The Chernoff machinery is internally consistent: the required sample
    /// count really pushes the error bound below δ, and more samples never
    /// increase the bound.
    #[test]
    fn chernoff_bounds_are_consistent(
        eps_pct in 2u32..60,
        delta_pct in 1u32..40,
        terms in 1usize..64,
        extra in 1usize..1000,
    ) {
        let eps = eps_pct as f64 / 100.0;
        let delta = delta_pct as f64 / 100.0;
        let m = chernoff::required_samples(eps, delta, terms).unwrap();
        let at_m = chernoff::error_bound(eps, m, terms).unwrap();
        prop_assert!(at_m <= delta + 1e-9);
        let at_more = chernoff::error_bound(eps, m + extra, terms).unwrap();
        prop_assert!(at_more <= at_m + 1e-12);
        // The balanced per-iteration form agrees with the sample form.
        let l = chernoff::required_iterations(eps, delta).unwrap();
        prop_assert!((chernoff::delta_prime(eps, l).unwrap()
            - chernoff::error_bound(eps, l * terms, terms).unwrap()).abs() < 1e-12);
    }

    /// A moderately sized Karp–Luby run lands in a generous interval around
    /// the exact probability (uses the Chernoff bound at ε = 0.5, δ = 1e-3,
    /// so a violation is overwhelmingly a correctness bug, not noise).
    #[test]
    fn karp_luby_lands_near_the_exact_value((event, space) in arb_event(), seed in 0u64..64) {
        let exact_p = exact::probability(&event, &space).unwrap();
        prop_assume!(exact_p > 0.02 && !event.is_certain());
        let estimator = KarpLubyEstimator::new(event.clone(), space.clone()).unwrap();
        let m = chernoff::required_samples(0.5, 1e-3, event.num_terms()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let estimate = estimator.estimate(m, &mut rng).unwrap();
        prop_assert!(
            (estimate - exact_p).abs() <= 0.5 * exact_p + 1e-9,
            "estimate {estimate} vs exact {exact_p} with m = {m}"
        );
    }
}
