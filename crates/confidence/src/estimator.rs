//! The unified confidence-estimation layer: one trait, batched and parallel.
//!
//! Query operators that compute confidences (`conf`, `cert`, `σ̂`) never need
//! a single probability — they need the probabilities of *all* tuple lineages
//! of a relation at once.  [`ConfidenceEstimator`] is the seam between the
//! engine's physical operators and the estimation machinery of Sections 4–5:
//! it accepts a batch of DNF events and evaluates them **in parallel** (via
//! rayon) while staying **deterministic under a fixed seed**, because every
//! event of a batch derives its own sub-RNG from `(master seed, batch index)`
//! — never from thread scheduling.
//!
//! Three implementations cover the paper's estimation modes:
//!
//! * [`ExactEstimator`] — exact model counting by Shannon expansion
//!   (Section 4's #P-hard baseline, [`crate::exact`]).
//! * [`FprasEstimator`] — the Karp–Luby (ε, δ)-FPRAS of Proposition 4.2,
//!   backed by [`crate::KarpLubyEstimator`].
//! * [`BatchedIncrementalEstimator`] — a fixed number of anytime batches per
//!   event, backed by [`crate::IncrementalEstimator`]; this is the inner step
//!   of the Theorem 6.7 whole-query approximation.
//!
//! ```
//! use confidence::{Assignment, ConfidenceEstimator, DnfEvent, ExactEstimator,
//!                  FprasEstimator, FprasParams, ProbabilitySpace};
//!
//! let mut space = ProbabilitySpace::new();
//! let a = space.add_bool_variable(0.5).unwrap();
//! let event = DnfEvent::new([Assignment::new([(a, 0)]).unwrap()]);
//! let events = vec![event.clone(), event];
//!
//! let exact = ExactEstimator.estimate_batch(&events, &space, 7).unwrap();
//! assert!((exact[0].estimate - 0.5).abs() < 1e-12);
//!
//! let fpras = FprasEstimator::new(FprasParams::new(0.2, 0.05).unwrap());
//! let approx = fpras.estimate_batch(&events, &space, 7).unwrap();
//! // Same seed, same batch → identical estimates, regardless of thread count.
//! assert_eq!(approx, fpras.estimate_batch(&events, &space, 7).unwrap());
//! ```

use crate::adaptive::IncrementalEstimator;
use crate::bitworld::BitKarpLuby;
use crate::compile::LineagePrograms;
use crate::cost::{self, Backend};
use crate::error::Result;
use crate::event::{DnfEvent, ProbabilitySpace};
use crate::exact;
use crate::fpras::{approximate_confidence, FprasParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::sync::Arc;

/// The estimate produced for one event of a batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventEstimate {
    /// The probability estimate `p̂` (exact value for exact estimators and
    /// for trivial events).
    pub estimate: f64,
    /// Number of Karp–Luby samples drawn for this event.
    pub samples: u64,
    /// True when the value is exact: exact model counting, or a trivial
    /// event (never/certain) answered without sampling.
    pub exact: bool,
}

/// Derives the deterministic per-event seed for position `index` of a batch
/// started with `master` (a SplitMix64 step keyed by the index, so adjacent
/// indices get uncorrelated streams).
pub fn event_seed(master: u64, index: usize) -> u64 {
    let mut z = master ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A strategy for estimating the probabilities of DNF events, in batches.
///
/// `estimate_batch` must equal mapping [`estimate_event`] over the batch with
/// the per-index seeds of [`event_seed`] — implementations parallelise, but
/// the result is defined sequentially.  The default implementation does
/// exactly that via rayon.
///
/// [`estimate_event`]: ConfidenceEstimator::estimate_event
pub trait ConfidenceEstimator: Send + Sync {
    /// A short name for statistics and plan rendering.
    fn name(&self) -> &'static str;

    /// Estimates a single event; all randomness is derived from `seed`.
    fn estimate_event(
        &self,
        event: &DnfEvent,
        space: &ProbabilitySpace,
        seed: u64,
    ) -> Result<EventEstimate>;

    /// Estimates a batch of events in parallel, deterministically in
    /// `master_seed`.
    fn estimate_batch(
        &self,
        events: &[DnfEvent],
        space: &ProbabilitySpace,
        master_seed: u64,
    ) -> Result<Vec<EventEstimate>> {
        (0..events.len())
            .into_par_iter()
            .map(|i| self.estimate_event(&events[i], space, event_seed(master_seed, i)))
            .collect()
    }

    /// Estimates event `index` of an already compiled batch; all randomness
    /// is derived from `seed`.
    ///
    /// Monte Carlo implementations override this with the bit-parallel
    /// [`crate::bitworld`] kernel (64 worlds per word, no per-sample
    /// allocation); the default falls back to the scalar
    /// [`estimate_event`](ConfidenceEstimator::estimate_event) on the
    /// retained source event.  Compiled and scalar runs draw randomness
    /// differently — seeds re-map — but each is deterministic per seed, and
    /// their estimates agree statistically (property-tested).
    fn estimate_compiled(
        &self,
        programs: &Arc<LineagePrograms>,
        index: usize,
        seed: u64,
    ) -> Result<EventEstimate> {
        self.estimate_event(&programs.events()[index], programs.space(), seed)
    }

    /// Estimates a whole compiled batch, deterministically in `master_seed`;
    /// the batched analogue of
    /// [`estimate_compiled`](ConfidenceEstimator::estimate_compiled).
    fn estimate_compiled_batch(
        &self,
        programs: &Arc<LineagePrograms>,
        master_seed: u64,
    ) -> Result<Vec<EventEstimate>> {
        (0..programs.len())
            .into_par_iter()
            .map(|i| self.estimate_compiled(programs, i, event_seed(master_seed, i)))
            .collect()
    }
}

/// Exact model counting (Shannon expansion with memoisation); ignores seeds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExactEstimator;

impl ConfidenceEstimator for ExactEstimator {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn estimate_event(
        &self,
        event: &DnfEvent,
        space: &ProbabilitySpace,
        _seed: u64,
    ) -> Result<EventEstimate> {
        Ok(EventEstimate {
            estimate: exact::probability(event, space)?,
            samples: 0,
            exact: true,
        })
    }

    fn estimate_compiled(
        &self,
        programs: &Arc<LineagePrograms>,
        index: usize,
        _seed: u64,
    ) -> Result<EventEstimate> {
        // Shannon expansion runs at most once per batch; a warm request is a
        // lookup into the memoised probabilities.
        Ok(EventEstimate {
            estimate: programs.exact_probabilities()?[index],
            samples: 0,
            exact: true,
        })
    }
}

/// The Karp–Luby (ε, δ)-FPRAS of Proposition 4.2 with fixed parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FprasEstimator {
    params: FprasParams,
    deadline: Option<std::time::Instant>,
    exact_backend: u32,
}

impl FprasEstimator {
    /// Creates an estimator drawing the Chernoff-bound sample count for the
    /// given (ε, δ).  The d-DNNF backend starts disabled; see
    /// [`with_exact_backend`](FprasEstimator::with_exact_backend).
    pub fn new(params: FprasParams) -> Self {
        FprasEstimator {
            params,
            deadline: None,
            exact_backend: 0,
        }
    }

    /// Enables the exact d-DNNF backend on the compiled path with a hard
    /// circuit budget of `node_budget` nodes (0 disables it).
    ///
    /// When the [`crate::cost`] model judges an event's estimated circuit
    /// smaller than both the budget and the Chernoff sample bill, the event
    /// is compiled ([`crate::dnnf`]) and answered **exactly** — the estimate
    /// is seed-independent, flagged `exact`, and still within every (ε, δ)
    /// guarantee (an exact answer trivially is).  Oversized circuits abort
    /// at the budget and fall back to sampling, bit-identical to a
    /// backend-free run of the same seed.
    pub fn with_exact_backend(mut self, node_budget: u32) -> Self {
        self.exact_backend = node_budget;
        self
    }

    /// Attaches a cooperative deadline to the bit-parallel compiled path:
    /// sampling loops probe the clock between blocks and abort with
    /// [`crate::ConfidenceError::Interrupted`] once it passes (see
    /// [`crate::bitworld::BitKarpLuby::estimate_with_deadline`]).  Runs
    /// that complete are bit-identical to the deadline-free estimator.
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The (ε, δ) parameters.
    pub fn params(&self) -> FprasParams {
        self.params
    }
}

impl ConfidenceEstimator for FprasEstimator {
    fn name(&self) -> &'static str {
        "karp-luby-fpras"
    }

    fn estimate_event(
        &self,
        event: &DnfEvent,
        space: &ProbabilitySpace,
        seed: u64,
    ) -> Result<EventEstimate> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let outcome = approximate_confidence(event, space, self.params, &mut rng)?;
        Ok(EventEstimate {
            estimate: outcome.estimate,
            samples: outcome.samples as u64,
            // Trivial events are answered exactly without sampling.
            exact: outcome.samples == 0,
        })
    }

    fn estimate_compiled(
        &self,
        programs: &Arc<LineagePrograms>,
        index: usize,
        seed: u64,
    ) -> Result<EventEstimate> {
        if let Some(p) = programs.trivial(index) {
            return Ok(EventEstimate {
                estimate: p,
                samples: 0,
                exact: true,
            });
        }
        let m = self.params.samples_for(programs.num_terms(index))?;
        // Backend choice: compile to d-DNNF and answer exactly when the cost
        // model says the circuit is cheaper than the Chernoff sample bill.
        if self.exact_backend > 0
            && cost::choose_backend(programs.dnnf_estimate(index), m as u64, self.exact_backend)
                == Backend::Exact
        {
            if let Some(p) = programs.dnnf_probability(index, self.exact_backend) {
                return Ok(EventEstimate {
                    estimate: p,
                    samples: 0,
                    exact: true,
                });
            }
        }
        // The block width follows the ε/δ-implied sample budget: Chernoff
        // budgets past 256 ride the 4-word (256-lane) block.
        let words = crate::bitworld::block_words_for_samples(m);
        let mut kernel = BitKarpLuby::new_with_width(programs.clone(), index, words)?;
        // The bit-parallel path is RNG-bound, so it derives its per-event
        // sub-RNG as a xoshiro256** small RNG (simulation-grade, several
        // times the throughput of ChaCha) from the same per-event seed.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        Ok(EventEstimate {
            estimate: kernel.estimate_with_deadline(m, &mut rng, self.deadline)?,
            samples: m as u64,
            exact: false,
        })
    }
}

/// A fixed number of anytime Karp–Luby batches per event (the paper's
/// outer-loop counter `l`), the inner step of the Theorem 6.7 driver.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchedIncrementalEstimator {
    batches: usize,
    deadline: Option<std::time::Instant>,
    exact_backend: u32,
}

impl BatchedIncrementalEstimator {
    /// Creates an estimator drawing `batches` batches of `|F_i|` samples per
    /// event.
    pub fn new(batches: usize) -> Self {
        BatchedIncrementalEstimator {
            batches,
            deadline: None,
            exact_backend: 0,
        }
    }

    /// Enables the exact d-DNNF backend on the compiled path with a hard
    /// circuit budget of `node_budget` nodes (0 disables it); the sample
    /// bill side of the cost comparison is `l · |F|`, the total draws the
    /// fixed batches would make.  See
    /// [`FprasEstimator::with_exact_backend`].
    pub fn with_exact_backend(mut self, node_budget: u32) -> Self {
        self.exact_backend = node_budget;
        self
    }

    /// Attaches a cooperative deadline: the clock is probed between batches
    /// and an expired deadline aborts the drive with
    /// [`crate::ConfidenceError::Interrupted`].  Runs that complete are
    /// bit-identical to the deadline-free estimator.
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The batch count `l`.
    pub fn batches(&self) -> usize {
        self.batches
    }
}

impl ConfidenceEstimator for BatchedIncrementalEstimator {
    fn name(&self) -> &'static str {
        "incremental-fixed-l"
    }

    fn estimate_event(
        &self,
        event: &DnfEvent,
        space: &ProbabilitySpace,
        seed: u64,
    ) -> Result<EventEstimate> {
        let mut estimator = IncrementalEstimator::new(event.clone(), space.clone())?;
        self.drive(&mut estimator, seed)
    }

    fn estimate_compiled(
        &self,
        programs: &Arc<LineagePrograms>,
        index: usize,
        seed: u64,
    ) -> Result<EventEstimate> {
        let mut estimator = IncrementalEstimator::from_compiled(programs, index)?;
        if self.exact_backend > 0 && !estimator.is_trivial() {
            let bill = (self.batches as u64).saturating_mul(programs.num_terms(index) as u64);
            if cost::choose_backend(programs.dnnf_estimate(index), bill, self.exact_backend)
                == Backend::Exact
            {
                if let Some(p) = programs.dnnf_probability(index, self.exact_backend) {
                    estimator.resolve_exactly(p);
                }
            }
        }
        self.drive(&mut estimator, seed)
    }
}

impl BatchedIncrementalEstimator {
    fn drive(&self, estimator: &mut IncrementalEstimator, seed: u64) -> Result<EventEstimate> {
        // Like the FPRAS compiled path: a per-event xoshiro sub-RNG feeds
        // the bit-parallel kernel underneath the incremental estimator.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..self.batches {
            if let Some(d) = self.deadline {
                if std::time::Instant::now() >= d {
                    return Err(crate::ConfidenceError::Interrupted);
                }
            }
            estimator.add_batch(&mut rng);
        }
        Ok(EventEstimate {
            estimate: estimator.estimate(),
            samples: estimator.samples(),
            exact: estimator.is_trivial(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Assignment;
    use rand::Rng;

    fn batch_setup(n: usize) -> (Vec<DnfEvent>, ProbabilitySpace) {
        let mut space = ProbabilitySpace::new();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let vars: Vec<_> = (0..8)
            .map(|_| space.add_bool_variable(rng.gen_range(0.1..0.9)).unwrap())
            .collect();
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let terms: Vec<Assignment> = (0..rng.gen_range(1..=3usize))
                .filter_map(|_| {
                    let pairs: Vec<(usize, usize)> = (0..rng.gen_range(1..=2usize))
                        .map(|_| (vars[rng.gen_range(0..vars.len())], rng.gen_range(0..2usize)))
                        .collect();
                    Assignment::new(pairs).ok()
                })
                .collect();
            if terms.is_empty() {
                events.push(DnfEvent::new([Assignment::new([(vars[0], 0)]).unwrap()]));
            } else {
                events.push(DnfEvent::new(terms));
            }
        }
        (events, space)
    }

    #[test]
    fn parallel_batch_equals_sequential_map_for_every_estimator() {
        let (events, space) = batch_setup(40);
        let estimators: Vec<Box<dyn ConfidenceEstimator>> = vec![
            Box::new(ExactEstimator),
            Box::new(FprasEstimator::new(FprasParams::new(0.3, 0.1).unwrap())),
            Box::new(BatchedIncrementalEstimator::new(16)),
        ];
        for estimator in &estimators {
            let master = 99u64;
            let parallel = estimator.estimate_batch(&events, &space, master).unwrap();
            let sequential: Vec<EventEstimate> = events
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    estimator
                        .estimate_event(e, &space, event_seed(master, i))
                        .unwrap()
                })
                .collect();
            assert_eq!(
                parallel,
                sequential,
                "estimator {} must be schedule-independent",
                estimator.name()
            );
        }
    }

    #[test]
    fn batches_are_deterministic_and_seed_sensitive() {
        let (events, space) = batch_setup(12);
        let fpras = FprasEstimator::new(FprasParams::new(0.25, 0.1).unwrap());
        let a = fpras.estimate_batch(&events, &space, 1).unwrap();
        let b = fpras.estimate_batch(&events, &space, 1).unwrap();
        let c = fpras.estimate_batch(&events, &space, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c, "different master seeds must change some estimate");
    }

    #[test]
    fn estimators_agree_with_exact_within_their_guarantees() {
        let (events, space) = batch_setup(10);
        let exact = ExactEstimator.estimate_batch(&events, &space, 0).unwrap();
        let fpras = FprasEstimator::new(FprasParams::new(0.2, 0.01).unwrap());
        let approx = fpras.estimate_batch(&events, &space, 5).unwrap();
        for (e, a) in exact.iter().zip(&approx) {
            assert!(e.exact && e.samples == 0);
            // ε = 0.2 at δ = 0.01 over 10 events: allow 1.5× the budget so a
            // single unlucky draw cannot flake the suite.
            assert!(
                (a.estimate - e.estimate).abs() <= 0.3 * e.estimate.max(1e-9),
                "estimate {} too far from exact {}",
                a.estimate,
                e.estimate
            );
        }
    }

    #[test]
    fn trivial_events_are_flagged_exact_by_every_estimator() {
        let mut space = ProbabilitySpace::new();
        space.add_bool_variable(0.4).unwrap();
        let events = vec![DnfEvent::never(), DnfEvent::new([Assignment::always()])];
        for estimator in [
            Box::new(ExactEstimator) as Box<dyn ConfidenceEstimator>,
            Box::new(FprasEstimator::new(FprasParams::new(0.2, 0.1).unwrap())),
            Box::new(BatchedIncrementalEstimator::new(4)),
        ] {
            let out = estimator.estimate_batch(&events, &space, 3).unwrap();
            assert_eq!(out[0].estimate, 0.0);
            assert_eq!(out[1].estimate, 1.0);
            assert!(out.iter().all(|e| e.exact && e.samples == 0));
        }
    }

    #[test]
    fn deadlines_interrupt_or_leave_runs_bit_identical() {
        let (events, space) = batch_setup(6);
        let programs = Arc::new(LineagePrograms::compile(events, &space).unwrap());
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let params = FprasParams::new(0.2, 0.1).unwrap();
        // An already expired deadline interrupts before sampling finishes.
        let err = FprasEstimator::new(params)
            .with_deadline(Some(past))
            .estimate_compiled_batch(&programs, 7)
            .unwrap_err();
        assert_eq!(err, crate::ConfidenceError::Interrupted);
        let err = BatchedIncrementalEstimator::new(4)
            .with_deadline(Some(past))
            .estimate_compiled_batch(&programs, 7)
            .unwrap_err();
        assert_eq!(err, crate::ConfidenceError::Interrupted);
        // A generous deadline changes nothing: the probe draws no randomness.
        let future = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let free = FprasEstimator::new(params)
            .estimate_compiled_batch(&programs, 7)
            .unwrap();
        let budgeted = FprasEstimator::new(params)
            .with_deadline(Some(future))
            .estimate_compiled_batch(&programs, 7)
            .unwrap();
        assert_eq!(free, budgeted);
    }

    #[test]
    fn the_exact_backend_answers_compiled_events_exactly() {
        let (events, space) = batch_setup(12);
        let programs = Arc::new(LineagePrograms::compile(events, &space).unwrap());
        let reference = ExactEstimator
            .estimate_compiled_batch(&programs, 0)
            .unwrap();
        let params = FprasParams::new(0.2, 0.05).unwrap();
        let backed =
            FprasEstimator::new(params).with_exact_backend(crate::cost::DEFAULT_NODE_BUDGET);
        let a = backed.estimate_compiled_batch(&programs, 7).unwrap();
        let b = backed.estimate_compiled_batch(&programs, 8).unwrap();
        // Exact answers are seed-independent.
        assert_eq!(a, b);
        for (got, want) in a.iter().zip(&reference) {
            assert!(
                got.exact && got.samples == 0,
                "cost model should fire: {got:?}"
            );
            assert!((got.estimate - want.estimate).abs() < 1e-9);
        }
    }

    #[test]
    fn the_incremental_estimator_resolves_exact_backend_answers() {
        let (events, space) = batch_setup(10);
        let programs = Arc::new(LineagePrograms::compile(events, &space).unwrap());
        let reference = ExactEstimator
            .estimate_compiled_batch(&programs, 0)
            .unwrap();
        let backed = BatchedIncrementalEstimator::new(64)
            .with_exact_backend(crate::cost::DEFAULT_NODE_BUDGET);
        let out = backed.estimate_compiled_batch(&programs, 7).unwrap();
        assert_eq!(out, backed.estimate_compiled_batch(&programs, 9).unwrap());
        let mut resolved = 0;
        for (got, want) in out.iter().zip(&reference) {
            if got.exact {
                resolved += 1;
                assert_eq!(got.samples, 0);
                assert!((got.estimate - want.estimate).abs() < 1e-9);
            }
        }
        assert!(resolved > 0, "the cost model never fired on small events");
    }

    #[test]
    fn an_unattainable_node_budget_is_bit_identical_to_no_backend() {
        let (events, space) = batch_setup(12);
        let programs = Arc::new(LineagePrograms::compile(events, &space).unwrap());
        let params = FprasParams::new(0.25, 0.1).unwrap();
        // Budget 2 rejects every non-trivial event at the estimate screen, so
        // the sampling path — including its RNG stream — is untouched.
        let plain = FprasEstimator::new(params)
            .estimate_compiled_batch(&programs, 21)
            .unwrap();
        let gated = FprasEstimator::new(params)
            .with_exact_backend(2)
            .estimate_compiled_batch(&programs, 21)
            .unwrap();
        assert_eq!(plain, gated);
    }

    #[test]
    fn event_seed_spreads_indices() {
        let seeds: std::collections::BTreeSet<u64> = (0..1000).map(|i| event_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
    }
}
