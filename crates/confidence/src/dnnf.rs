//! Smoothed d-DNNF knowledge compilation: the exact backend of the
//! estimation layer.
//!
//! Exact confidence computation is #P-complete (Theorem 3.4), but events of
//! moderate *width* — few interacting variables per independent component —
//! compile into a polynomial-size circuit on which weighted model counting
//! is linear.  This module compiles a [`DnfEvent`] bottom-up into a
//! **deterministic, decomposable negation normal form** (d-DNNF):
//!
//! * **deterministic OR** arises from Shannon expansion: a `Decision` node
//!   on variable `X` branches per alternative, and the branches are mutually
//!   exclusive by construction (`X` takes exactly one value);
//! * **decomposable AND** arises from independence factorisation: the
//!   components of [`DnfEvent::independent_components`] mention disjoint
//!   variables, so `¬F = ⋀ ¬C_i` is a `Product` node whose children share
//!   no variable;
//! * **negation** stays sound for probability-weighted counting because every
//!   node's count *is* the probability of its sub-event — per-variable
//!   weights sum to 1, so unmentioned variables marginalise away implicitly
//!   (the weighted form of smoothing) and `wmc(¬n) = 1 − wmc(n)`.
//!
//! Shannon expansion follows a **min-fill variable order** computed once per
//! event on its primal graph (variables adjacent iff they co-occur in a
//! term): eliminating low-fill variables first keeps the residual sub-events
//! narrow, which is what bounds the circuit size in practice.  Structurally
//! identical sub-circuits are **hash-consed** (node-level deduplication) and
//! sub-events are memoised by their sorted term list, so shared cofactors
//! compile once.
//!
//! Compilation carries a hard **node budget**: the instant the arena would
//! exceed it, compilation aborts with [`ConfidenceError::TooLarge`] and the
//! caller falls back to sampling — the abort costs at most the budget, never
//! an exponential blow-up.  The [`crate::cost`] model decides per event
//! whether attempting compilation beats the Chernoff-implied sample bill;
//! [`crate::LineagePrograms`] memoises outcomes content-addressed next to
//! the compiled lineage so a serving engine compiles each event at most
//! once.
//!
//! This module is part of the deterministic core: no `HashMap` iteration
//! order, no clocks — compilation is a pure function of the event, the
//! space, and the budget.

use crate::error::{ConfidenceError, Result};
use crate::event::{Assignment, DnfEvent, ProbabilitySpace, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// Above this many distinct variables the min-fill computation (quadratic
/// per elimination step) would dominate compilation; wider events fall back
/// to the natural ascending order.  Components this wide rarely fit a node
/// budget unless they factor into independent pieces, which the
/// factorisation step exploits regardless of the order.
const MIN_FILL_VAR_LIMIT: usize = 400;

/// One node of the compiled circuit.  Children always precede parents in
/// the arena, so a single forward pass evaluates the circuit.
#[derive(Clone, Debug, PartialEq)]
enum Node {
    /// The certain event.
    True,
    /// The impossible event.
    False,
    /// `1 − child`: sound because node counts are probabilities (see module
    /// docs).
    Not { child: u32 },
    /// Shannon decision on `var`: child `a` is the cofactor under
    /// `X_var = a`, weighted by `Pr[X_var = a]` during counting
    /// (deterministic OR — the branches are mutually exclusive).
    Decision {
        /// The decision variable.
        var: VarId,
        /// Range into the flat child buffer, one child per alternative.
        child_start: u32,
        /// Number of alternatives.
        child_len: u32,
    },
    /// Conjunction of variable-disjoint children (decomposable AND).
    Product {
        /// Range into the flat child buffer.
        child_start: u32,
        /// Number of children.
        child_len: u32,
    },
}

/// A compiled event: a smoothed d-DNNF circuit plus its weighted model
/// count, produced by [`Dnnf::compile`].
#[derive(Clone, Debug)]
pub struct Dnnf {
    nodes: Vec<Node>,
    children: Vec<u32>,
    root: u32,
}

/// Hash-consing key: `(tag, decision variable, children)`.
type ConsKey = (u8, VarId, Vec<u32>);

struct Compiler<'a> {
    space: &'a ProbabilitySpace,
    /// Shannon branch order: lower rank expands first.
    rank: BTreeMap<VarId, u32>,
    nodes: Vec<Node>,
    children: Vec<u32>,
    /// Node-level deduplication (`BTreeMap`: deterministic, lint-clean).
    cons: BTreeMap<ConsKey, u32>,
    /// Sub-event memo keyed by sorted terms, like the Shannon reference.
    memo: BTreeMap<Vec<Assignment>, u32>,
    max_nodes: u32,
}

impl<'a> Compiler<'a> {
    fn intern(&mut self, tag: u8, var: VarId, child_ids: Vec<u32>) -> Result<u32> {
        let key = (tag, var, child_ids);
        if let Some(&id) = self.cons.get(&key) {
            return Ok(id);
        }
        if self.nodes.len() as u32 >= self.max_nodes {
            return Err(ConfidenceError::TooLarge {
                what: "d-DNNF compilation".into(),
                limit: self.max_nodes as u128,
            });
        }
        let (tag, var, child_ids) = (key.0, key.1, key.2.clone());
        let node = match tag {
            0 => Node::True,
            1 => Node::False,
            2 => Node::Not {
                child: child_ids[0],
            },
            3 => {
                let child_start = self.children.len() as u32;
                self.children.extend_from_slice(&child_ids);
                Node::Decision {
                    var,
                    child_start,
                    child_len: child_ids.len() as u32,
                }
            }
            _ => {
                let child_start = self.children.len() as u32;
                self.children.extend_from_slice(&child_ids);
                Node::Product {
                    child_start,
                    child_len: child_ids.len() as u32,
                }
            }
        };
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        self.cons.insert((tag, var, child_ids), id);
        Ok(id)
    }

    fn compile(&mut self, event: &DnfEvent) -> Result<u32> {
        if event.is_never() {
            return self.intern(1, 0, Vec::new());
        }
        if event.is_certain() {
            return self.intern(0, 0, Vec::new());
        }

        let key: Vec<Assignment> = {
            let mut terms = event.terms().to_vec();
            terms.sort();
            terms
        };
        if let Some(&id) = self.memo.get(&key) {
            return Ok(id);
        }

        // Factor into independent components first: ¬F = ⋀ ¬C_i is a
        // decomposable AND (the components share no variables).
        let components = event.independent_components();
        let id = if components.len() > 1 {
            let mut negated = Vec::with_capacity(components.len());
            for c in components {
                let child = self.compile(&c)?;
                negated.push(self.intern(2, 0, vec![child])?);
            }
            let product = self.intern(4, 0, negated)?;
            self.intern(2, 0, vec![product])?
        } else {
            // Shannon expansion on the lowest-ranked mentioned variable.
            let var = event
                .variables()
                .into_iter()
                .min_by_key(|v| (self.rank.get(v).copied().unwrap_or(u32::MAX), *v))
                .expect("non-trivial event mentions a variable");
            let alternatives = self.space.num_alternatives(var)?;
            let mut child_ids = Vec::with_capacity(alternatives);
            for alt in 0..alternatives {
                // Condition the DNF on X_var = alt: terms requiring another
                // alternative disappear; the variable is removed elsewhere.
                let mut restricted = Vec::new();
                for term in event.terms() {
                    let (assigned, rest) = term.without(var);
                    match assigned {
                        Some(a) if a != alt => continue,
                        _ => restricted.push(rest),
                    }
                }
                let sub = DnfEvent::new(restricted).simplified();
                child_ids.push(self.compile(&sub)?);
            }
            self.intern(3, var, child_ids)?
        };

        self.memo.insert(key, id);
        Ok(id)
    }
}

/// Greedy min-fill elimination order over the event's primal graph; ties
/// break toward the smaller variable id so the order is deterministic.
fn min_fill_order(event: &DnfEvent) -> BTreeMap<VarId, u32> {
    let vars = event.variables();
    let mut rank = BTreeMap::new();
    if vars.len() > MIN_FILL_VAR_LIMIT {
        for (i, v) in vars.into_iter().enumerate() {
            rank.insert(v, i as u32);
        }
        return rank;
    }
    let mut adjacency: BTreeMap<VarId, BTreeSet<VarId>> =
        vars.iter().map(|&v| (v, BTreeSet::new())).collect();
    for term in event.terms() {
        let mentioned: Vec<VarId> = term.variables().collect();
        for (i, &a) in mentioned.iter().enumerate() {
            for &b in &mentioned[i + 1..] {
                adjacency.get_mut(&a).expect("known var").insert(b);
                adjacency.get_mut(&b).expect("known var").insert(a);
            }
        }
    }
    let mut next = 0u32;
    while !adjacency.is_empty() {
        // Fill count of v: neighbor pairs not already adjacent.
        let (&best, _) = adjacency
            .iter()
            .min_by_key(|(&v, neighbors)| {
                let ns: Vec<VarId> = neighbors.iter().copied().collect();
                let mut fill = 0usize;
                for (i, &a) in ns.iter().enumerate() {
                    for &b in &ns[i + 1..] {
                        if !adjacency[&a].contains(&b) {
                            fill += 1;
                        }
                    }
                }
                (fill, v)
            })
            .expect("non-empty adjacency");
        let neighbors: Vec<VarId> = adjacency[&best].iter().copied().collect();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                adjacency.get_mut(&a).expect("known var").insert(b);
                adjacency.get_mut(&b).expect("known var").insert(a);
            }
        }
        for &n in &neighbors {
            adjacency.get_mut(&n).expect("known var").remove(&best);
        }
        adjacency.remove(&best);
        rank.insert(best, next);
        next += 1;
    }
    rank
}

impl Dnnf {
    /// Compiles an event into a d-DNNF circuit of at most `max_nodes` nodes.
    ///
    /// Fails with [`ConfidenceError::TooLarge`] the moment the budget would
    /// be exceeded (abort-and-fallback: the caller samples instead), and
    /// with the space's own errors when the event mentions undeclared
    /// variables or alternatives.
    pub fn compile(event: &DnfEvent, space: &ProbabilitySpace, max_nodes: u32) -> Result<Dnnf> {
        let simplified = event.simplified();
        let mut compiler = Compiler {
            space,
            rank: min_fill_order(&simplified),
            nodes: Vec::new(),
            children: Vec::new(),
            cons: BTreeMap::new(),
            memo: BTreeMap::new(),
            max_nodes: max_nodes.max(2),
        };
        let root = compiler.compile(&simplified)?;
        Ok(Dnnf {
            nodes: compiler.nodes,
            children: compiler.children,
            root,
        })
    }

    /// Number of circuit nodes (after hash-consing).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Weighted model counting: one forward pass over the arena (children
    /// precede parents), each node's value being the probability of its
    /// sub-event.  Linear in the circuit size.
    pub fn wmc(&self, space: &ProbabilitySpace) -> Result<f64> {
        let mut value = vec![0.0f64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            value[i] = match node {
                Node::True => 1.0,
                Node::False => 0.0,
                Node::Not { child } => 1.0 - value[*child as usize],
                Node::Decision {
                    var,
                    child_start,
                    child_len,
                } => {
                    let mut acc = 0.0;
                    for alt in 0..*child_len as usize {
                        let child = self.children[*child_start as usize + alt];
                        acc += space.probability(*var, alt)? * value[child as usize];
                    }
                    acc
                }
                Node::Product {
                    child_start,
                    child_len,
                } => {
                    let mut acc = 1.0;
                    for k in 0..*child_len as usize {
                        let child = self.children[*child_start as usize + k];
                        acc *= value[child as usize];
                    }
                    acc
                }
            };
        }
        Ok(value[self.root as usize].clamp(0.0, 1.0))
    }
}

/// Compiles and counts in one call: the exact probability of the event via
/// the d-DNNF backend, or [`ConfidenceError::TooLarge`] when the circuit
/// exceeds `max_nodes`.
pub fn probability(event: &DnfEvent, space: &ProbabilitySpace, max_nodes: u32) -> Result<f64> {
    Dnnf::compile(event, space, max_nodes)?.wmc(space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;

    fn a(pairs: &[(usize, usize)]) -> Assignment {
        Assignment::new(pairs.iter().copied()).unwrap()
    }

    fn space() -> ProbabilitySpace {
        let mut s = ProbabilitySpace::new();
        s.add_variable(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap(); // 0
        s.add_bool_variable(0.5).unwrap(); // 1
        s.add_bool_variable(0.5).unwrap(); // 2
        s.add_variable(vec![0.25, 0.25, 0.5]).unwrap(); // 3
        s
    }

    #[test]
    fn trivial_events_compile_to_leaves() {
        let s = space();
        let never = Dnnf::compile(&DnfEvent::never(), &s, 16).unwrap();
        assert_eq!(never.wmc(&s).unwrap(), 0.0);
        assert_eq!(never.node_count(), 1);
        let certain = Dnnf::compile(&DnfEvent::new([Assignment::always()]), &s, 16).unwrap();
        assert_eq!(certain.wmc(&s).unwrap(), 1.0);
    }

    #[test]
    fn coin_event_counts_exactly() {
        // Example 2.2: fair coin with two heads, or the double-headed coin.
        let s = space();
        let event = DnfEvent::new([a(&[(0, 0), (1, 0), (2, 0)]), a(&[(0, 1)])]);
        let p = probability(&event, &s, 64).unwrap();
        assert!((p - 0.5).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn multivalued_and_overlap_match_shannon() {
        let s = space();
        let events = [
            DnfEvent::new([a(&[(1, 0)]), a(&[(2, 0)])]),
            DnfEvent::new([a(&[(3, 1)]), a(&[(3, 2), (1, 0)])]),
            DnfEvent::new([a(&[(0, 0)]), a(&[(0, 1)])]),
            DnfEvent::new([a(&[(0, 0), (3, 0)]), a(&[(1, 1), (2, 0)]), a(&[(3, 2)])]),
        ];
        for event in events {
            let expected = exact::probability(&event, &s).unwrap();
            let got = probability(&event, &s, 1 << 12).unwrap();
            assert!(
                (got - expected).abs() < 1e-12,
                "wmc {got} vs shannon {expected} for {event:?}"
            );
        }
    }

    #[test]
    fn independent_components_stay_linear() {
        // n independent pair-components: the circuit grows linearly, far
        // under an exponential worst case.
        let mut s = ProbabilitySpace::new();
        let mut terms = Vec::new();
        let n = 50;
        for _ in 0..n {
            let x = s.add_bool_variable(0.5).unwrap();
            let y = s.add_bool_variable(0.5).unwrap();
            terms.push(Assignment::new([(x, 0), (y, 0)]).unwrap());
        }
        let f = DnfEvent::new(terms);
        let circuit = Dnnf::compile(&f, &s, 4096).unwrap();
        assert!(circuit.node_count() < 20 * n);
        let expected = 1.0 - (1.0 - 0.25f64).powi(n as i32);
        assert!((circuit.wmc(&s).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn the_node_budget_aborts_compilation() {
        let mut s = ProbabilitySpace::new();
        let mut terms = Vec::new();
        // A chain x_i ∧ x_{i+1} keeps everything one component.
        let vars: Vec<usize> = (0..24).map(|_| s.add_bool_variable(0.5).unwrap()).collect();
        for w in vars.windows(2) {
            terms.push(Assignment::new([(w[0], 0), (w[1], 0)]).unwrap());
        }
        let f = DnfEvent::new(terms);
        let err = Dnnf::compile(&f, &s, 4).unwrap_err();
        assert!(matches!(err, ConfidenceError::TooLarge { .. }));
        // A generous budget compiles the same event fine.
        let p = probability(&f, &s, 1 << 14).unwrap();
        let expected = exact::probability(&f, &s).unwrap();
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn hash_consing_shares_identical_cofactors() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool_variable(0.5).unwrap();
        let y = s.add_bool_variable(0.5).unwrap();
        let z = s.add_bool_variable(0.5).unwrap();
        // Both x-branches leave the same cofactor over {y, z}.
        let f = DnfEvent::new([a(&[(x, 0), (y, 0)]), a(&[(x, 1), (y, 0)]), a(&[(z, 0)])]);
        let circuit = Dnnf::compile(&f, &s, 256).unwrap();
        let expected = exact::probability(&f, &s).unwrap();
        assert!((circuit.wmc(&s).unwrap() - expected).abs() < 1e-12);
        // y=0 ∨ z=0 appears under both x branches; consing keeps the arena
        // strictly smaller than the un-shared expansion would be.
        assert!(circuit.node_count() <= 12, "{}", circuit.node_count());
    }

    #[test]
    fn unknown_variables_are_rejected() {
        let s = space();
        let f = DnfEvent::new([a(&[(17, 0)])]);
        assert!(Dnnf::compile(&f, &s, 64).is_err());
    }
}
