//! Cheap deterministic confidence bounds for DNF events.
//!
//! Both bounds are exact consequences of elementary probability and cost one
//! pass over the terms (each term's probability is the product of its literal
//! marginals, since variables are independent):
//!
//! * **lower**: `P(⋁ tᵢ) ≥ max_i P(tᵢ)` — the event contains every term;
//! * **upper**: `P(⋁ tᵢ) ≤ min(1, Σ_i P(tᵢ))` — the union bound.
//!
//! The engine's σ̂ operators use the resulting `[lower, upper]` box to decide
//! candidates whose predicate is constant over the box *before any sampling*
//! (the adaptive driver's candidate pruning): a decision made from these
//! bounds is exact, so it carries error 0 and by construction agrees with
//! what exact confidence computation would decide.

use crate::error::Result;
use crate::event::{DnfEvent, ProbabilitySpace};

/// Exact lower/upper bounds on an event's probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventBounds {
    /// `max_i P(tᵢ)` (0 for the impossible event).
    pub lower: f64,
    /// `min(1, Σ_i P(tᵢ))` (1 for certain events).
    pub upper: f64,
}

impl EventBounds {
    /// True if the bounds pin the probability exactly (within `1e-12`).
    pub fn is_tight(&self) -> bool {
        (self.upper - self.lower).abs() < 1e-12
    }

    /// Width of the enclosure.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Computes the marginal-product / union bounds for one event.
pub fn event_bounds(event: &DnfEvent, space: &ProbabilitySpace) -> Result<EventBounds> {
    if event.is_never() {
        return Ok(EventBounds {
            lower: 0.0,
            upper: 0.0,
        });
    }
    if event.is_certain() {
        return Ok(EventBounds {
            lower: 1.0,
            upper: 1.0,
        });
    }
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    for term in event.terms() {
        let w = term.weight(space)?;
        sum += w;
        max = max.max(w);
    }
    let upper = sum.min(1.0);
    // Floating-point noise in the sum must never invert the enclosure.
    Ok(EventBounds {
        lower: max.min(upper),
        upper,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Assignment;
    use crate::exact;

    fn space3() -> (ProbabilitySpace, Vec<usize>) {
        let mut s = ProbabilitySpace::new();
        let vars = vec![
            s.add_bool_variable(0.4).unwrap(),
            s.add_bool_variable(0.3).unwrap(),
            s.add_bool_variable(0.2).unwrap(),
        ];
        (s, vars)
    }

    #[test]
    fn bounds_enclose_the_exact_probability() {
        let (s, v) = space3();
        let events = [
            DnfEvent::new([Assignment::new([(v[0], 0)]).unwrap()]),
            DnfEvent::new([
                Assignment::new([(v[0], 0)]).unwrap(),
                Assignment::new([(v[1], 0), (v[2], 0)]).unwrap(),
            ]),
            DnfEvent::new([
                Assignment::new([(v[0], 0)]).unwrap(),
                Assignment::new([(v[0], 1)]).unwrap(),
            ]),
        ];
        for event in &events {
            let p = exact::probability(event, &s).unwrap();
            let b = event_bounds(event, &s).unwrap();
            assert!(
                b.lower <= p + 1e-12 && p <= b.upper + 1e-12,
                "exact {p} outside [{}, {}]",
                b.lower,
                b.upper
            );
            assert!(b.width() >= -1e-12);
        }
    }

    #[test]
    fn single_term_bounds_are_tight() {
        let (s, v) = space3();
        let event = DnfEvent::new([Assignment::new([(v[1], 0), (v[2], 1)]).unwrap()]);
        let b = event_bounds(&event, &s).unwrap();
        assert!(b.is_tight());
        let p = exact::probability(&event, &s).unwrap();
        assert!((b.lower - p).abs() < 1e-12);
    }

    #[test]
    fn trivial_events_are_pinned() {
        let (s, _) = space3();
        let never = event_bounds(&DnfEvent::never(), &s).unwrap();
        assert_eq!((never.lower, never.upper), (0.0, 0.0));
        let certain = event_bounds(&DnfEvent::new([Assignment::always()]), &s).unwrap();
        assert_eq!((certain.lower, certain.upper), (1.0, 1.0));
    }

    #[test]
    fn union_bound_caps_at_one() {
        let (s, v) = space3();
        // Complementary terms on the same variable: probability is 1.
        let event = DnfEvent::new([
            Assignment::new([(v[0], 0)]).unwrap(),
            Assignment::new([(v[0], 1)]).unwrap(),
            Assignment::new([(v[1], 0)]).unwrap(),
        ]);
        let b = event_bounds(&event, &s).unwrap();
        assert_eq!(b.upper, 1.0);
        assert!(b.lower <= 1.0);
    }
}
