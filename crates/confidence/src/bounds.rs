//! Cheap deterministic confidence bounds for DNF events.
//!
//! All bounds are exact consequences of elementary probability (each term's
//! probability is the product of its literal marginals, since variables are
//! independent).  Two tiers are available:
//!
//! * **first order** ([`event_bounds_first_order`], one pass over the terms):
//!   `max_i P(tᵢ) ≤ P(⋁ tᵢ) ≤ min(1, Σ_i P(tᵢ))` — the containment and
//!   union bounds;
//! * **one round of inclusion–exclusion** ([`event_bounds`], a pairwise pass
//!   over up to [`DEFAULT_PAIRWISE_TERM_LIMIT`] simplified terms):
//!   the degree-two Bonferroni lower bound `S₁ − S₂ ≤ P` and the
//!   Hunter–Worsley upper bound `P ≤ S₁ − max_T Σ_{(i,j) ∈ T} P(tᵢ ∧ tⱼ)`,
//!   where `T` ranges over spanning trees of the term-intersection graph and
//!   the maximum-weight tree is found greedily (Prim).  Both refine the
//!   first-order box, never widen it.  On small enough events (at most
//!   [`DEFAULT_TRIPLE_TERM_LIMIT`] terms) the pass also takes the
//!   degree-three Bonferroni truncation `P ≤ S₁ − S₂ + S₃` — a second,
//!   independent upper bound that is strictly tighter than Hunter–Worsley
//!   exactly when the pairwise overlaps overcount (its cubic term-merge
//!   cost is why it stays capped well below the pairwise limit).
//!
//! The engine's σ̂ operators use the resulting `[lower, upper]` box to decide
//! candidates whose predicate is constant over the box *before any sampling*
//! (the adaptive driver's candidate pruning): a decision made from these
//! bounds is exact, so it carries error 0 and by construction agrees with
//! what exact confidence computation would decide.

use crate::error::Result;
use crate::event::{DnfEvent, ProbabilitySpace};

/// Largest number of (simplified) terms for which [`event_bounds`] runs the
/// pairwise inclusion–exclusion round; above it the quadratic pass would
/// dominate the sampling it is meant to save, so the first-order bounds are
/// returned unchanged.
pub const DEFAULT_PAIRWISE_TERM_LIMIT: usize = 48;

/// Largest number of (simplified) terms for which the inclusion–exclusion
/// round also computes the degree-three Bonferroni upper bound
/// `S₁ − S₂ + S₃`; the triple pass costs `n³` term merges, so it is capped
/// far below the pairwise limit.  The effective cap is the *minimum* of
/// this and the caller's pairwise limit, so shrinking the pairwise limit
/// always shrinks (or disables) the triple pass with it.
pub const DEFAULT_TRIPLE_TERM_LIMIT: usize = 16;

/// Exact lower/upper bounds on an event's probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EventBounds {
    /// A lower bound on `P(⋁ tᵢ)` (0 for the impossible event).
    pub lower: f64,
    /// An upper bound on `P(⋁ tᵢ)` (1 for certain events).
    pub upper: f64,
}

impl EventBounds {
    /// True if the bounds pin the probability exactly (within `1e-12`).
    pub fn is_tight(&self) -> bool {
        (self.upper - self.lower).abs() < 1e-12
    }

    /// Width of the enclosure.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Computes the first-order (max-term / union) bounds for one event.
pub fn event_bounds_first_order(event: &DnfEvent, space: &ProbabilitySpace) -> Result<EventBounds> {
    if event.is_never() {
        return Ok(EventBounds {
            lower: 0.0,
            upper: 0.0,
        });
    }
    if event.is_certain() {
        return Ok(EventBounds {
            lower: 1.0,
            upper: 1.0,
        });
    }
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    for term in event.terms() {
        let w = term.weight(space)?;
        sum += w;
        max = max.max(w);
    }
    let upper = sum.min(1.0);
    // Floating-point noise in the sum must never invert the enclosure.
    Ok(EventBounds {
        lower: max.min(upper),
        upper,
    })
}

/// Computes bounds with one round of inclusion–exclusion on top of the
/// first-order box, spending at most `pairwise_limit²` term merges.
pub fn event_bounds_with_limit(
    event: &DnfEvent,
    space: &ProbabilitySpace,
    pairwise_limit: usize,
) -> Result<EventBounds> {
    let first = event_bounds_first_order(event, space)?;
    if first.is_tight() {
        return Ok(first);
    }
    // Subsumed/duplicate terms only loosen S₁ and S₂; bounding the
    // simplified event bounds the original (they denote the same set of
    // worlds).
    let simplified = event.simplified();
    let n = simplified.num_terms();
    if n < 2 || n > pairwise_limit {
        return Ok(first);
    }
    let terms = simplified.terms();
    let weights: Vec<f64> = terms
        .iter()
        .map(|t| t.weight(space))
        .collect::<Result<_>>()?;
    let s1: f64 = weights.iter().sum();

    // Pairwise intersection weights `P(tᵢ ∧ tⱼ)` (0 when inconsistent).
    // The merged assignments are kept only while the triple pass below can
    // use them.
    let triples = n <= pairwise_limit.min(DEFAULT_TRIPLE_TERM_LIMIT);
    let mut pair = vec![0.0f64; n * n];
    let mut merged_pairs: Vec<Option<crate::event::Assignment>> = if triples {
        vec![None; n * n]
    } else {
        Vec::new()
    };
    let mut s2 = 0.0f64;
    for i in 0..n {
        for j in i + 1..n {
            let merged = terms[i].merge(&terms[j]);
            let w = match &merged {
                Some(merged) => merged.weight(space)?,
                None => 0.0,
            };
            pair[i * n + j] = w;
            pair[j * n + i] = w;
            s2 += w;
            if triples {
                merged_pairs[i * n + j] = merged;
            }
        }
    }

    // Degree-two Bonferroni lower bound.
    let bonferroni_lower = s1 - s2;

    // Degree-three Bonferroni upper bound `S₁ − S₂ + S₃` (odd truncations
    // of inclusion–exclusion are upper bounds).  Cubic in the term count,
    // so only small events pay for it.
    let bonferroni3_upper = if triples {
        let mut s3 = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                let Some(ij) = &merged_pairs[i * n + j] else {
                    continue;
                };
                for term in &terms[j + 1..n] {
                    if let Some(ijk) = ij.merge(term) {
                        s3 += ijk.weight(space)?;
                    }
                }
            }
        }
        s1 - s2 + s3
    } else {
        f64::INFINITY
    };

    // Hunter–Worsley: subtracting any spanning tree of pairwise
    // intersections from S₁ stays an upper bound; Prim finds the
    // maximum-weight tree.
    let mut in_tree = vec![false; n];
    let mut best = vec![0.0f64; n];
    in_tree[0] = true;
    best[1..n].copy_from_slice(&pair[1..n]);
    let mut tree_weight = 0.0f64;
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_w = -1.0f64;
        for (j, &w) in best.iter().enumerate() {
            if !in_tree[j] && w > pick_w {
                pick = j;
                pick_w = w;
            }
        }
        in_tree[pick] = true;
        tree_weight += pick_w;
        for j in 0..n {
            if !in_tree[j] {
                best[j] = best[j].max(pair[pick * n + j]);
            }
        }
    }
    let hunter_upper = s1 - tree_weight;

    // Intersect with the first-order box; floating-point noise must never
    // invert the enclosure.
    let upper = first
        .upper
        .min(hunter_upper)
        .min(bonferroni3_upper)
        .max(0.0);
    let lower = first.lower.max(bonferroni_lower).min(upper);
    Ok(EventBounds { lower, upper })
}

/// Computes the default bounds: one inclusion–exclusion round up to
/// [`DEFAULT_PAIRWISE_TERM_LIMIT`] terms, first-order beyond.
pub fn event_bounds(event: &DnfEvent, space: &ProbabilitySpace) -> Result<EventBounds> {
    event_bounds_with_limit(event, space, DEFAULT_PAIRWISE_TERM_LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Assignment;
    use crate::exact;

    fn space3() -> (ProbabilitySpace, Vec<usize>) {
        let mut s = ProbabilitySpace::new();
        let vars = vec![
            s.add_bool_variable(0.4).unwrap(),
            s.add_bool_variable(0.3).unwrap(),
            s.add_bool_variable(0.2).unwrap(),
        ];
        (s, vars)
    }

    fn example_events() -> (ProbabilitySpace, Vec<DnfEvent>) {
        let (s, v) = space3();
        let events = vec![
            DnfEvent::new([Assignment::new([(v[0], 0)]).unwrap()]),
            DnfEvent::new([
                Assignment::new([(v[0], 0)]).unwrap(),
                Assignment::new([(v[1], 0), (v[2], 0)]).unwrap(),
            ]),
            DnfEvent::new([
                Assignment::new([(v[0], 0)]).unwrap(),
                Assignment::new([(v[0], 1)]).unwrap(),
            ]),
            DnfEvent::new([
                Assignment::new([(v[0], 0)]).unwrap(),
                Assignment::new([(v[1], 0)]).unwrap(),
                Assignment::new([(v[2], 0)]).unwrap(),
            ]),
        ];
        (s, events)
    }

    #[test]
    fn bounds_enclose_the_exact_probability() {
        let (s, events) = example_events();
        for event in &events {
            let p = exact::probability(event, &s).unwrap();
            for b in [
                event_bounds_first_order(event, &s).unwrap(),
                event_bounds(event, &s).unwrap(),
            ] {
                assert!(
                    b.lower <= p + 1e-12 && p <= b.upper + 1e-12,
                    "exact {p} outside [{}, {}]",
                    b.lower,
                    b.upper
                );
                assert!(b.width() >= -1e-12);
            }
        }
    }

    #[test]
    fn pairwise_round_never_widens_and_sometimes_shrinks() {
        let (s, events) = example_events();
        let mut shrunk = 0usize;
        for event in &events {
            let first = event_bounds_first_order(event, &s).unwrap();
            let refined = event_bounds(event, &s).unwrap();
            assert!(refined.lower >= first.lower - 1e-12);
            assert!(refined.upper <= first.upper + 1e-12);
            if refined.width() < first.width() - 1e-12 {
                shrunk += 1;
            }
        }
        assert!(shrunk > 0, "the Bonferroni round must shrink some band");
    }

    #[test]
    fn independent_overlapping_terms_get_a_tight_pairwise_box() {
        // x ∨ y over independent Booleans: S₁ − S₂ and the Hunter bound both
        // hit the exact inclusion–exclusion value.
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool_variable(0.5).unwrap();
        let y = s.add_bool_variable(0.5).unwrap();
        let event = DnfEvent::new([
            Assignment::new([(x, 0)]).unwrap(),
            Assignment::new([(y, 0)]).unwrap(),
        ]);
        let b = event_bounds(&event, &s).unwrap();
        assert!(b.is_tight(), "[{}, {}] should be tight", b.lower, b.upper);
        assert!((b.lower - 0.75).abs() < 1e-12);
        // The first-order box is strictly wider (0.5 ≤ p ≤ 1.0).
        let first = event_bounds_first_order(&event, &s).unwrap();
        assert!(first.width() > 0.2);
    }

    #[test]
    fn degree_three_tightens_the_upper_bound_past_hunter_worsley() {
        // x ∨ y ∨ z over independent p = 0.5 Booleans: exact 0.875.
        // Hunter–Worsley subtracts a two-edge spanning tree from S₁
        // (1.5 − 0.5 = 1.0, no better than the trivial cap), while the
        // degree-three truncation S₁ − S₂ + S₃ = 1.5 − 0.75 + 0.125 hits
        // the exact value.
        let mut s = ProbabilitySpace::new();
        let terms: Vec<Assignment> = (0..3)
            .map(|_| {
                let v = s.add_bool_variable(0.5).unwrap();
                Assignment::new([(v, 0)]).unwrap()
            })
            .collect();
        let event = DnfEvent::new(terms);
        let b = event_bounds(&event, &s).unwrap();
        let p = exact::probability(&event, &s).unwrap();
        assert!((p - 0.875).abs() < 1e-12);
        assert!(
            (b.upper - p).abs() < 1e-12,
            "upper {} vs exact {p}",
            b.upper
        );
        assert!(b.lower <= p + 1e-12);
    }

    #[test]
    fn the_triple_pass_respects_the_caller_limit() {
        // Four overlapping terms with a pairwise limit of 3: no pass at all
        // runs (the existing contract), so the caller limit caps the triple
        // pass along with the pairwise one.
        let mut s = ProbabilitySpace::new();
        let terms: Vec<Assignment> = (0..4)
            .map(|_| {
                let v = s.add_bool_variable(0.3).unwrap();
                Assignment::new([(v, 0)]).unwrap()
            })
            .collect();
        let event = DnfEvent::new(terms);
        let first = event_bounds_first_order(&event, &s).unwrap();
        assert_eq!(event_bounds_with_limit(&event, &s, 3).unwrap(), first);
        // At the limit, the refined box encloses the exact probability.
        let refined = event_bounds_with_limit(&event, &s, 4).unwrap();
        let p = exact::probability(&event, &s).unwrap();
        assert!(refined.lower <= p + 1e-12 && p <= refined.upper + 1e-12);
        assert!(refined.width() < first.width());
    }

    #[test]
    fn single_term_bounds_are_tight() {
        let (s, v) = space3();
        let event = DnfEvent::new([Assignment::new([(v[1], 0), (v[2], 1)]).unwrap()]);
        let b = event_bounds(&event, &s).unwrap();
        assert!(b.is_tight());
        let p = exact::probability(&event, &s).unwrap();
        assert!((b.lower - p).abs() < 1e-12);
    }

    #[test]
    fn trivial_events_are_pinned() {
        let (s, _) = space3();
        let never = event_bounds(&DnfEvent::never(), &s).unwrap();
        assert_eq!((never.lower, never.upper), (0.0, 0.0));
        let certain = event_bounds(&DnfEvent::new([Assignment::always()]), &s).unwrap();
        assert_eq!((certain.lower, certain.upper), (1.0, 1.0));
    }

    #[test]
    fn union_bound_caps_at_one() {
        let (s, v) = space3();
        // Complementary terms on the same variable: probability is 1.
        let event = DnfEvent::new([
            Assignment::new([(v[0], 0)]).unwrap(),
            Assignment::new([(v[0], 1)]).unwrap(),
            Assignment::new([(v[1], 0)]).unwrap(),
        ]);
        let b = event_bounds(&event, &s).unwrap();
        assert!(b.upper <= 1.0);
        assert!(b.lower <= b.upper);
        let p = exact::probability(&event, &s).unwrap();
        assert!(b.lower <= p + 1e-12 && p <= b.upper + 1e-12);
    }

    #[test]
    fn limit_disables_the_pairwise_round() {
        let (s, events) = example_events();
        for event in &events {
            let first = event_bounds_first_order(event, &s).unwrap();
            let capped = event_bounds_with_limit(event, &s, 1).unwrap();
            assert_eq!(first, capped);
        }
    }

    #[test]
    fn many_term_events_fall_back_to_first_order_quickly() {
        let mut s = ProbabilitySpace::new();
        let mut terms = Vec::new();
        for _ in 0..DEFAULT_PAIRWISE_TERM_LIMIT + 10 {
            let v = s.add_bool_variable(0.01).unwrap();
            terms.push(Assignment::new([(v, 0)]).unwrap());
        }
        let event = DnfEvent::new(terms);
        let first = event_bounds_first_order(&event, &s).unwrap();
        let refined = event_bounds(&event, &s).unwrap();
        assert_eq!(first, refined);
    }
}
