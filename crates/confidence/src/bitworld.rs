//! Bit-parallel Monte Carlo: evaluating compiled lineage programs over up to
//! 256 sampled worlds at a time.
//!
//! A sampled world assigns one alternative to every variable an event
//! mentions.  Packing 64 worlds into the bits of a `u64` turns the per-world
//! question "does this literal hold?" into a single word — and the whole DNF
//! into a linear pass of `AND`/`OR`/`ANDNOT` words over the instruction
//! buffer of a [`LineagePrograms`] batch.  A block is `W ∈ {1, 2, 4}` such
//! words ([`MAX_BLOCK_WORDS`]); one pass decides `64·W` Karp–Luby samples,
//! with every mask operation a short word loop the compiler unrolls.  The
//! width is a per-kernel choice: estimators pick it from their ε/δ-implied
//! sample budget via [`block_words_for_samples`], so tiny draws stay on the
//! cheap one-word block while Chernoff-sized budgets amortize the scan over
//! four words.
//!
//! Two sampling primitives drive the kernel:
//!
//! * [`bernoulli_block`] draws 64 independent `Bernoulli(p)` bits using the
//!   classic bit-by-bit comparison of a uniform against the binary expansion
//!   of `p`: lanes stay "undecided" while their uniform's bits agree with
//!   `p`'s, so the expected cost is ~7 words of randomness for all 64 lanes
//!   instead of 64 draws (wider blocks draw one Bernoulli word per block
//!   word);
//! * multi-valued variables fall back to one `u64` draw per lane compared
//!   against the program's cumulative fixed-point thresholds.
//!
//! [`BitKarpLuby`] runs the estimator of Definition 4.1 blockwise: per block
//! it (1) picks a term per lane with probability `p_f/M`, (2) samples a base
//! world block and overrides the variables each lane's chosen term
//! constrains, and (3) scans the instruction buffer once, accumulating a
//! "first satisfied term" mask — a lane succeeds iff its chosen term is the
//! lowest-index satisfied term, exactly the scalar estimator's semantics.
//! Scalar runs and runs at different widths consume randomness differently
//! (seeds re-map), but each is deterministic per seed and estimates the same
//! quantity; the differential property suite pins their statistical
//! agreement and the per-seed bit-determinism of every width.

use crate::compile::{LineagePrograms, SLOT_NONE};
use crate::error::{ConfidenceError, Result};
use rand::{Rng, RngCore};
use std::sync::Arc;

/// The widest supported block, in 64-lane words (256 worlds per pass).
pub const MAX_BLOCK_WORDS: usize = 4;

/// Picks the block width (in words) for a run of `m` samples: the widest
/// block the budget fills at least once, so small draws avoid paying a
/// 4-word scan for lanes they would throw away.
pub fn block_words_for_samples(m: usize) -> usize {
    if m >= 4 * 64 {
        4
    } else if m >= 2 * 64 {
        2
    } else {
        1
    }
}

/// Draws 64 independent `Bernoulli(p)` lanes, `p` given as a 64-bit
/// fixed-point fraction (`p = p_bits / 2^64`).
///
/// Compares a lazily generated uniform per lane against the binary expansion
/// of `p`, most significant bit first: a lane decides as soon as its uniform
/// bit differs from `p`'s bit, and all 64 lanes share each drawn word.
pub fn bernoulli_block<R: RngCore + ?Sized>(rng: &mut R, p_bits: u64) -> u64 {
    let mut undecided = !0u64;
    let mut result = 0u64;
    for k in (0..64).rev() {
        if p_bits & (u64::MAX >> (63 - k)) == 0 {
            // No bit of p remains: undecided lanes can only be ≥ p.
            break;
        }
        let r = rng.next_u64();
        if (p_bits >> k) & 1 != 0 {
            // p's bit is 1: lanes whose uniform bit is 0 are below p.
            result |= undecided & !r;
            undecided &= r;
        } else {
            // p's bit is 0: lanes whose uniform bit is 1 are above p.
            undecided &= !r;
        }
        if undecided == 0 {
            break;
        }
    }
    // Lanes still undecided matched every bit of p, so their uniform equals
    // p's expansion and is not below it: they resolve to false.
    result
}

/// The Karp–Luby estimator over a compiled program, `64·W` worlds per block.
///
/// Sampling allocates nothing per block.  The world/forced masks (`W` `u64`s
/// per arena slot) live in a thread-local scratchpad shared by every kernel
/// on the thread — each block pass writes every cell it later reads, so the
/// scratch never needs clearing and constructing a kernel costs only the
/// per-event `O(|F|)` bookkeeping, not `O(arena)`, even when a batched
/// estimator builds one kernel per event of a large relation.
#[derive(Clone, Debug)]
pub struct BitKarpLuby {
    programs: Arc<LineagePrograms>,
    event: usize,
    /// Block width in words (`W ∈ {1, 2, 4}`).
    words: usize,
    /// Per lane (`64·W` lanes): the chosen term's position within the event.
    chosen_term: Vec<u32>,
    /// Per event term position, per block word (`[pos·W + w]`): lanes that
    /// chose it **in the current block**.  Invariant between blocks:
    /// non-zero entries are exactly the positions in `chosen_term`, which
    /// the next block zeroes first — a stale lane bit surviving in an
    /// unchosen position would be counted as a spurious success.
    chosen_mask: Vec<u64>,
}

/// The thread-local block scratchpad: world and forced masks indexed by
/// arena slot / local variable, strided by the kernel's block width
/// (`[slot·W + w]`).  Contents are deliberately left dirty between uses;
/// every pass writes the cells of the event it works on before reading
/// them, and a width change merely re-strides the same flat buffers.
#[derive(Default)]
struct BlockScratch {
    /// Per arena slot, per word: the 64-world truth mask of the literal.
    slot_masks: Vec<u64>,
    /// Per arena slot, per word: lanes whose chosen term forces it true.
    forced_slot: Vec<u64>,
    /// Per local variable, per word: lanes whose chosen term constrains it.
    forced_var: Vec<u64>,
}

impl BlockScratch {
    fn reserve(&mut self, slots: usize, vars: usize) {
        if self.slot_masks.len() < slots {
            self.slot_masks.resize(slots, 0);
            self.forced_slot.resize(slots, 0);
        }
        if self.forced_var.len() < vars {
            self.forced_var.resize(vars, 0);
        }
    }
}

thread_local! {
    static SCRATCH: std::cell::RefCell<BlockScratch> =
        std::cell::RefCell::new(BlockScratch::default());
}

impl BitKarpLuby {
    /// Prepares a one-word (64-lane) kernel for event `event` of a compiled
    /// batch; fails on an event with no terms (probability 0, nothing to
    /// sample — the same contract as the scalar
    /// [`crate::KarpLubyEstimator`]).
    pub fn new(programs: Arc<LineagePrograms>, event: usize) -> Result<Self> {
        BitKarpLuby::new_with_width(programs, event, 1)
    }

    /// Prepares a kernel with an explicit block width of `words` `u64`s
    /// (`1`, `2` or `4`); see [`block_words_for_samples`] for the
    /// budget-driven choice.
    pub fn new_with_width(
        programs: Arc<LineagePrograms>,
        event: usize,
        words: usize,
    ) -> Result<Self> {
        if !matches!(words, 1 | 2 | 4) {
            return Err(ConfidenceError::InvalidParameter(format!(
                "block width {words} is not 1, 2 or 4 words"
            )));
        }
        let program = *programs.program(event);
        if program.term_len == 0 {
            return Err(ConfidenceError::EmptyEvent);
        }
        Ok(BitKarpLuby {
            chosen_term: vec![0; 64 * words],
            chosen_mask: vec![0; program.term_len as usize * words],
            words,
            programs,
            event,
        })
    }

    /// The total term weight `M`.
    pub fn total_weight(&self) -> f64 {
        self.programs.total_weight(self.event)
    }

    /// The number of terms `|F|`.
    pub fn num_terms(&self) -> usize {
        self.programs.num_terms(self.event)
    }

    /// The block width in words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// The number of samples one block decides (`64·W`).
    pub fn lanes(&self) -> u32 {
        64 * self.words as u32
    }

    /// Draws one block of `64·W` Karp–Luby samples into `out` (word `w`, bit
    /// `j` set iff sample `64·w + j` counted 1); only the first
    /// [`words`](Self::words) entries of `out` are written.
    pub fn sample_block_words<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        out: &mut [u64; MAX_BLOCK_WORDS],
    ) {
        let width = self.words;
        let p = self.programs.program(self.event);
        let arena = &*self.programs;
        let term_range = p.term_start as usize..(p.term_start + p.term_len) as usize;
        let event_terms = &arena.event_terms[term_range.clone()];
        let cum = &arena.event_cum[term_range];
        let event_vars =
            &arena.event_vars[p.var_start as usize..(p.var_start + p.var_len) as usize];
        let total = p.total_weight;

        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.reserve(arena.num_slots() * width, arena.num_vars() * width);

            // Reset the forced masks of the variables (and their slots) this
            // event touches — the only scratch cells the pass will read —
            // and the chosen-term positions of the *previous* block: those
            // are exactly the non-zero entries of `chosen_mask`, and a stale
            // lane bit left in a position not chosen again this block would
            // be counted as a spurious success in step 3.
            for &v in event_vars {
                for w in 0..width {
                    scratch.forced_var[v as usize * width + w] = 0;
                }
                let plan = arena.vars[v as usize];
                for cell in plan.alt_start..plan.alt_start + plan.alt_len {
                    let slot = arena.alt_slots[cell as usize];
                    if slot != SLOT_NONE {
                        for w in 0..width {
                            scratch.forced_slot[slot as usize * width + w] = 0;
                        }
                    }
                }
            }
            for lane in 0..64 * width {
                let word = lane / 64;
                self.chosen_mask[self.chosen_term[lane] as usize * width + word] = 0;
            }

            // Step 1: per lane, choose a term with probability p_f / M and
            // mark the literals it forces.  `cum` is non-decreasing, so the
            // first index with `target < cum[i]` is found by binary search.
            for lane in 0..64 * width {
                let target = rng.gen_range(0.0..total);
                // Floating-point edge: clamp to the last term.
                let t = (cum.partition_point(|&w| w <= target) as u32).min(p.term_len - 1);
                self.chosen_term[lane] = t;
            }
            for lane in 0..64 * width {
                let t = self.chosen_term[lane];
                let word = lane / 64;
                let bit = 1u64 << (lane % 64);
                self.chosen_mask[t as usize * width + word] |= bit;
                let (start, len) = arena.terms[event_terms[t as usize] as usize];
                for &slot in &arena.term_lits[start as usize..(start + len) as usize] {
                    scratch.forced_slot[slot as usize * width + word] |= bit;
                    scratch.forced_var[arena.slot_var[slot as usize] as usize * width + word] |=
                        bit;
                }
            }

            // Step 2: sample a base world block for every mentioned variable
            // and override the lanes whose chosen term constrains it.
            for &v in event_vars {
                let plan = arena.vars[v as usize];
                let cells = plan.alt_start as usize..(plan.alt_start + plan.alt_len) as usize;
                if plan.alt_len == 2 {
                    // Boolean fast path: one Bernoulli word per block word
                    // decides both alternatives.
                    let s0 = arena.alt_slots[cells.start];
                    let s1 = arena.alt_slots[cells.start + 1];
                    for w in 0..width {
                        let heads = bernoulli_block(rng, arena.alt_thresholds[cells.start]);
                        let forced = scratch.forced_var[v as usize * width + w];
                        if s0 != SLOT_NONE {
                            scratch.slot_masks[s0 as usize * width + w] =
                                (heads & !forced) | scratch.forced_slot[s0 as usize * width + w];
                        }
                        if s1 != SLOT_NONE {
                            scratch.slot_masks[s1 as usize * width + w] =
                                (!heads & !forced) | scratch.forced_slot[s1 as usize * width + w];
                        }
                    }
                } else {
                    for cell in cells.clone() {
                        let slot = arena.alt_slots[cell];
                        if slot != SLOT_NONE {
                            for w in 0..width {
                                scratch.slot_masks[slot as usize * width + w] = 0;
                            }
                        }
                    }
                    let thresholds = &arena.alt_thresholds[cells.clone()];
                    for w in 0..width {
                        for lane in 0..64u32 {
                            let r = rng.next_u64();
                            let alt = thresholds
                                .iter()
                                .position(|&t| r < t)
                                .unwrap_or(thresholds.len() - 1);
                            let slot = arena.alt_slots[cells.start + alt];
                            if slot != SLOT_NONE {
                                scratch.slot_masks[slot as usize * width + w] |= 1u64 << lane;
                            }
                        }
                    }
                    for cell in cells {
                        let slot = arena.alt_slots[cell];
                        if slot != SLOT_NONE {
                            for w in 0..width {
                                let forced = scratch.forced_var[v as usize * width + w];
                                let cell_ix = slot as usize * width + w;
                                scratch.slot_masks[cell_ix] = (scratch.slot_masks[cell_ix]
                                    & !forced)
                                    | scratch.forced_slot[cell_ix];
                            }
                        }
                    }
                }
            }

            // Step 3: one pass over the instruction buffer.  `already`
            // collects lanes some earlier term satisfied; a lane succeeds
            // iff the first term it satisfies is the one it chose.
            let mut already = [0u64; MAX_BLOCK_WORDS];
            let mut success = [0u64; MAX_BLOCK_WORDS];
            let mut sat = [0u64; MAX_BLOCK_WORDS];
            for (position, &term_id) in event_terms.iter().enumerate() {
                let mut any = 0u64;
                for w in 0..width {
                    sat[w] = !already[w];
                    any |= sat[w];
                }
                let (start, len) = arena.terms[term_id as usize];
                for &slot in &arena.term_lits[start as usize..(start + len) as usize] {
                    any = 0;
                    for (w, word) in sat.iter_mut().enumerate().take(width) {
                        *word &= scratch.slot_masks[slot as usize * width + w];
                        any |= *word;
                    }
                    if any == 0 {
                        break;
                    }
                }
                if any != 0 {
                    let mut undecided = 0u64;
                    for w in 0..width {
                        success[w] |= sat[w] & self.chosen_mask[position * width + w];
                        already[w] |= sat[w];
                        undecided |= !already[w];
                    }
                    if undecided == 0 {
                        break;
                    }
                }
            }
            out[..width].copy_from_slice(&success[..width]);
        });
    }

    /// Draws one block of 64 Karp–Luby samples and returns the success mask
    /// (bit `j` set iff sample `j` counted 1); the width-1 view of
    /// [`sample_block_words`](Self::sample_block_words), valid only on
    /// one-word kernels.
    pub fn sample_block_bits<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        debug_assert_eq!(self.words, 1, "sample_block_bits needs a 1-word kernel");
        let mut out = [0u64; MAX_BLOCK_WORDS];
        self.sample_block_words(rng, &mut out);
        out[0]
    }

    /// Draws one block and counts the successes among its first `lanes`
    /// samples (`lanes ≤ 64·W`; partial blocks keep sample counts exact).
    pub fn sample_block<R: Rng + ?Sized>(&mut self, rng: &mut R, lanes: u32) -> u32 {
        debug_assert!((1..=self.lanes()).contains(&lanes));
        let mut out = [0u64; MAX_BLOCK_WORDS];
        self.sample_block_words(rng, &mut out);
        let mut count = 0u32;
        let mut remaining = lanes;
        for &word in out.iter().take(self.words) {
            if remaining == 0 {
                break;
            }
            let mask = if remaining >= 64 {
                !0u64
            } else {
                (1u64 << remaining) - 1
            };
            count += (word & mask).count_ones();
            remaining = remaining.saturating_sub(64);
        }
        count
    }

    /// Draws exactly `m` samples blockwise and returns `p̂ = X · M / m`.
    pub fn estimate<R: Rng + ?Sized>(&mut self, m: usize, rng: &mut R) -> Result<f64> {
        self.estimate_with_deadline(m, rng, None)
    }

    /// [`estimate`](Self::estimate) with a cooperative deadline: the clock
    /// is probed every [`DEADLINE_CHECK_BLOCKS`] blocks (the check is ~ns
    /// against a ~µs block) and an expired deadline aborts the run with
    /// [`ConfidenceError::Interrupted`] instead of finishing the draw.  A
    /// run that completes is bit-identical to the deadline-free path: the
    /// probe consumes no randomness.
    pub fn estimate_with_deadline<R: Rng + ?Sized>(
        &mut self,
        m: usize,
        rng: &mut R,
        deadline: Option<std::time::Instant>,
    ) -> Result<f64> {
        if m == 0 {
            return Err(ConfidenceError::InvalidParameter(
                "the Karp-Luby estimate needs at least one sample".into(),
            ));
        }
        let lanes = self.lanes() as usize;
        let mut successes = 0u64;
        let mut remaining = m;
        let mut blocks = 0u32;
        while remaining >= lanes {
            if let Some(d) = deadline {
                if blocks.is_multiple_of(DEADLINE_CHECK_BLOCKS) && std::time::Instant::now() >= d {
                    return Err(ConfidenceError::Interrupted);
                }
            }
            successes += u64::from(self.sample_block(rng, lanes as u32));
            remaining -= lanes;
            blocks += 1;
        }
        if remaining > 0 {
            successes += u64::from(self.sample_block(rng, remaining as u32));
        }
        Ok(successes as f64 * self.total_weight() / m as f64)
    }
}

/// How many blocks the budgeted estimator draws between deadline probes:
/// small enough that `DeadlineExceeded { stage: "estimate" }` fires within
/// microseconds of the deadline, large enough that the `Instant` read is
/// amortized to noise.
pub const DEADLINE_CHECK_BLOCKS: u32 = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Assignment, DnfEvent, ProbabilitySpace};
    use crate::exact;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn compile_one(event: DnfEvent, space: &ProbabilitySpace) -> Arc<LineagePrograms> {
        Arc::new(LineagePrograms::compile(vec![event], space).unwrap())
    }

    #[test]
    fn bernoulli_block_matches_its_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for &p in &[0.05f64, 0.3, 0.5, 0.9] {
            let p_bits = (p * 1.8446744073709552e19) as u64;
            let mut ones = 0u64;
            let blocks = 4000;
            for _ in 0..blocks {
                ones += u64::from(bernoulli_block(&mut rng, p_bits).count_ones());
            }
            let freq = ones as f64 / (blocks as f64 * 64.0);
            assert!(
                (freq - p).abs() < 0.01,
                "frequency {freq} too far from p = {p}"
            );
        }
    }

    #[test]
    fn bernoulli_block_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(bernoulli_block(&mut rng, 0), 0);
        // p_bits = MAX is (2^64 - 1)/2^64: all but a measure-2^-64 sliver.
        let all = bernoulli_block(&mut rng, u64::MAX);
        assert_eq!(all.count_ones(), 64);
    }

    #[test]
    fn widths_follow_the_sample_budget() {
        assert_eq!(block_words_for_samples(0), 1);
        assert_eq!(block_words_for_samples(127), 1);
        assert_eq!(block_words_for_samples(128), 2);
        assert_eq!(block_words_for_samples(255), 2);
        assert_eq!(block_words_for_samples(256), 4);
        assert_eq!(block_words_for_samples(1 << 20), 4);
    }

    #[test]
    fn rejects_the_impossible_event_and_zero_samples() {
        let mut s = ProbabilitySpace::new();
        s.add_bool_variable(0.5).unwrap();
        let programs = compile_one(DnfEvent::never(), &s);
        assert!(matches!(
            BitKarpLuby::new(programs, 0),
            Err(ConfidenceError::EmptyEvent)
        ));
        let s2 = {
            let mut s2 = ProbabilitySpace::new();
            s2.add_bool_variable(0.5).unwrap();
            s2
        };
        let programs = compile_one(DnfEvent::new([Assignment::new([(0, 0)]).unwrap()]), &s2);
        let mut kernel = BitKarpLuby::new(programs.clone(), 0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(kernel.estimate(0, &mut rng).is_err());
        assert!(matches!(
            BitKarpLuby::new_with_width(programs, 0, 3),
            Err(ConfidenceError::InvalidParameter(_))
        ));
    }

    #[test]
    fn estimates_converge_on_the_coin_event() {
        // Example 2.2: fair coin with two heads, or the double-headed coin.
        let mut s = ProbabilitySpace::new();
        let c = s.add_variable(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap();
        let t1 = s.add_variable(vec![0.5, 0.5]).unwrap();
        let t2 = s.add_variable(vec![0.5, 0.5]).unwrap();
        let event = DnfEvent::new([
            Assignment::new([(c, 0), (t1, 0), (t2, 0)]).unwrap(),
            Assignment::new([(c, 1)]).unwrap(),
        ]);
        let exact_p = exact::probability(&event, &s).unwrap();
        let programs = compile_one(event, &s);
        for words in [1usize, 2, 4] {
            let mut kernel = BitKarpLuby::new_with_width(programs.clone(), 0, words).unwrap();
            assert_eq!(kernel.num_terms(), 2);
            assert_eq!(kernel.lanes(), 64 * words as u32);
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let p_hat = kernel.estimate(40_000, &mut rng).unwrap();
            assert!(
                (p_hat - exact_p).abs() < 0.02,
                "estimate {p_hat} too far from exact {exact_p} at width {words}"
            );
        }
    }

    #[test]
    fn overlapping_terms_are_not_overcounted() {
        // The Karp-Luby coverage trick is exactly what the minimal-term scan
        // implements; naive averaging would give 1.0 here instead of 0.75.
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool_variable(0.5).unwrap();
        let y = s.add_bool_variable(0.5).unwrap();
        let event = DnfEvent::new([
            Assignment::new([(x, 0)]).unwrap(),
            Assignment::new([(y, 0)]).unwrap(),
        ]);
        let programs = compile_one(event, &s);
        for words in [1usize, 4] {
            let mut kernel = BitKarpLuby::new_with_width(programs.clone(), 0, words).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            let p_hat = kernel.estimate(60_000, &mut rng).unwrap();
            assert!(
                (p_hat - 0.75).abs() < 0.015,
                "estimate {p_hat} vs 0.75 at width {words}"
            );
        }
    }

    #[test]
    fn multivalued_variables_sample_correctly() {
        let mut s = ProbabilitySpace::new();
        let v = s.add_variable(vec![0.2, 0.3, 0.5]).unwrap();
        let w = s.add_variable(vec![0.25, 0.25, 0.25, 0.25]).unwrap();
        let event = DnfEvent::new([
            Assignment::new([(v, 1)]).unwrap(),
            Assignment::new([(v, 2), (w, 3)]).unwrap(),
        ]);
        let exact_p = exact::probability(&event, &s).unwrap();
        let programs = compile_one(event, &s);
        for words in [1usize, 2, 4] {
            let mut kernel = BitKarpLuby::new_with_width(programs.clone(), 0, words).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(31);
            let p_hat = kernel.estimate(60_000, &mut rng).unwrap();
            assert!(
                (p_hat - exact_p).abs() < 0.015,
                "estimate {p_hat} vs exact {exact_p} at width {words}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool_variable(0.4).unwrap();
        let y = s.add_bool_variable(0.6).unwrap();
        let event = DnfEvent::new([
            Assignment::new([(x, 0)]).unwrap(),
            Assignment::new([(y, 1)]).unwrap(),
        ]);
        let programs = compile_one(event, &s);
        for words in [1usize, 2, 4] {
            let mut a = BitKarpLuby::new_with_width(programs.clone(), 0, words).unwrap();
            let mut b = BitKarpLuby::new_with_width(programs.clone(), 0, words).unwrap();
            let mut r1 = ChaCha8Rng::seed_from_u64(11);
            let mut r2 = ChaCha8Rng::seed_from_u64(11);
            let mut r3 = ChaCha8Rng::seed_from_u64(12);
            let ea = a.estimate(1000, &mut r1).unwrap();
            let eb = b.estimate(1000, &mut r2).unwrap();
            assert_eq!(ea, eb, "one seed must give bit-identical estimates");
            let ec = a.estimate(1000, &mut r3).unwrap();
            assert_ne!(ea, ec, "different seeds must diverge");
        }
    }

    #[test]
    fn partial_blocks_count_exactly_the_requested_lanes() {
        let mut s = ProbabilitySpace::new();
        s.add_bool_variable(0.999).unwrap();
        // Single near-certain term: nearly every lane succeeds, so a partial
        // block's count is bounded by the lane budget.
        let event = DnfEvent::new([Assignment::new([(0, 0)]).unwrap()]);
        let programs = compile_one(event, &s);
        for words in [1usize, 2, 4] {
            let mut kernel = BitKarpLuby::new_with_width(programs.clone(), 0, words).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            for lanes in [1u32, 7, 33, 64, 64 * words as u32] {
                let x = kernel.sample_block(&mut rng, lanes);
                assert!(x <= lanes);
            }
        }
    }

    #[test]
    fn wide_blocks_fill_every_word() {
        // A certain-per-term single-variable event at p close to 1: each of
        // the four words must carry successes, proving lanes past 64 are
        // really sampled and counted.
        let mut s = ProbabilitySpace::new();
        s.add_bool_variable(0.999).unwrap();
        let event = DnfEvent::new([Assignment::new([(0, 0)]).unwrap()]);
        let programs = compile_one(event, &s);
        let mut kernel = BitKarpLuby::new_with_width(programs, 0, 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut out = [0u64; MAX_BLOCK_WORDS];
        kernel.sample_block_words(&mut rng, &mut out);
        for (w, &word) in out.iter().enumerate() {
            assert!(
                word.count_ones() > 32,
                "word {w} carries only {} successes",
                word.count_ones()
            );
        }
    }
}
