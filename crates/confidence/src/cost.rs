//! The estimation-layer cost model: compile or sample, decided per event.
//!
//! Every approximate confidence request has two ways to produce an answer
//! for a compiled event:
//!
//! * **sample** it with the Karp–Luby kernel, paying the Chernoff-implied
//!   `m = ⌈3·|F|·ln(2/δ)/ε²⌉` world draws on *every* request, or
//! * **compile** it once into a smoothed d-DNNF ([`crate::dnnf`]) and read
//!   off the exact probability in linear time forever after.
//!
//! Compilation is worst-case exponential, so it runs under a hard node
//! budget with abort-and-fallback; the question this module answers is
//! whether the attempt is worth making.  The decision compares a cheap
//! structural **size estimate** of the circuit against both the budget and
//! the sample bill.  The estimate sums `terms · variables` over the event's
//! independent components — Shannon expansion touches at most every term
//! per decision level and the components compile separately, so the sum is
//! a serviceable proxy for the node count (circuit nodes and kernel samples
//! both cost a handful of instructions each).  Compilation cost is paid
//! once per content hash while sampling recurs per request, so when the two
//! look comparable the tie deliberately goes to compiling.
//!
//! The decision is a pure function of the event's structure and the
//! request's sample budget — never of clocks, caches, or request history —
//! which is what keeps warm and cold evaluations bit-identical.

use crate::event::DnfEvent;

/// Default hard budget on d-DNNF circuit nodes per event.  Generous enough
/// for every moderate-width lineage in the test corpora while bounding the
/// abort cost of a failed attempt to well under a millisecond.
pub const DEFAULT_NODE_BUDGET: u32 = 1 << 13;

/// Which backend should answer an approximate confidence request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Attempt d-DNNF compilation (falling back to sampling if the hard
    /// node budget aborts it).
    Exact,
    /// Draw Chernoff-many samples with the bit-parallel kernel.
    Sample,
}

/// Structural proxy for the compiled circuit size: `Σ terms_c · vars_c`
/// over independent components, plus the factorisation overhead.  Saturates
/// rather than overflows on adversarial inputs.
pub fn estimated_nodes(event: &DnfEvent) -> u64 {
    let components = event.independent_components();
    let mut total = 2u64; // the constant leaves
    for c in &components {
        let terms = c.num_terms() as u64;
        let vars = c.variables().len() as u64;
        total = total.saturating_add(terms.saturating_mul(vars.max(1)));
    }
    // ¬(⋀ ¬C_i) costs two negations per component plus the product node.
    total.saturating_add(2 * components.len() as u64 + 1)
}

/// Picks the backend for one event.
///
/// `estimated` is the structural size proxy ([`estimated_nodes`], cached
/// per event by `LineagePrograms`), `samples` the Chernoff-implied draw
/// count for the request's ε/δ, and `node_budget` the hard circuit limit
/// (0 disables the exact backend entirely).
pub fn choose_backend(estimated: u64, samples: u64, node_budget: u32) -> Backend {
    if node_budget == 0 || estimated > node_budget as u64 || estimated > samples {
        Backend::Sample
    } else {
        Backend::Exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Assignment;

    fn chain_event(vars: usize) -> DnfEvent {
        let terms: Vec<Assignment> = (0..vars.saturating_sub(1))
            .map(|i| Assignment::new([(i, 0), (i + 1, 0)]).unwrap())
            .collect();
        DnfEvent::new(terms)
    }

    #[test]
    fn a_zero_budget_disables_the_exact_backend() {
        assert_eq!(choose_backend(4, u64::MAX, 0), Backend::Sample);
    }

    #[test]
    fn small_events_with_big_sample_bills_compile() {
        let est = estimated_nodes(&chain_event(8));
        assert_eq!(
            choose_backend(est, 10_000, DEFAULT_NODE_BUDGET),
            Backend::Exact
        );
    }

    #[test]
    fn tiny_sample_bills_prefer_sampling() {
        let est = estimated_nodes(&chain_event(8));
        assert!(est > 8, "estimate should see the chain width: {est}");
        assert_eq!(choose_backend(est, 4, DEFAULT_NODE_BUDGET), Backend::Sample);
    }

    #[test]
    fn estimates_exploit_independent_components() {
        // 100 independent single-literal terms: the component-wise estimate
        // stays linear where terms·vars would be quadratic.
        let terms: Vec<Assignment> = (0..100)
            .map(|i| Assignment::new([(i, 0)]).unwrap())
            .collect();
        let est = estimated_nodes(&DnfEvent::new(terms));
        assert!(est < 400, "component-wise estimate blew up: {est}");
        assert_eq!(
            choose_backend(est, 2_000, DEFAULT_NODE_BUDGET),
            Backend::Exact
        );
    }

    #[test]
    fn over_budget_estimates_fall_back_to_sampling() {
        assert_eq!(
            choose_backend(u64::MAX, u64::MAX, DEFAULT_NODE_BUDGET),
            Backend::Sample
        );
    }
}
