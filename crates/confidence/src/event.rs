//! The event model: independent discrete random variables and DNF events
//! (disjunctions of partial assignments).
//!
//! This crate is deliberately independent of the data model: the `engine`
//! crate maps U-relation conditions onto [`VarId`]/alternative indices before
//! asking for probabilities, and the estimators here work on plain indices
//! for speed.

use crate::error::{ConfidenceError, Result};
use std::collections::BTreeMap;

/// Index of a random variable within a [`ProbabilitySpace`].
pub type VarId = usize;

/// Index of an alternative (domain value) of a variable.
pub type AltId = usize;

/// Numerical slack accepted when checking that a distribution sums to 1.
pub const DISTRIBUTION_TOLERANCE: f64 = 1e-9;

/// A finite set of independent discrete random variables, each with a
/// probability per alternative.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProbabilitySpace {
    /// `dists[v][a]` is `Pr[X_v = a]`.
    dists: Vec<Vec<f64>>,
}

impl ProbabilitySpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        ProbabilitySpace::default()
    }

    /// Adds a variable with the given per-alternative probabilities, which
    /// must be strictly positive and sum to 1.
    pub fn add_variable(&mut self, probabilities: Vec<f64>) -> Result<VarId> {
        if probabilities.is_empty() {
            return Err(ConfidenceError::InvalidDistribution(
                "a variable needs at least one alternative".into(),
            ));
        }
        let mut total = 0.0;
        for &p in &probabilities {
            if !p.is_finite() || p <= 0.0 {
                return Err(ConfidenceError::InvalidDistribution(format!(
                    "probability {p} is not in (0, 1]"
                )));
            }
            total += p;
        }
        if (total - 1.0).abs() > DISTRIBUTION_TOLERANCE {
            return Err(ConfidenceError::InvalidDistribution(format!(
                "probabilities sum to {total}, expected 1"
            )));
        }
        self.dists.push(probabilities);
        Ok(self.dists.len() - 1)
    }

    /// Adds a Boolean variable: alternative 0 is "true" with probability `p`,
    /// alternative 1 is "false" with probability `1 − p`.
    pub fn add_bool_variable(&mut self, p: f64) -> Result<VarId> {
        if !(p > 0.0 && p < 1.0) {
            return Err(ConfidenceError::InvalidDistribution(format!(
                "Boolean probability {p} must be strictly between 0 and 1"
            )));
        }
        self.add_variable(vec![p, 1.0 - p])
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.dists.len()
    }

    /// Number of alternatives of variable `var`.
    pub fn num_alternatives(&self, var: VarId) -> Result<usize> {
        self.dists
            .get(var)
            .map(Vec::len)
            .ok_or(ConfidenceError::UnknownVariable(var))
    }

    /// `Pr[X_var = alt]`.
    pub fn probability(&self, var: VarId, alt: AltId) -> Result<f64> {
        let dist = self
            .dists
            .get(var)
            .ok_or(ConfidenceError::UnknownVariable(var))?;
        dist.get(alt)
            .copied()
            .ok_or(ConfidenceError::UnknownAlternative { var, alt })
    }

    /// The full distribution of variable `var`.
    pub fn distribution(&self, var: VarId) -> Result<&[f64]> {
        self.dists
            .get(var)
            .map(Vec::as_slice)
            .ok_or(ConfidenceError::UnknownVariable(var))
    }

    /// Number of total assignments over the given variables.
    pub fn assignment_count(&self, vars: &[VarId]) -> Result<u128> {
        let mut n: u128 = 1;
        for &v in vars {
            n = n.saturating_mul(self.num_alternatives(v)? as u128);
        }
        Ok(n)
    }
}

/// A partial assignment `f : Var → Dom`, the building block of DNF events.
///
/// Assignments are kept sorted by variable id; an empty assignment is the
/// always-true event.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Assignment {
    pairs: Vec<(VarId, AltId)>,
}

impl Assignment {
    /// The empty assignment (true in every world).
    pub fn always() -> Self {
        Assignment::default()
    }

    /// Creates an assignment from pairs; duplicate variables must agree.
    pub fn new(pairs: impl IntoIterator<Item = (VarId, AltId)>) -> Result<Self> {
        let mut map: BTreeMap<VarId, AltId> = BTreeMap::new();
        for (var, alt) in pairs {
            match map.get(&var) {
                Some(&existing) if existing != alt => {
                    return Err(ConfidenceError::InvalidDistribution(format!(
                        "assignment maps variable {var} to both {existing} and {alt}"
                    )))
                }
                _ => {
                    map.insert(var, alt);
                }
            }
        }
        Ok(Assignment {
            pairs: map.into_iter().collect(),
        })
    }

    /// Number of constrained variables.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no variable is constrained.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over `(variable, alternative)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, AltId)> + '_ {
        self.pairs.iter().copied()
    }

    /// The alternative assigned to `var`, if any.
    pub fn get(&self, var: VarId) -> Option<AltId> {
        self.pairs
            .binary_search_by_key(&var, |&(v, _)| v)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// The weight `p_f = Π Pr[X = f(X)]` (Equation 2 of the paper).
    pub fn weight(&self, space: &ProbabilitySpace) -> Result<f64> {
        let mut p = 1.0;
        for &(var, alt) in &self.pairs {
            p *= space.probability(var, alt)?;
        }
        Ok(p)
    }

    /// True if the two partial assignments agree on shared variables.
    pub fn consistent_with(&self, other: &Assignment) -> bool {
        // Merge-join over the sorted pair lists.
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.pairs.len() && j < other.pairs.len() {
            let (va, aa) = self.pairs[i];
            let (vb, ab) = other.pairs[j];
            match va.cmp(&vb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if aa != ab {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// The union of two consistent assignments, or `None` if they conflict.
    pub fn merge(&self, other: &Assignment) -> Option<Assignment> {
        if !self.consistent_with(other) {
            return None;
        }
        let mut map: BTreeMap<VarId, AltId> = self.pairs.iter().copied().collect();
        map.extend(other.pairs.iter().copied());
        Some(Assignment {
            pairs: map.into_iter().collect(),
        })
    }

    /// True if the total assignment `total` extends this partial assignment
    /// (`total ∈ ω(f)` in the paper's notation, with `total` restricted to
    /// the mentioned variables).
    pub fn satisfied_by(&self, total: &Assignment) -> bool {
        self.pairs
            .iter()
            .all(|&(var, alt)| total.get(var) == Some(alt))
    }

    /// The variables this assignment constrains.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.pairs.iter().map(|&(v, _)| v)
    }

    /// Restricts the assignment to variables other than `var`, returning the
    /// removed alternative if the variable was constrained.
    pub fn without(&self, var: VarId) -> (Option<AltId>, Assignment) {
        let mut pairs = self.pairs.clone();
        match pairs.binary_search_by_key(&var, |&(v, _)| v) {
            Ok(i) => {
                let (_, alt) = pairs.remove(i);
                (Some(alt), Assignment { pairs })
            }
            Err(_) => (None, Assignment { pairs }),
        }
    }
}

/// A DNF event: a disjunction `F = f₁ ∨ … ∨ f_m` of partial assignments.
///
/// The probability of the event is the confidence of the tuple whose
/// U-relation conditions are the `f_i` (Section 4).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DnfEvent {
    terms: Vec<Assignment>,
}

impl DnfEvent {
    /// The impossible event (no terms).
    pub fn never() -> Self {
        DnfEvent { terms: Vec::new() }
    }

    /// Creates an event from its terms (order is preserved; the Karp–Luby
    /// estimator relies on a fixed order).
    pub fn new(terms: impl IntoIterator<Item = Assignment>) -> Self {
        DnfEvent {
            terms: terms.into_iter().collect(),
        }
    }

    /// Adds a term.
    pub fn push(&mut self, term: Assignment) {
        self.terms.push(term);
    }

    /// The terms in order.
    pub fn terms(&self) -> &[Assignment] {
        &self.terms
    }

    /// Number of terms `|F|`.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// True if the event has no terms (probability 0).
    pub fn is_never(&self) -> bool {
        self.terms.is_empty()
    }

    /// True if some term is the empty assignment (probability 1).
    pub fn is_certain(&self) -> bool {
        self.terms.iter().any(Assignment::is_empty)
    }

    /// `M = Σ_f p_f`, the total weight of the terms counted separately.
    pub fn total_term_weight(&self, space: &ProbabilitySpace) -> Result<f64> {
        let mut m = 0.0;
        for t in &self.terms {
            m += t.weight(space)?;
        }
        Ok(m)
    }

    /// The distinct variables mentioned by any term, in increasing order.
    pub fn variables(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .terms
            .iter()
            .flat_map(|t| t.variables().collect::<Vec<_>>())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Removes duplicate and subsumed terms (a term subsumed by a more
    /// general one never changes the event's probability but does slow the
    /// estimator down).
    pub fn simplified(&self) -> DnfEvent {
        let mut kept: Vec<Assignment> = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            // Skip `t` if an already-kept term is a subset of it.
            if kept
                .iter()
                .any(|k| k.iter().all(|(v, a)| t.get(v) == Some(a)))
            {
                continue;
            }
            // Drop previously kept terms that `t` subsumes.
            kept.retain(|k| !t.iter().all(|(v, a)| k.get(v) == Some(a)));
            kept.push(t.clone());
        }
        DnfEvent { terms: kept }
    }

    /// True if the total assignment satisfies the event.
    pub fn satisfied_by(&self, total: &Assignment) -> bool {
        self.terms.iter().any(|t| t.satisfied_by(total))
    }

    /// Splits the event into independent components: two terms are in the
    /// same component iff they (transitively) share a variable.  The event is
    /// the disjunction of its components, and distinct components mention
    /// disjoint variables, so
    /// `Pr[F] = 1 − Π_i (1 − Pr[component_i])`.
    pub fn independent_components(&self) -> Vec<DnfEvent> {
        let n = self.terms.len();
        if n == 0 {
            return Vec::new();
        }
        // Union-find over term indices.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut by_var: BTreeMap<VarId, usize> = BTreeMap::new();
        for (i, term) in self.terms.iter().enumerate() {
            for v in term.variables() {
                match by_var.get(&v) {
                    Some(&j) => {
                        let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                        parent[a] = b;
                    }
                    None => {
                        by_var.insert(v, i);
                    }
                }
            }
        }
        let mut groups: BTreeMap<usize, Vec<Assignment>> = BTreeMap::new();
        for (i, term) in self.terms.iter().enumerate() {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(term.clone());
        }
        groups.into_values().map(DnfEvent::new).collect()
    }
}

impl FromIterator<Assignment> for DnfEvent {
    fn from_iter<T: IntoIterator<Item = Assignment>>(iter: T) -> Self {
        DnfEvent::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ProbabilitySpace {
        let mut s = ProbabilitySpace::new();
        s.add_variable(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap(); // var 0
        s.add_variable(vec![0.5, 0.5]).unwrap(); // var 1
        s.add_variable(vec![0.25, 0.25, 0.5]).unwrap(); // var 2
        s
    }

    #[test]
    fn probability_space_validation() {
        let mut s = ProbabilitySpace::new();
        assert!(s.add_variable(vec![]).is_err());
        assert!(s.add_variable(vec![0.5, 0.4]).is_err());
        assert!(s.add_variable(vec![0.0, 1.0]).is_err());
        assert!(s.add_variable(vec![f64::NAN, 1.0]).is_err());
        assert!(s.add_bool_variable(1.0).is_err());
        let v = s.add_bool_variable(0.25).unwrap();
        assert_eq!(s.num_alternatives(v).unwrap(), 2);
        assert!((s.probability(v, 1).unwrap() - 0.75).abs() < 1e-12);
        assert!(s.probability(v, 2).is_err());
        assert!(s.probability(99, 0).is_err());
        assert!(s.num_alternatives(99).is_err());
    }

    #[test]
    fn assignment_weight_and_consistency() {
        let s = space();
        let a = Assignment::new([(0, 0), (1, 1)]).unwrap();
        assert!((a.weight(&s).unwrap() - (2.0 / 3.0) * 0.5).abs() < 1e-12);
        assert!((Assignment::always().weight(&s).unwrap() - 1.0).abs() < 1e-12);
        let b = Assignment::new([(1, 1), (2, 0)]).unwrap();
        let c = Assignment::new([(1, 0)]).unwrap();
        assert!(a.consistent_with(&b));
        assert!(!a.consistent_with(&c));
        assert_eq!(a.merge(&b).unwrap().len(), 3);
        assert!(a.merge(&c).is_none());
        assert!(Assignment::new([(0, 0), (0, 1)]).is_err());
        assert!(Assignment::new([(0, 0), (0, 0)]).is_ok());
    }

    #[test]
    fn assignment_without_removes_a_variable() {
        let a = Assignment::new([(0, 1), (2, 0)]).unwrap();
        let (alt, rest) = a.without(0);
        assert_eq!(alt, Some(1));
        assert_eq!(rest.len(), 1);
        let (alt, rest) = a.without(7);
        assert_eq!(alt, None);
        assert_eq!(rest, a);
    }

    #[test]
    fn dnf_weights_and_variables() {
        let s = space();
        let f = DnfEvent::new([
            Assignment::new([(0, 0)]).unwrap(),
            Assignment::new([(1, 0), (2, 1)]).unwrap(),
        ]);
        assert_eq!(f.num_terms(), 2);
        assert_eq!(f.variables(), vec![0, 1, 2]);
        let m = f.total_term_weight(&s).unwrap();
        assert!((m - (2.0 / 3.0 + 0.5 * 0.25)).abs() < 1e-12);
        assert!(!f.is_never());
        assert!(!f.is_certain());
        assert!(DnfEvent::never().is_never());
        assert!(DnfEvent::new([Assignment::always()]).is_certain());
    }

    #[test]
    fn satisfied_by_total_assignment() {
        let f = DnfEvent::new([
            Assignment::new([(0, 0)]).unwrap(),
            Assignment::new([(1, 1)]).unwrap(),
        ]);
        let world = Assignment::new([(0, 1), (1, 1), (2, 2)]).unwrap();
        assert!(f.satisfied_by(&world));
        let world = Assignment::new([(0, 1), (1, 0), (2, 2)]).unwrap();
        assert!(!f.satisfied_by(&world));
    }

    #[test]
    fn simplification_removes_duplicates_and_subsumed_terms() {
        let general = Assignment::new([(0, 0)]).unwrap();
        let specific = Assignment::new([(0, 0), (1, 1)]).unwrap();
        let f = DnfEvent::new([
            specific.clone(),
            general.clone(),
            specific.clone(),
            general.clone(),
        ]);
        let s = f.simplified();
        assert_eq!(s.num_terms(), 1);
        assert_eq!(s.terms()[0], general);
    }

    #[test]
    fn independent_components_split_by_shared_variables() {
        let f = DnfEvent::new([
            Assignment::new([(0, 0)]).unwrap(),
            Assignment::new([(0, 1), (1, 0)]).unwrap(),
            Assignment::new([(2, 0)]).unwrap(),
        ]);
        let comps = f.independent_components();
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = comps.iter().map(DnfEvent::num_terms).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
        assert!(DnfEvent::never().independent_components().is_empty());
    }
}
