//! Chernoff-bound bookkeeping for the Karp–Luby estimator (Section 4).
//!
//! With `m` samples over an event of `|F|` terms, the paper derives
//! `Pr[|p̂ − p| ≥ ε·p] ≤ 2·e^{−m·ε²/(3·|F|)}`, which yields the FPRAS sample
//! bound `m = ⌈3·|F|·ln(2/δ)/ε²⌉` and the per-iteration error form
//! `δ′(ε, l) = 2·e^{−l·ε²/3}` (with `l = m/|F|` outer iterations) used by the
//! predicate-approximation algorithm of Figure 3.

use crate::error::{ConfidenceError, Result};

/// Checks that a relative error ε is usable by the bound (`0 < ε < 1`).
pub fn check_epsilon(epsilon: f64) -> Result<()> {
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(ConfidenceError::InvalidParameter(format!(
            "epsilon = {epsilon} must be in (0, 1)"
        )));
    }
    Ok(())
}

/// Checks that an error probability δ is usable (`0 < δ < 1`).
pub fn check_delta(delta: f64) -> Result<()> {
    if !(delta > 0.0 && delta < 1.0) {
        return Err(ConfidenceError::InvalidParameter(format!(
            "delta = {delta} must be in (0, 1)"
        )));
    }
    Ok(())
}

/// The FPRAS sample count `m = ⌈3·|F|·ln(2/δ)/ε²⌉` guaranteeing
/// `Pr[|p̂ − p| ≥ ε·p] ≤ δ` (Proposition 4.2).
pub fn required_samples(epsilon: f64, delta: f64, num_terms: usize) -> Result<usize> {
    check_epsilon(epsilon)?;
    check_delta(delta)?;
    if num_terms == 0 {
        return Err(ConfidenceError::EmptyEvent);
    }
    let m = (3.0 * num_terms as f64 * (2.0 / delta).ln() / (epsilon * epsilon)).ceil();
    Ok(m as usize)
}

/// The error bound `δ_i(ε) = 2·e^{−m·ε²/(3·|F|)}` after `m` samples.
pub fn error_bound(epsilon: f64, samples: usize, num_terms: usize) -> Result<f64> {
    check_epsilon(epsilon)?;
    if num_terms == 0 {
        return Err(ConfidenceError::EmptyEvent);
    }
    Ok(2.0 * (-(samples as f64) * epsilon * epsilon / (3.0 * num_terms as f64)).exp())
}

/// The balanced per-estimator error `δ′(ε, l) = 2·e^{−l·ε²/3}` after `l`
/// outer-loop iterations of the Figure 3 algorithm (each iteration draws
/// `|F_i|` samples for estimator `i`).
pub fn delta_prime(epsilon: f64, iterations: usize) -> Result<f64> {
    check_epsilon(epsilon)?;
    Ok(2.0 * (-(iterations as f64) * epsilon * epsilon / 3.0).exp())
}

/// The number of outer-loop iterations needed so that `δ′(ε, l) ≤ delta`:
/// `l = ⌈3·ln(2/δ)/ε²⌉`.
pub fn required_iterations(epsilon: f64, delta: f64) -> Result<usize> {
    check_epsilon(epsilon)?;
    check_delta(delta)?;
    Ok((3.0 * (2.0 / delta).ln() / (epsilon * epsilon)).ceil() as usize)
}

/// Combines per-value error bounds into a bound for a predicate over `k`
/// values (Lemma 5.1): the sum `Σ δ_i(ε)` in general, or the slightly better
/// `1 − Π (1 − δ_i(ε))` when the values are independently approximated.
pub fn combine_error_bounds(bounds: &[f64], independent: bool) -> f64 {
    if independent {
        1.0 - bounds
            .iter()
            .map(|d| 1.0 - d.clamp(0.0, 1.0))
            .product::<f64>()
    } else {
        bounds.iter().sum::<f64>().min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_bound_matches_the_formula() {
        // |F| = 10, ε = 0.1, δ = 0.05: m = ceil(3*10*ln(40)/0.01) = ceil(11067.1...)
        let m = required_samples(0.1, 0.05, 10).unwrap();
        let expected = (3.0 * 10.0 * (2.0f64 / 0.05).ln() / 0.01).ceil() as usize;
        assert_eq!(m, expected);
        assert!(m > 11_000 && m < 11_100);
    }

    #[test]
    fn error_bound_decreases_with_samples_and_epsilon() {
        let d1 = error_bound(0.1, 1_000, 10).unwrap();
        let d2 = error_bound(0.1, 10_000, 10).unwrap();
        let d3 = error_bound(0.2, 10_000, 10).unwrap();
        assert!(d2 < d1);
        assert!(d3 < d2);
        // With the required m, the bound is at most δ.
        let m = required_samples(0.1, 0.05, 10).unwrap();
        assert!(error_bound(0.1, m, 10).unwrap() <= 0.05 + 1e-12);
    }

    #[test]
    fn delta_prime_matches_error_bound_with_l_batches() {
        // δ'(ε, l) = error_bound(ε, l·|F|, |F|) for any |F|.
        let l = 37;
        for num_terms in [1usize, 5, 20] {
            let a = delta_prime(0.15, l).unwrap();
            let b = error_bound(0.15, l * num_terms, num_terms).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn required_iterations_reach_the_target() {
        let l = required_iterations(0.1, 0.05).unwrap();
        assert!(delta_prime(0.1, l).unwrap() <= 0.05 + 1e-12);
        assert!(delta_prime(0.1, l.saturating_sub(2)).unwrap() > 0.05);
    }

    #[test]
    fn parameter_validation() {
        assert!(required_samples(0.0, 0.05, 10).is_err());
        assert!(required_samples(1.0, 0.05, 10).is_err());
        assert!(required_samples(0.1, 0.0, 10).is_err());
        assert!(required_samples(0.1, 1.0, 10).is_err());
        assert!(required_samples(0.1, 0.05, 0).is_err());
        assert!(error_bound(0.5, 10, 0).is_err());
        assert!(delta_prime(2.0, 10).is_err());
        assert!(required_iterations(0.1, 1.5).is_err());
    }

    #[test]
    fn combining_bounds() {
        let sum = combine_error_bounds(&[0.01, 0.02, 0.03], false);
        assert!((sum - 0.06).abs() < 1e-12);
        let indep = combine_error_bounds(&[0.01, 0.02, 0.03], true);
        assert!(indep < sum);
        assert!(indep > 0.058);
        // Saturates at 1.
        assert_eq!(combine_error_bounds(&[0.9, 0.9], false), 1.0);
        assert!(combine_error_bounds(&[0.9, 0.9], true) <= 1.0);
        assert_eq!(combine_error_bounds(&[], false), 0.0);
        assert_eq!(combine_error_bounds(&[], true), 0.0);
    }
}
