//! Compiled lineage programs: the DNF events of a whole batch flattened into
//! one shared instruction arena, ready for bit-parallel evaluation.
//!
//! The boxed [`DnfEvent`] representation is convenient for algebraic
//! manipulation (Shannon expansion, simplification, bounds) but terrible for
//! Monte Carlo estimation: every Karp–Luby sample re-walks `Assignment`
//! trees, re-allocates a total assignment, and re-runs binary searches per
//! literal.  [`LineagePrograms::compile`] removes all of that *once per
//! batch*:
//!
//! * every distinct literal `X_v = a` of the batch becomes a **slot** — a
//!   single `u64` cell of the evaluation scratchpad whose bit `j` answers
//!   "does sampled world `j` satisfy this literal?" (64 worlds per word);
//! * every distinct term becomes an **AND-chain instruction**: a `(start,
//!   len)` range into the flat [`term_lits`] slot buffer.  Terms shared by
//!   several events of the batch (common sub-events, e.g. lineages that
//!   overlap after a projection) are compiled once and referenced by id;
//! * every event becomes a **program**: its term ids in original DNF order
//!   (the Karp–Luby estimator depends on the order) plus the cumulative term
//!   weights, the total weight `M`, and the sampling plan of the variables it
//!   mentions — per-variable cumulative fixed-point thresholds, so drawing an
//!   alternative is one `u64` comparison chain with no floating point.
//!
//! Evaluating a program over a block of 64 sampled worlds is then a linear
//! scan of the instruction buffer — one `AND` per literal, one `OR` per term
//! — with no allocation and no pointer chasing; [`crate::bitworld`] provides
//! the sampling kernels.  The batch also memoises **exact** probabilities
//! ([`LineagePrograms::exact_probabilities`]): the Shannon-expansion triggers
//! of the exact estimator run at most once per compiled batch, so a served
//! (warm) request pays lookup only.
//!
//! [`term_lits`]: LineagePrograms::num_distinct_terms

use crate::error::{ConfidenceError, Result};
use crate::event::{DnfEvent, ProbabilitySpace, VarId};
use crate::{cost, dnnf, exact};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Marker for "this alternative is mentioned by no literal of the batch" in
/// the per-alternative slot table.
pub(crate) const SLOT_NONE: u32 = u32::MAX;

/// The sampling plan of one variable used by the batch.
#[derive(Clone, Copy, Debug)]
pub(crate) struct VarPlan {
    /// Range `alt_start .. alt_start + alt_len` into
    /// [`LineagePrograms::alt_thresholds`] / [`LineagePrograms::alt_slots`].
    pub alt_start: u32,
    /// Number of alternatives of the variable.
    pub alt_len: u32,
}

/// One compiled event: a view descriptor into the shared arena.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EventProgram {
    /// Range into `event_terms` / `event_cum` (terms in original DNF order).
    pub term_start: u32,
    /// Number of terms `|F|` (0 for the impossible event).
    pub term_len: u32,
    /// Range into `event_vars` (local ids of the variables mentioned).
    pub var_start: u32,
    /// Number of distinct variables mentioned.
    pub var_len: u32,
    /// Total term weight `M = Σ_f p_f`.
    pub total_weight: f64,
    /// `Some(p)` when the probability is known without sampling (no terms →
    /// 0, an always-true term → 1).
    pub trivial: Option<f64>,
}

/// A batch of DNF events compiled into flat programs over one shared arena.
///
/// The compiled form is immutable and self-contained: it retains the source
/// events (for the exact estimator and for scalar reference runs) and a clone
/// of the probability space, so a single `Arc<LineagePrograms>` is everything
/// an estimator needs.  Construction cost is linear in the total literal
/// count; per-sample cost afterwards is branch-free bit arithmetic.
pub struct LineagePrograms {
    /// The source events, parallel to the programs.
    events: Vec<DnfEvent>,
    /// The probability space the batch was compiled against.
    space: ProbabilitySpace,

    // ---- shared arena ------------------------------------------------------
    /// Slot id → local variable id (for forced-assignment bookkeeping).
    pub(crate) slot_var: Vec<u32>,
    /// Local variable id → sampling plan.
    pub(crate) vars: Vec<VarPlan>,
    /// Per variable, per alternative: cumulative probability as a 64-bit
    /// fixed-point threshold (`alt = first k with draw < threshold[k]`); the
    /// last alternative's threshold is saturated to `u64::MAX`.
    pub(crate) alt_thresholds: Vec<u64>,
    /// Per variable, per alternative: the slot holding that literal's world
    /// mask, or [`SLOT_NONE`] when no literal of the batch mentions it.
    pub(crate) alt_slots: Vec<u32>,
    /// Flat AND-chain instruction buffer: literal slots, term by term.
    pub(crate) term_lits: Vec<u32>,
    /// Distinct term id → `(start, len)` into `term_lits`.
    pub(crate) terms: Vec<(u32, u32)>,
    /// Flat per-event term-id lists (original DNF order).
    pub(crate) event_terms: Vec<u32>,
    /// Cumulative term weights, parallel to `event_terms`.
    pub(crate) event_cum: Vec<f64>,
    /// Flat per-event variable lists (local ids, ascending).
    pub(crate) event_vars: Vec<u32>,
    /// The per-event programs.
    pub(crate) programs: Vec<EventProgram>,

    /// Warm exact-confidence state: Shannon expansion runs at most once per
    /// batch, after which exact requests are lookups.
    exact_cache: OnceLock<std::result::Result<Vec<f64>, ConfidenceError>>,
    /// Per-event structural d-DNNF size estimates (cost-model input),
    /// computed lazily and memoised.
    dnnf_estimates: Vec<OnceLock<u64>>,
    /// Per-event d-DNNF backend outcomes: `Some((probability, nodes))` when
    /// compilation fit the node budget, `None` when it aborted.  Sticky —
    /// the attempt runs at most once per compiled batch, so it rides the
    /// same content-addressed caching as the programs themselves.
    dnnf_results: Vec<OnceLock<Option<(f64, u32)>>>,
    /// Memoised content fingerprint of the arena (see
    /// [`LineagePrograms::fingerprint`]).
    content_fingerprint: OnceLock<u64>,
}

impl std::fmt::Debug for LineagePrograms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineagePrograms")
            .field("events", &self.events.len())
            .field("slots", &self.slot_var.len())
            .field("vars", &self.vars.len())
            .field("distinct_terms", &self.terms.len())
            .field("exact_cached", &self.exact_cache.get().is_some())
            .finish()
    }
}

impl LineagePrograms {
    /// Compiles a batch of events against a probability space.
    ///
    /// Fails if any event mentions a variable or alternative the space does
    /// not declare (the same validation the scalar estimators perform, done
    /// once here instead of per construction).
    pub fn compile(events: Vec<DnfEvent>, space: &ProbabilitySpace) -> Result<Self> {
        let mut var_local: HashMap<VarId, u32> = HashMap::new();
        let mut vars: Vec<VarPlan> = Vec::new();
        let mut var_global: Vec<VarId> = Vec::new();
        let mut alt_thresholds: Vec<u64> = Vec::new();
        let mut alt_slots: Vec<u32> = Vec::new();
        let mut slot_var: Vec<u32> = Vec::new();
        let mut terms: Vec<(u32, u32)> = Vec::new();
        let mut term_weights: Vec<f64> = Vec::new();
        let mut term_lits: Vec<u32> = Vec::new();
        let mut term_ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut event_terms: Vec<u32> = Vec::new();
        let mut event_cum: Vec<f64> = Vec::new();
        let mut event_vars: Vec<u32> = Vec::new();
        let mut programs: Vec<EventProgram> = Vec::with_capacity(events.len());

        for event in &events {
            let term_start = event_terms.len() as u32;
            let var_start = event_vars.len() as u32;
            let trivial = if event.is_never() {
                Some(0.0)
            } else if event.is_certain() {
                Some(1.0)
            } else {
                None
            };

            let mut total_weight = 0.0f64;
            let mut locals: Vec<u32> = Vec::new();
            for term in event.terms() {
                // Intern the variables and literals of the term.
                let mut slots: Vec<u32> = Vec::with_capacity(term.len());
                for (var, alt) in term.iter() {
                    let local = match var_local.get(&var) {
                        Some(&l) => l,
                        None => {
                            let dist = space.distribution(var)?;
                            let l = vars.len() as u32;
                            let alt_start = alt_thresholds.len() as u32;
                            let mut acc = 0.0f64;
                            for &p in dist {
                                acc += p;
                                // 64-bit fixed point; the final threshold is
                                // saturated so every draw lands somewhere.
                                let t = (acc * 1.8446744073709552e19).min(u64::MAX as f64);
                                alt_thresholds.push(t as u64);
                                alt_slots.push(SLOT_NONE);
                            }
                            *alt_thresholds.last_mut().expect("non-empty dist") = u64::MAX;
                            vars.push(VarPlan {
                                alt_start,
                                alt_len: dist.len() as u32,
                            });
                            var_global.push(var);
                            var_local.insert(var, l);
                            l
                        }
                    };
                    if alt >= vars[local as usize].alt_len as usize {
                        return Err(ConfidenceError::UnknownAlternative { var, alt });
                    }
                    let cell = vars[local as usize].alt_start as usize + alt;
                    if alt_slots[cell] == SLOT_NONE {
                        alt_slots[cell] = slot_var.len() as u32;
                        slot_var.push(local);
                    }
                    slots.push(alt_slots[cell]);
                    if !locals.contains(&local) {
                        locals.push(local);
                    }
                }
                // Intern the term (AND-chain) itself; identical terms across
                // the batch share one instruction range.
                slots.sort_unstable();
                let term_id = match term_ids.get(&slots) {
                    Some(&id) => id,
                    None => {
                        let id = terms.len() as u32;
                        let start = term_lits.len() as u32;
                        term_lits.extend_from_slice(&slots);
                        terms.push((start, slots.len() as u32));
                        term_weights.push(term.weight(space)?);
                        term_ids.insert(slots, id);
                        id
                    }
                };
                total_weight += term_weights[term_id as usize];
                event_terms.push(term_id);
                event_cum.push(total_weight);
            }
            locals.sort_unstable();
            event_vars.extend_from_slice(&locals);

            programs.push(EventProgram {
                term_start,
                term_len: event.num_terms() as u32,
                var_start,
                var_len: locals.len() as u32,
                total_weight,
                trivial,
            });
        }

        let num_events = events.len();
        Ok(LineagePrograms {
            events,
            space: space.clone(),
            slot_var,
            vars,
            alt_thresholds,
            alt_slots,
            term_lits,
            terms,
            event_terms,
            event_cum,
            event_vars,
            programs,
            exact_cache: OnceLock::new(),
            dnnf_estimates: (0..num_events).map(|_| OnceLock::new()).collect(),
            dnnf_results: (0..num_events).map(|_| OnceLock::new()).collect(),
            content_fingerprint: OnceLock::new(),
        })
    }

    /// Number of compiled events.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// The source events, parallel to the programs.
    pub fn events(&self) -> &[DnfEvent] {
        &self.events
    }

    /// The probability space the batch was compiled against.
    pub fn space(&self) -> &ProbabilitySpace {
        &self.space
    }

    /// Number of literal slots in the shared arena.
    pub fn num_slots(&self) -> usize {
        self.slot_var.len()
    }

    /// Number of distinct variables the batch mentions.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of distinct terms (shared AND-chains) in the arena; at most —
    /// and for batches with overlapping lineages, well below — the sum of
    /// the events' term counts.
    pub fn num_distinct_terms(&self) -> usize {
        self.terms.len()
    }

    /// The number of terms `|F|` of event `index`.
    pub fn num_terms(&self, index: usize) -> usize {
        self.programs[index].term_len as usize
    }

    /// `Some(p)` when event `index` needs no sampling (impossible or
    /// certain).
    pub fn trivial(&self, index: usize) -> Option<f64> {
        self.programs[index].trivial
    }

    /// The total term weight `M` of event `index`.
    pub fn total_weight(&self, index: usize) -> f64 {
        self.programs[index].total_weight
    }

    pub(crate) fn program(&self, index: usize) -> &EventProgram {
        &self.programs[index]
    }

    /// Content fingerprint of the compiled arena: FNV-1a over every flat
    /// buffer (programs, instruction ranges, thresholds, weights), so two
    /// batches fingerprint equal exactly when their compiled content —
    /// events *and* probabilities — is identical.  This is what derives the
    /// canonical per-event sampling streams of shared-sampling engines and
    /// keys their shared block tallies; computed once and memoised.
    pub fn fingerprint(&self) -> u64 {
        *self.content_fingerprint.get_or_init(|| {
            fn mix(mut h: u64, x: u64) -> u64 {
                for b in x.to_le_bytes() {
                    h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            }
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            h = mix(h, self.programs.len() as u64);
            for p in &self.programs {
                h = mix(h, u64::from(p.term_start));
                h = mix(h, u64::from(p.term_len));
                h = mix(h, u64::from(p.var_start));
                h = mix(h, u64::from(p.var_len));
                h = mix(h, p.total_weight.to_bits());
                h = mix(h, p.trivial.map_or(u64::MAX, |t| t.to_bits()));
            }
            for &t in &self.event_terms {
                h = mix(h, u64::from(t));
            }
            for &c in &self.event_cum {
                h = mix(h, c.to_bits());
            }
            for &v in &self.event_vars {
                h = mix(h, u64::from(v));
            }
            for &(start, len) in &self.terms {
                h = mix(h, u64::from(start));
                h = mix(h, u64::from(len));
            }
            for &l in &self.term_lits {
                h = mix(h, u64::from(l));
            }
            for &s in &self.slot_var {
                h = mix(h, u64::from(s));
            }
            for v in &self.vars {
                h = mix(h, u64::from(v.alt_start));
                h = mix(h, u64::from(v.alt_len));
            }
            for &t in &self.alt_thresholds {
                h = mix(h, t);
            }
            for &s in &self.alt_slots {
                h = mix(h, u64::from(s));
            }
            h
        })
    }

    /// Structural d-DNNF circuit-size estimate of event `index` — the
    /// cost-model input ([`cost::estimated_nodes`]) — computed lazily and
    /// memoised per event.
    pub fn dnnf_estimate(&self, index: usize) -> u64 {
        *self.dnnf_estimates[index].get_or_init(|| cost::estimated_nodes(&self.events[index]))
    }

    /// The exact probability of event `index` via the d-DNNF backend, or
    /// `None` when compilation exceeded `budget` nodes.
    ///
    /// The attempt runs at most once per compiled batch and the outcome —
    /// success *or* abort — is memoised next to the programs, so warm
    /// requests pay a lookup.  The budget is engine-configuration, constant
    /// across the batch's lifetime, which keeps the outcome a pure function
    /// of event content and configuration (warm ≡ cold).
    pub fn dnnf_probability(&self, index: usize, budget: u32) -> Option<f64> {
        if let Some(p) = self.trivial(index) {
            return Some(p);
        }
        self.dnnf_results[index]
            .get_or_init(|| {
                dnnf::Dnnf::compile(&self.events[index], &self.space, budget)
                    .and_then(|circuit| {
                        Ok((circuit.wmc(&self.space)?, circuit.node_count() as u32))
                    })
                    .ok()
            })
            .map(|(p, _)| p)
    }

    /// Circuit node count of event `index` when the d-DNNF backend has
    /// compiled it (`None` before the first attempt or after an abort).
    pub fn dnnf_nodes(&self, index: usize) -> Option<u32> {
        self.dnnf_results[index]
            .get()
            .and_then(|r| r.map(|(_, n)| n))
    }

    /// The exact probabilities of all events of the batch, computed by
    /// Shannon expansion **once** and memoised: the warm estimator state of a
    /// served exact-confidence request is this slice.
    pub fn exact_probabilities(&self) -> Result<&[f64]> {
        let cached = self.exact_cache.get_or_init(|| {
            use rayon::prelude::*;
            self.events
                .par_iter()
                .map(|event| exact::probability(event, &self.space))
                .collect::<Result<Vec<f64>>>()
        });
        match cached {
            Ok(probs) => Ok(probs),
            Err(e) => Err(e.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Assignment;

    fn space() -> ProbabilitySpace {
        let mut s = ProbabilitySpace::new();
        s.add_variable(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap(); // 0
        s.add_bool_variable(0.5).unwrap(); // 1
        s.add_variable(vec![0.25, 0.25, 0.5]).unwrap(); // 2
        s
    }

    fn a(pairs: &[(usize, usize)]) -> Assignment {
        Assignment::new(pairs.iter().copied()).unwrap()
    }

    #[test]
    fn shared_terms_are_compiled_once() {
        let s = space();
        let shared = a(&[(0, 0), (1, 0)]);
        let events = vec![
            DnfEvent::new([shared.clone(), a(&[(2, 1)])]),
            DnfEvent::new([a(&[(2, 2)]), shared.clone()]),
            DnfEvent::new([shared]),
        ];
        let programs = LineagePrograms::compile(events, &s).unwrap();
        assert_eq!(programs.len(), 3);
        // 4 distinct literals, 3 distinct terms across 5 term occurrences.
        assert_eq!(programs.num_slots(), 4);
        assert_eq!(programs.num_distinct_terms(), 3);
        assert_eq!(programs.num_terms(0), 2);
        assert_eq!(programs.num_terms(2), 1);
        assert_eq!(programs.num_vars(), 3);
        assert!(format!("{programs:?}").contains("distinct_terms"));
    }

    #[test]
    fn weights_and_trivial_flags_match_the_events() {
        let s = space();
        let events = vec![
            DnfEvent::never(),
            DnfEvent::new([Assignment::always()]),
            DnfEvent::new([a(&[(0, 0)]), a(&[(1, 1)])]),
        ];
        let programs = LineagePrograms::compile(events.clone(), &s).unwrap();
        assert_eq!(programs.trivial(0), Some(0.0));
        assert_eq!(programs.trivial(1), Some(1.0));
        assert_eq!(programs.trivial(2), None);
        let m = events[2].total_term_weight(&s).unwrap();
        assert!((programs.total_weight(2) - m).abs() < 1e-12);
        assert_eq!(programs.events(), events.as_slice());
        assert!(!programs.is_empty());
    }

    #[test]
    fn thresholds_are_cumulative_and_saturated() {
        let s = space();
        let events = vec![DnfEvent::new([a(&[(2, 0)])])];
        let programs = LineagePrograms::compile(events, &s).unwrap();
        let plan = programs.vars[0];
        assert_eq!(plan.alt_len, 3);
        let t: Vec<u64> = programs.alt_thresholds
            [plan.alt_start as usize..(plan.alt_start + plan.alt_len) as usize]
            .to_vec();
        assert!(t[0] < t[1] && t[1] < t[2]);
        assert_eq!(t[2], u64::MAX);
        assert!((t[0] as f64 / u64::MAX as f64 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn exact_probabilities_are_memoised() {
        let s = space();
        let events = vec![
            DnfEvent::new([a(&[(0, 0)]), a(&[(0, 1)])]),
            DnfEvent::new([a(&[(1, 0), (2, 0)])]),
        ];
        let programs = LineagePrograms::compile(events.clone(), &s).unwrap();
        let first = programs.exact_probabilities().unwrap();
        assert!((first[0] - 1.0).abs() < 1e-12);
        let expected = exact::probability(&events[1], &s).unwrap();
        assert!((first[1] - expected).abs() < 1e-12);
        // Second call returns the same memoised slice.
        let again = programs.exact_probabilities().unwrap();
        assert_eq!(first.as_ptr(), again.as_ptr());
    }

    #[test]
    fn fingerprints_are_content_addressed() {
        let s = space();
        let batch = vec![DnfEvent::new([a(&[(0, 0)]), a(&[(1, 1)])])];
        let p1 = LineagePrograms::compile(batch.clone(), &s).unwrap();
        let p2 = LineagePrograms::compile(batch.clone(), &s).unwrap();
        // Identical content → identical fingerprint, across instances.
        assert_eq!(p1.fingerprint(), p2.fingerprint());
        let p3 = LineagePrograms::compile(vec![DnfEvent::new([a(&[(0, 1)])])], &s).unwrap();
        assert_ne!(p1.fingerprint(), p3.fingerprint());
        // Same structure over different probabilities must not collide: the
        // thresholds and weights are part of the content.
        let mut s2 = ProbabilitySpace::new();
        s2.add_variable(vec![0.5, 0.5]).unwrap();
        s2.add_bool_variable(0.5).unwrap();
        let p4 = LineagePrograms::compile(batch, &s2).unwrap();
        assert_ne!(p1.fingerprint(), p4.fingerprint());
    }

    #[test]
    fn dnnf_outcomes_are_memoised_next_to_the_programs() {
        let s = space();
        let events = vec![
            DnfEvent::new([a(&[(0, 0)]), a(&[(1, 1)])]),
            DnfEvent::never(),
        ];
        let programs = LineagePrograms::compile(events.clone(), &s).unwrap();
        assert!(programs.dnnf_estimate(0) > 2);
        assert_eq!(programs.dnnf_nodes(0), None, "no attempt yet");
        let p = programs.dnnf_probability(0, 1 << 10).unwrap();
        let expected = exact::probability(&events[0], &s).unwrap();
        assert!((p - expected).abs() < 1e-12);
        assert!(programs.dnnf_nodes(0).unwrap() > 0);
        // Trivial events bypass compilation entirely.
        assert_eq!(programs.dnnf_probability(1, 1 << 10), Some(0.0));
        assert_eq!(programs.dnnf_nodes(1), None);
    }

    #[test]
    fn aborted_dnnf_attempts_are_sticky() {
        let s = space();
        let events = vec![DnfEvent::new([
            a(&[(0, 0), (1, 0)]),
            a(&[(1, 1), (2, 0)]),
            a(&[(0, 1), (2, 2)]),
        ])];
        let programs = LineagePrograms::compile(events, &s).unwrap();
        assert_eq!(programs.dnnf_probability(0, 2), None, "budget 2 must abort");
        // The abort is memoised: a later, larger budget does not re-attempt
        // (the budget is engine-constant in practice; stickiness keeps the
        // outcome content-deterministic).
        assert_eq!(programs.dnnf_probability(0, 1 << 20), None);
        assert_eq!(programs.dnnf_nodes(0), None);
    }

    #[test]
    fn unknown_variables_and_alternatives_fail_compilation() {
        let s = space();
        let unknown_var = DnfEvent::new([a(&[(9, 0)])]);
        assert!(LineagePrograms::compile(vec![unknown_var], &s).is_err());
        let unknown_alt = DnfEvent::new([a(&[(1, 5)])]);
        assert!(LineagePrograms::compile(vec![unknown_alt], &s).is_err());
    }
}
