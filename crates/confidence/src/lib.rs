//! # Confidence computation: exact and approximate
//!
//! Computing the confidence of a tuple represented in a U-relational
//! database means computing the probability of a DNF event — a disjunction of
//! partial assignments of independent discrete random variables (Section 4 of
//! Koch, PODS 2008).  The problem is #P-complete (Theorem 3.4), so this crate
//! offers both exact methods and the Karp–Luby FPRAS:
//!
//! * the event model — [`ProbabilitySpace`], [`Assignment`] (partial
//!   functions `Var → Dom`) and [`DnfEvent`].
//! * [`exact`] — world enumeration, inclusion–exclusion and Shannon
//!   expansion with memoisation/independence factorisation.
//! * [`KarpLubyEstimator`] — the unbiased estimator of Definition 4.1.
//! * [`chernoff`] — the sample-size bounds of Section 4 and the δ′(ε, l)
//!   form used by the predicate-approximation algorithm.
//! * [`approximate_confidence`] — the (ε, δ)-FPRAS of Proposition 4.2.
//! * [`IncrementalEstimator`] — anytime estimation, the building block of the
//!   Figure 3 algorithm in the `approx` crate.
//! * [`bounds`] — exact marginal-product / union bounds per event, refined
//!   by one round of inclusion–exclusion (degree-two Bonferroni lower bound,
//!   Hunter–Worsley spanning-tree upper bound): the sampling-free
//!   candidate-pruning primitive of the engine's σ̂ operators.
//! * [`compile`] — [`LineagePrograms`]: a batch of events flattened into
//!   shared flat instruction buffers over one arena (deduplicated literal
//!   slots and AND-chain terms, fixed-point sampling thresholds, memoised
//!   exact probabilities) — compiled once, evaluated allocation-free.
//! * [`bitworld`] — bit-parallel Monte Carlo over compiled programs:
//!   [`BitKarpLuby`] decides **64 sampled worlds per word** (one AND/OR per
//!   instruction), with [`bitworld::bernoulli_block`] drawing 64 Bernoulli
//!   lanes from ~7 words of randomness.
//! * [`dnnf`] — smoothed d-DNNF knowledge compilation (Shannon expansion on
//!   a min-fill order, hash-consing, hard node budget with
//!   abort-and-fallback) plus linear-time weighted model counting: the
//!   exact, seed-independent backend for moderate-width events.
//! * [`cost`] — the per-event compile-vs-sample decision ([`Backend`]):
//!   a structural circuit-size estimate against the hard node budget and
//!   the Chernoff-implied sample bill.
//! * [`estimator`] — the unified [`ConfidenceEstimator`] layer: exact, FPRAS
//!   and fixed-batch incremental estimation behind one trait that evaluates
//!   *batches* of events in parallel (rayon), deterministically under a
//!   fixed seed via per-event sub-RNGs; the `estimate_compiled*` methods run
//!   the bit-parallel kernels over a [`LineagePrograms`] batch.
//!
//! ```
//! use confidence::{Assignment, DnfEvent, ProbabilitySpace, exact};
//!
//! // Pr[coin = fair ∧ two heads  ∨  coin = 2headed] = 1/2  (Example 2.2).
//! let mut space = ProbabilitySpace::new();
//! let c = space.add_variable(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap();
//! let t1 = space.add_variable(vec![0.5, 0.5]).unwrap();
//! let t2 = space.add_variable(vec![0.5, 0.5]).unwrap();
//! let event = DnfEvent::new([
//!     Assignment::new([(c, 0), (t1, 0), (t2, 0)]).unwrap(),
//!     Assignment::new([(c, 1)]).unwrap(),
//! ]);
//! assert!((exact::probability(&event, &space).unwrap() - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive;
pub mod bitworld;
pub mod bounds;
pub mod chernoff;
pub mod compile;
pub mod cost;
pub mod dnnf;
mod error;
pub mod estimator;
mod event;
pub mod exact;
mod fpras;
mod karp_luby;

pub use adaptive::IncrementalEstimator;
pub use bitworld::BitKarpLuby;
pub use bounds::{
    event_bounds, event_bounds_first_order, event_bounds_with_limit, EventBounds,
    DEFAULT_PAIRWISE_TERM_LIMIT, DEFAULT_TRIPLE_TERM_LIMIT,
};
pub use compile::LineagePrograms;
pub use cost::Backend;
pub use dnnf::Dnnf;
pub use error::{ConfidenceError, Result};
pub use estimator::{
    event_seed, BatchedIncrementalEstimator, ConfidenceEstimator, EventEstimate, ExactEstimator,
    FprasEstimator,
};
pub use event::{AltId, Assignment, DnfEvent, ProbabilitySpace, VarId, DISTRIBUTION_TOLERANCE};
pub use fpras::{approximate_confidence, ConfidenceEstimate, FprasParams};
pub use karp_luby::KarpLubyEstimator;
