//! The Karp–Luby Monte Carlo estimator for the probability of a DNF event
//! (Section 4, Definition 4.1).

use crate::error::{ConfidenceError, Result};
use crate::event::{Assignment, DnfEvent, ProbabilitySpace, VarId};
use rand::Rng;

/// The Karp–Luby estimator for a fixed event over a fixed probability space.
///
/// Each call to [`sample`](KarpLubyEstimator::sample) draws one Bernoulli
/// variable `X_i` with `E[X_i] = p / M`, where `p` is the event probability
/// and `M` the total term weight; the estimate after `m` samples is
/// `p̂ = X · M / m` with `X = Σ X_i`.
#[derive(Clone, Debug)]
pub struct KarpLubyEstimator {
    event: DnfEvent,
    space: ProbabilitySpace,
    /// Cumulative term weights, used to pick a term with probability `p_f/M`.
    cumulative_weights: Vec<f64>,
    /// Total term weight `M = Σ_f p_f`.
    total_weight: f64,
    /// Variables mentioned anywhere in the event (only these matter for the
    /// consistency check of step 3).
    variables: Vec<VarId>,
}

impl KarpLubyEstimator {
    /// Prepares an estimator; fails on an empty event (its probability is 0
    /// and there is nothing to sample) or on undeclared variables.
    pub fn new(event: DnfEvent, space: ProbabilitySpace) -> Result<Self> {
        if event.is_never() {
            return Err(ConfidenceError::EmptyEvent);
        }
        let mut cumulative_weights = Vec::with_capacity(event.num_terms());
        let mut total_weight = 0.0;
        for term in event.terms() {
            total_weight += term.weight(&space)?;
            cumulative_weights.push(total_weight);
        }
        let variables = event.variables();
        // Validate every variable once so sampling cannot fail later.
        for &v in &variables {
            space.num_alternatives(v)?;
        }
        Ok(KarpLubyEstimator {
            event,
            space,
            cumulative_weights,
            total_weight,
            variables,
        })
    }

    /// The total term weight `M`.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The number of terms `|F|`.
    pub fn num_terms(&self) -> usize {
        self.event.num_terms()
    }

    /// The event being estimated.
    pub fn event(&self) -> &DnfEvent {
        &self.event
    }

    /// Draws one Karp–Luby sample (Definition 4.1): returns 1 if the chosen
    /// term is the lowest-index term consistent with the sampled world,
    /// otherwise 0.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        // Step 1: choose a term f with probability p_f / M.
        let target = rng.gen_range(0.0..self.total_weight);
        let chosen = match self.cumulative_weights.iter().position(|&w| target < w) {
            Some(i) => i,
            // Floating-point edge: fall back to the last term.
            None => self.cumulative_weights.len() - 1,
        };
        let chosen_term = &self.event.terms()[chosen];

        // Step 2: extend f to a total assignment f* over the mentioned
        // variables, sampling each unconstrained variable from W.
        let mut pairs: Vec<(VarId, usize)> = Vec::with_capacity(self.variables.len());
        for &v in &self.variables {
            let alt = match chosen_term.get(v) {
                Some(a) => a,
                None => {
                    let dist = self
                        .space
                        .distribution(v)
                        .expect("variables validated in new()");
                    sample_alternative(dist, rng)
                }
            };
            pairs.push((v, alt));
        }
        let world = Assignment::new(pairs).expect("each variable assigned once");

        // Step 3: is the chosen term the lowest-index term consistent with
        // the sampled world?
        for (i, term) in self.event.terms().iter().enumerate() {
            if term.satisfied_by(&world) {
                return u32::from(i == chosen);
            }
        }
        // The chosen term is always consistent with the world built from it,
        // so this is unreachable; returning 0 keeps the estimator safe anyway.
        0
    }

    /// Draws `m` samples and returns the estimate `p̂ = X · M / m`.
    pub fn estimate<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Result<f64> {
        if m == 0 {
            return Err(ConfidenceError::InvalidParameter(
                "the Karp-Luby estimate needs at least one sample".into(),
            ));
        }
        let mut x: u64 = 0;
        for _ in 0..m {
            x += u64::from(self.sample(rng));
        }
        Ok(x as f64 * self.total_weight / m as f64)
    }
}

/// Samples an alternative index from a distribution given as a probability
/// slice.
fn sample_alternative<R: Rng + ?Sized>(dist: &[f64], rng: &mut R) -> usize {
    let target: f64 = rng.gen_range(0.0..1.0);
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if target < acc {
            return i;
        }
    }
    dist.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn coin_setup() -> (DnfEvent, ProbabilitySpace) {
        let mut s = ProbabilitySpace::new();
        let c = s.add_variable(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap();
        let t1 = s.add_variable(vec![0.5, 0.5]).unwrap();
        let t2 = s.add_variable(vec![0.5, 0.5]).unwrap();
        let f = DnfEvent::new([
            Assignment::new([(c, 0), (t1, 0), (t2, 0)]).unwrap(),
            Assignment::new([(c, 1)]).unwrap(),
        ]);
        (f, s)
    }

    #[test]
    fn rejects_empty_events_and_zero_samples() {
        let (_, s) = coin_setup();
        assert!(matches!(
            KarpLubyEstimator::new(DnfEvent::never(), s.clone()),
            Err(ConfidenceError::EmptyEvent)
        ));
        let (f, s) = coin_setup();
        let est = KarpLubyEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(est.estimate(0, &mut rng).is_err());
    }

    #[test]
    fn total_weight_is_sum_of_term_weights() {
        let (f, s) = coin_setup();
        let est = KarpLubyEstimator::new(f, s).unwrap();
        let expected = 2.0 / 3.0 * 0.25 + 1.0 / 3.0;
        assert!((est.total_weight() - expected).abs() < 1e-12);
        assert_eq!(est.num_terms(), 2);
    }

    #[test]
    fn estimate_converges_to_the_exact_probability() {
        let (f, s) = coin_setup();
        let exact_p = exact::probability(&f, &s).unwrap();
        let est = KarpLubyEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let p_hat = est.estimate(20_000, &mut rng).unwrap();
        assert!(
            (p_hat - exact_p).abs() < 0.02,
            "estimate {p_hat} too far from exact {exact_p}"
        );
    }

    #[test]
    fn estimator_is_unbiased_within_tolerance_for_overlapping_terms() {
        // Overlapping terms are where naive averaging of term weights would
        // overestimate; Karp-Luby's coverage trick corrects for it.
        let mut s = ProbabilitySpace::new();
        let x = s.add_bool_variable(0.5).unwrap();
        let y = s.add_bool_variable(0.5).unwrap();
        let f = DnfEvent::new([
            Assignment::new([(x, 0)]).unwrap(),
            Assignment::new([(y, 0)]).unwrap(),
        ]);
        let exact_p = exact::probability(&f, &s).unwrap(); // 0.75
        let est = KarpLubyEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let p_hat = est.estimate(40_000, &mut rng).unwrap();
        assert!(
            (p_hat - exact_p).abs() < 0.015,
            "estimate {p_hat} vs {exact_p}"
        );
    }

    #[test]
    fn certain_events_estimate_to_one() {
        let (_, s) = coin_setup();
        let f = DnfEvent::new([Assignment::always()]);
        let est = KarpLubyEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p_hat = est.estimate(100, &mut rng).unwrap();
        assert!((p_hat - 1.0).abs() < 1e-12);
    }

    #[test]
    fn samples_are_zero_or_one() {
        let (f, s) = coin_setup();
        let est = KarpLubyEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..200 {
            let x = est.sample(&mut rng);
            assert!(x == 0 || x == 1);
        }
    }

    #[test]
    fn deterministic_under_a_fixed_seed() {
        let (f, s) = coin_setup();
        let est = KarpLubyEstimator::new(f, s).unwrap();
        let mut r1 = ChaCha8Rng::seed_from_u64(1234);
        let mut r2 = ChaCha8Rng::seed_from_u64(1234);
        assert_eq!(
            est.estimate(500, &mut r1).unwrap(),
            est.estimate(500, &mut r2).unwrap()
        );
    }
}
