//! Exact confidence computation.
//!
//! Computing the probability of a DNF event over independent discrete
//! variables is #P-complete (Theorem 3.4 via [10, 7]), so every method here
//! is exponential in the worst case.  Three methods are provided:
//!
//! * [`by_enumeration`] — iterate over all total assignments of the mentioned
//!   variables; the paper's semantics spelled out, exponential in the number
//!   of variables.
//! * [`by_inclusion_exclusion`] — sum over subsets of terms, exponential in
//!   the number of terms `|F|`.
//! * [`by_shannon_expansion`] — Shannon expansion on one variable at a time
//!   with memoisation and decomposition into independent components; the
//!   practical exact method and the default [`probability`].

use crate::error::{ConfidenceError, Result};
use crate::event::{Assignment, DnfEvent, ProbabilitySpace, VarId};
use std::collections::HashMap;

/// Default limit on the number of total assignments [`by_enumeration`] will
/// touch.
pub const DEFAULT_ENUMERATION_LIMIT: u128 = 1 << 22;

/// Default limit on the number of terms [`by_inclusion_exclusion`] accepts
/// (it sums over `2^|F| − 1` subsets).
pub const DEFAULT_INCLUSION_EXCLUSION_LIMIT: usize = 24;

/// Exact probability of the event by enumerating all total assignments of
/// the variables the event mentions.
pub fn by_enumeration(event: &DnfEvent, space: &ProbabilitySpace, limit: u128) -> Result<f64> {
    if event.is_never() {
        return Ok(0.0);
    }
    let vars = event.variables();
    let count = space.assignment_count(&vars)?;
    if count > limit {
        return Err(ConfidenceError::TooLarge {
            what: format!("enumeration over {count} assignments"),
            limit,
        });
    }
    // Depth-first enumeration without materialising the assignment list.
    fn recurse(
        vars: &[VarId],
        space: &ProbabilitySpace,
        event: &DnfEvent,
        partial: &mut Vec<(VarId, usize)>,
        weight: f64,
    ) -> Result<f64> {
        match vars.split_first() {
            None => {
                let total = Assignment::new(partial.iter().copied())
                    .expect("enumeration never assigns a variable twice");
                Ok(if event.satisfied_by(&total) {
                    weight
                } else {
                    0.0
                })
            }
            Some((&v, rest)) => {
                let mut acc = 0.0;
                for alt in 0..space.num_alternatives(v)? {
                    let p = space.probability(v, alt)?;
                    partial.push((v, alt));
                    acc += recurse(rest, space, event, partial, weight * p)?;
                    partial.pop();
                }
                Ok(acc)
            }
        }
    }
    let mut partial = Vec::with_capacity(vars.len());
    recurse(&vars, space, event, &mut partial, 1.0)
}

/// Exact probability by inclusion–exclusion over the terms:
/// `Pr[⋃ f_i] = Σ_{∅ ≠ S ⊆ F} (−1)^{|S|+1} · Pr[⋀ S]`, where the conjunction
/// of inconsistent terms has probability 0.
pub fn by_inclusion_exclusion(
    event: &DnfEvent,
    space: &ProbabilitySpace,
    max_terms: usize,
) -> Result<f64> {
    let event = event.simplified();
    let n = event.num_terms();
    if n == 0 {
        return Ok(0.0);
    }
    if n > max_terms {
        return Err(ConfidenceError::TooLarge {
            what: format!("inclusion-exclusion over {n} terms"),
            limit: max_terms as u128,
        });
    }
    let terms = event.terms();
    let mut total = 0.0;
    for mask in 1u64..(1u64 << n) {
        let mut merged = Assignment::always();
        let mut consistent = true;
        for (i, term) in terms.iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            match merged.merge(term) {
                Some(m) => merged = m,
                None => {
                    consistent = false;
                    break;
                }
            }
        }
        if !consistent {
            continue;
        }
        let sign = if mask.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        total += sign * merged.weight(space)?;
    }
    Ok(total.clamp(0.0, 1.0))
}

/// Exact probability by Shannon expansion with memoisation and independent
/// component factorisation.  This is the default exact method.
pub fn by_shannon_expansion(event: &DnfEvent, space: &ProbabilitySpace) -> Result<f64> {
    let mut memo: HashMap<Vec<Assignment>, f64> = HashMap::new();
    shannon(&event.simplified(), space, &mut memo)
}

/// Exact probability using the default method ([`by_shannon_expansion`]).
pub fn probability(event: &DnfEvent, space: &ProbabilitySpace) -> Result<f64> {
    by_shannon_expansion(event, space)
}

fn shannon(
    event: &DnfEvent,
    space: &ProbabilitySpace,
    memo: &mut HashMap<Vec<Assignment>, f64>,
) -> Result<f64> {
    if event.is_never() {
        return Ok(0.0);
    }
    if event.is_certain() {
        return Ok(1.0);
    }

    let key: Vec<Assignment> = {
        let mut terms = event.terms().to_vec();
        terms.sort();
        terms
    };
    if let Some(&p) = memo.get(&key) {
        return Ok(p);
    }

    // Factor into independent components first: they share no variables, so
    // the union's probability is 1 − Π (1 − p_i).
    let components = event.independent_components();
    let p = if components.len() > 1 {
        let mut q = 1.0;
        for c in components {
            q *= 1.0 - shannon(&c, space, memo)?;
        }
        1.0 - q
    } else {
        // Branch on the most frequently mentioned variable.
        let var = most_frequent_variable(event).expect("non-empty, non-certain event");
        let mut acc = 0.0;
        for alt in 0..space.num_alternatives(var)? {
            let p_alt = space.probability(var, alt)?;
            // Condition the DNF on X_var = alt: terms requiring a different
            // alternative disappear; the variable is removed elsewhere.
            let mut restricted = Vec::new();
            for term in event.terms() {
                let (assigned, rest) = term.without(var);
                match assigned {
                    Some(a) if a != alt => continue,
                    _ => restricted.push(rest),
                }
            }
            let sub = DnfEvent::new(restricted).simplified();
            acc += p_alt * shannon(&sub, space, memo)?;
        }
        acc
    };

    memo.insert(key, p);
    Ok(p)
}

fn most_frequent_variable(event: &DnfEvent) -> Option<VarId> {
    let mut counts: HashMap<VarId, usize> = HashMap::new();
    for term in event.terms() {
        for v in term.variables() {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ProbabilitySpace {
        let mut s = ProbabilitySpace::new();
        s.add_variable(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap(); // 0
        s.add_variable(vec![0.5, 0.5]).unwrap(); // 1
        s.add_variable(vec![0.5, 0.5]).unwrap(); // 2
        s.add_variable(vec![0.25, 0.75]).unwrap(); // 3
        s
    }

    fn a(pairs: &[(usize, usize)]) -> Assignment {
        Assignment::new(pairs.iter().copied()).unwrap()
    }

    /// The event of Example 2.2 / Figure 1(b): the picked coin is fair and
    /// both tosses come up heads, OR the coin is double-headed.
    fn coin_event() -> DnfEvent {
        DnfEvent::new([a(&[(0, 0), (1, 0), (2, 0)]), a(&[(0, 1)])])
    }

    #[test]
    fn all_methods_agree_on_the_coin_event() {
        let s = space();
        let f = coin_event();
        let expected = 2.0 / 3.0 * 0.25 + 1.0 / 3.0; // = 1/2
        for p in [
            by_enumeration(&f, &s, DEFAULT_ENUMERATION_LIMIT).unwrap(),
            by_inclusion_exclusion(&f, &s, DEFAULT_INCLUSION_EXCLUSION_LIMIT).unwrap(),
            by_shannon_expansion(&f, &s).unwrap(),
            probability(&f, &s).unwrap(),
        ] {
            assert!((p - expected).abs() < 1e-12, "got {p}, expected {expected}");
        }
    }

    #[test]
    fn trivial_events() {
        let s = space();
        assert_eq!(probability(&DnfEvent::never(), &s).unwrap(), 0.0);
        let certain = DnfEvent::new([Assignment::always()]);
        assert_eq!(probability(&certain, &s).unwrap(), 1.0);
        assert_eq!(by_enumeration(&DnfEvent::never(), &s, 10).unwrap(), 0.0);
        assert_eq!(
            by_inclusion_exclusion(&DnfEvent::never(), &s, 10).unwrap(),
            0.0
        );
    }

    #[test]
    fn single_term_probability_is_its_weight() {
        let s = space();
        let f = DnfEvent::new([a(&[(0, 0), (3, 1)])]);
        let expected = 2.0 / 3.0 * 0.75;
        assert!((probability(&f, &s).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn overlapping_terms_are_not_double_counted() {
        let s = space();
        // X1 = 0  ∨  X2 = 0 : 0.5 + 0.5 − 0.25 = 0.75.
        let f = DnfEvent::new([a(&[(1, 0)]), a(&[(2, 0)])]);
        for p in [
            by_enumeration(&f, &s, 1 << 10).unwrap(),
            by_inclusion_exclusion(&f, &s, 10).unwrap(),
            by_shannon_expansion(&f, &s).unwrap(),
        ] {
            assert!((p - 0.75).abs() < 1e-12);
        }
    }

    #[test]
    fn contradictory_terms_drop_out_of_inclusion_exclusion() {
        let s = space();
        // The two terms are inconsistent, so their conjunction contributes 0.
        let f = DnfEvent::new([a(&[(0, 0)]), a(&[(0, 1)])]);
        let expected = 1.0; // exhaustive alternatives of variable 0
        assert!((by_inclusion_exclusion(&f, &s, 10).unwrap() - expected).abs() < 1e-12);
        assert!((by_shannon_expansion(&f, &s).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn methods_agree_on_random_events() {
        // Small pseudo-random stress test with a fixed pattern (no RNG needed).
        let s = space();
        let mut terms = Vec::new();
        for i in 0..6usize {
            let v1 = i % 4;
            let v2 = (i * 7 + 1) % 4;
            let t = if v1 == v2 {
                a(&[(v1, i % 2)])
            } else {
                a(&[(v1, i % 2), (v2, (i / 2) % 2)])
            };
            terms.push(t);
        }
        let f = DnfEvent::new(terms);
        let p1 = by_enumeration(&f, &s, 1 << 16).unwrap();
        let p2 = by_inclusion_exclusion(&f, &s, 16).unwrap();
        let p3 = by_shannon_expansion(&f, &s).unwrap();
        assert!((p1 - p2).abs() < 1e-10);
        assert!((p1 - p3).abs() < 1e-10);
    }

    #[test]
    fn limits_are_enforced() {
        let s = space();
        let f = coin_event();
        assert!(matches!(
            by_enumeration(&f, &s, 1),
            Err(ConfidenceError::TooLarge { .. })
        ));
        assert!(matches!(
            by_inclusion_exclusion(&f, &s, 1),
            Err(ConfidenceError::TooLarge { .. })
        ));
    }

    #[test]
    fn shannon_handles_many_independent_components_quickly() {
        // 2·n Boolean variables in n independent pair-components; enumeration
        // would need 4^n assignments but factorisation keeps this instant.
        let mut s = ProbabilitySpace::new();
        let mut terms = Vec::new();
        let n = 30;
        for _ in 0..n {
            let x = s.add_bool_variable(0.5).unwrap();
            let y = s.add_bool_variable(0.5).unwrap();
            terms.push(Assignment::new([(x, 0), (y, 0)]).unwrap());
        }
        let f = DnfEvent::new(terms);
        let p = by_shannon_expansion(&f, &s).unwrap();
        let expected = 1.0 - (1.0 - 0.25f64).powi(n);
        assert!((p - expected).abs() < 1e-9);
    }
}
