//! Incremental (anytime) Karp–Luby estimation, bit-parallel.
//!
//! The predicate-approximation algorithm of Figure 3 interleaves estimation
//! and decision making: in each outer-loop iteration it draws `|F_i|` further
//! samples for every approximable value `p̂_i`, then re-checks whether the
//! current estimates already support the predicate.  [`IncrementalEstimator`]
//! provides exactly that interface: an estimator whose sample count can grow
//! batch by batch while keeping the running estimate and its Chernoff error
//! bound available at all times.
//!
//! Since the bit-parallel rewrite the samples come from the
//! [`crate::bitworld`] kernel, which decides `64·W` worlds per pass over the
//! event's compiled program (`W ∈ {1, 2, 4}` words, chosen from the event's
//! term count so wide events amortize the scan).  Because the adaptive
//! driver asks for batches of `|F_i|` samples — often far fewer than a block
//! — the estimator banks the unused lanes of the last drawn block and serves
//! later batches from the bank first, so even fine-grained sampling
//! schedules pay the blockwise price.  (Banked lanes are i.i.d. draws that
//! no stopping decision has looked at, so consuming them later leaves the
//! estimator's distribution unchanged.)
//!
//! Events whose probability is already known exactly — trivial events, and
//! events the d-DNNF backend of [`crate::dnnf`] compiled within budget —
//! short-circuit sampling entirely: their estimate is the exact value, their
//! error bound is 0, and they consume no randomness.

use crate::bitworld::{block_words_for_samples, BitKarpLuby, MAX_BLOCK_WORDS};
use crate::chernoff::{delta_prime, error_bound};
use crate::compile::LineagePrograms;
use crate::error::Result;
use crate::event::{DnfEvent, ProbabilitySpace};
use rand::Rng;
use std::sync::Arc;

/// A Karp–Luby estimator that accumulates samples across calls.
#[derive(Clone, Debug)]
pub struct IncrementalEstimator {
    kernel: Option<BitKarpLuby>,
    /// Exact value for trivial events (empty → 0, certain → 1) and for
    /// events answered exactly by the d-DNNF backend.
    trivial: Option<f64>,
    /// Number of terms `|F_i|` (1 for trivial events so iteration counts stay
    /// meaningful).
    num_terms: usize,
    /// Running sum `X = Σ X_i`.
    successes: u64,
    /// Number of samples drawn so far.
    samples: u64,
    /// Number of completed batches (outer-loop iterations `l`).
    batches: u64,
    /// Success bits of drawn-but-unconsumed lanes of the last block, packed
    /// from word 0 upward.
    banked_bits: [u64; MAX_BLOCK_WORDS],
    /// Number of banked lanes (≤ `64·W`).
    banked_len: u32,
}

impl IncrementalEstimator {
    /// Prepares an incremental estimator for an event, compiling it into a
    /// single-program batch.
    ///
    /// Trivial events (no terms, or a term that is always true) are handled
    /// exactly; they never consume samples and their error bound is 0.
    pub fn new(event: DnfEvent, space: ProbabilitySpace) -> Result<Self> {
        let programs = Arc::new(LineagePrograms::compile(vec![event], &space)?);
        IncrementalEstimator::from_compiled(&programs, 0)
    }

    /// Prepares an incremental estimator over an already compiled program —
    /// the warm path: no event walking, no compilation, no space clone.
    /// The kernel width follows the event's batch size `|F_i|` (the adaptive
    /// driver draws `|F_i|` samples per iteration).
    pub fn from_compiled(programs: &Arc<LineagePrograms>, index: usize) -> Result<Self> {
        let words = block_words_for_samples(programs.num_terms(index));
        IncrementalEstimator::from_compiled_with_width(programs, index, words)
    }

    /// [`from_compiled`](Self::from_compiled) with an explicit kernel width
    /// (`1`, `2` or `4` words).
    pub fn from_compiled_with_width(
        programs: &Arc<LineagePrograms>,
        index: usize,
        words: usize,
    ) -> Result<Self> {
        let trivial = programs.trivial(index);
        let num_terms = programs.num_terms(index).max(1);
        let kernel = if trivial.is_none() {
            Some(BitKarpLuby::new_with_width(programs.clone(), index, words)?)
        } else {
            None
        };
        Ok(IncrementalEstimator {
            kernel,
            trivial,
            num_terms,
            successes: 0,
            samples: 0,
            batches: 0,
            banked_bits: [0; MAX_BLOCK_WORDS],
            banked_len: 0,
        })
    }

    /// Replaces the estimator with the exactly known probability `p` (the
    /// d-DNNF backend's hand-off): sampling stops, the estimate is `p`, and
    /// the error bound drops to 0.  Samples already drawn are discarded —
    /// the exact value supersedes them.
    pub fn resolve_exactly(&mut self, p: f64) {
        self.trivial = Some(p);
        self.kernel = None;
        self.banked_bits = [0; MAX_BLOCK_WORDS];
        self.banked_len = 0;
    }

    /// True if the event's probability is known exactly (trivial event, or
    /// resolved by the exact backend).
    pub fn is_trivial(&self) -> bool {
        self.trivial.is_some()
    }

    /// The number of terms `|F_i|` of the underlying event.
    pub fn num_terms(&self) -> usize {
        self.num_terms
    }

    /// Number of samples drawn so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of completed batches (the paper's outer-loop counter `l`).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Draws one batch of `|F_i|` samples (one outer-loop iteration of
    /// Figure 3).
    pub fn add_batch<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.add_samples(self.num_terms, rng);
        self.batches += 1;
    }

    /// Consumes up to `take` lanes from the bank, returning how many were
    /// served; the bank shifts down as one `64·W`-bit integer.
    fn take_from_bank(&mut self, take: u32) -> u32 {
        let take = take.min(self.banked_len);
        if take == 0 {
            return 0;
        }
        let mut remaining = take;
        for w in 0..MAX_BLOCK_WORDS {
            if remaining == 0 {
                break;
            }
            let in_word = remaining.min(64);
            let mask = if in_word >= 64 {
                !0u64
            } else {
                (1u64 << in_word) - 1
            };
            self.successes += u64::from((self.banked_bits[w] & mask).count_ones());
            remaining -= in_word;
        }
        // Shift the whole bank right by `take` bits across words.
        let word_shift = (take / 64) as usize;
        let bit_shift = take % 64;
        let mut shifted = [0u64; MAX_BLOCK_WORDS];
        for (w, word) in shifted.iter_mut().enumerate() {
            let src = w + word_shift;
            if src < MAX_BLOCK_WORDS {
                *word = self.banked_bits[src] >> bit_shift;
                if bit_shift > 0 && src + 1 < MAX_BLOCK_WORDS {
                    *word |= self.banked_bits[src + 1] << (64 - bit_shift);
                }
            }
        }
        self.banked_bits = shifted;
        self.banked_len -= take;
        take
    }

    /// Draws `n` further samples (bank first, then whole blocks).
    pub fn add_samples<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) {
        let Some(kernel) = &self.kernel else {
            return;
        };
        let lanes = kernel.lanes() as u64;
        let mut remaining = n as u64;
        // Serve from the bank of already-drawn lanes.
        if self.banked_len > 0 && remaining > 0 {
            let take = (self.banked_len as u64).min(remaining) as u32;
            remaining -= u64::from(self.take_from_bank(take));
        }
        let kernel = self.kernel.as_mut().expect("kernel checked above");
        while remaining >= lanes {
            self.successes += u64::from(kernel.sample_block(rng, lanes as u32));
            remaining -= lanes;
        }
        if remaining > 0 {
            // Draw one more block, consume `remaining` lanes, bank the rest.
            let mut bits = [0u64; MAX_BLOCK_WORDS];
            kernel.sample_block_words(rng, &mut bits);
            let block_lanes = kernel.lanes();
            self.banked_bits = bits;
            self.banked_len = block_lanes;
            let consumed = self.take_from_bank(remaining as u32);
            debug_assert_eq!(u64::from(consumed), remaining);
        }
        self.samples += n as u64;
    }

    /// The current estimate `p̂ = X · M / m` (or the exact value for trivial
    /// events; 0 before any sample has been drawn).
    pub fn estimate(&self) -> f64 {
        if let Some(v) = self.trivial {
            return v;
        }
        if self.samples == 0 {
            return 0.0;
        }
        let kernel = self.kernel.as_ref().expect("non-trivial estimator");
        self.successes as f64 * kernel.total_weight() / self.samples as f64
    }

    /// The Chernoff bound `δ_i(ε) = 2·e^{−m·ε²/(3·|F_i|)}` on the probability
    /// that the current estimate misses the true value by a relative error of
    /// ε or more; 0 for trivial events.
    pub fn error_bound(&self, epsilon: f64) -> Result<f64> {
        if self.trivial.is_some() {
            return Ok(0.0);
        }
        error_bound(epsilon, self.samples as usize, self.num_terms)
    }

    /// The balanced form `δ′(ε, l)` of the error bound, driven by the batch
    /// counter instead of the raw sample count; 0 for trivial events.
    pub fn error_bound_by_batches(&self, epsilon: f64) -> Result<f64> {
        if self.trivial.is_some() {
            return Ok(0.0);
        }
        delta_prime(epsilon, self.batches as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Assignment;
    use crate::exact;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (DnfEvent, ProbabilitySpace) {
        let mut s = ProbabilitySpace::new();
        let a = s.add_bool_variable(0.4).unwrap();
        let b = s.add_bool_variable(0.3).unwrap();
        let c = s.add_bool_variable(0.2).unwrap();
        let f = DnfEvent::new([
            Assignment::new([(a, 0)]).unwrap(),
            Assignment::new([(b, 0), (c, 0)]).unwrap(),
        ]);
        (f, s)
    }

    #[test]
    fn trivial_events_are_exact_and_sample_free() {
        let (_, s) = setup();
        let mut never = IncrementalEstimator::new(DnfEvent::never(), s.clone()).unwrap();
        assert!(never.is_trivial());
        assert_eq!(never.estimate(), 0.0);
        assert_eq!(never.error_bound(0.1).unwrap(), 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        never.add_batch(&mut rng);
        assert_eq!(never.samples(), 0);

        let certain = DnfEvent::new([Assignment::always()]);
        let est = IncrementalEstimator::new(certain, s).unwrap();
        assert_eq!(est.estimate(), 1.0);
        assert_eq!(est.error_bound_by_batches(0.1).unwrap(), 0.0);
    }

    #[test]
    fn resolving_exactly_stops_sampling() {
        let (f, s) = setup();
        let exact_p = exact::probability(&f, &s).unwrap();
        let mut est = IncrementalEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        est.add_batch(&mut rng);
        assert!(!est.is_trivial());
        est.resolve_exactly(exact_p);
        assert!(est.is_trivial());
        assert_eq!(est.estimate(), exact_p);
        assert_eq!(est.error_bound(0.2).unwrap(), 0.0);
        let samples = est.samples();
        est.add_batch(&mut rng);
        assert_eq!(est.samples(), samples, "no further sampling after resolve");
    }

    #[test]
    fn batches_accumulate_and_shrink_the_error_bound() {
        let (f, s) = setup();
        let mut est = IncrementalEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(est.estimate(), 0.0);
        est.add_batch(&mut rng);
        let d1 = est.error_bound(0.2).unwrap();
        for _ in 0..50 {
            est.add_batch(&mut rng);
        }
        let d2 = est.error_bound(0.2).unwrap();
        assert!(d2 < d1);
        assert_eq!(est.batches(), 51);
        assert_eq!(est.samples(), 51 * est.num_terms() as u64);
        // The batch-driven bound matches the sample-driven bound because each
        // batch draws exactly |F| samples.
        assert!(
            (est.error_bound(0.2).unwrap() - est.error_bound_by_batches(0.2).unwrap()).abs()
                < 1e-12
        );
    }

    #[test]
    fn estimate_converges_to_exact() {
        let (f, s) = setup();
        let exact_p = exact::probability(&f, &s).unwrap();
        let mut est = IncrementalEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        est.add_samples(30_000, &mut rng);
        assert!((est.estimate() - exact_p).abs() < 0.02);
    }

    #[test]
    fn banked_lanes_match_fresh_blocks_statistically() {
        // Drawing 30k samples in odd-sized dribbles (exercising the lane
        // bank on every call) must converge exactly like one bulk call — at
        // every supported kernel width.
        let (f, s) = setup();
        let exact_p = exact::probability(&f, &s).unwrap();
        let programs = Arc::new(LineagePrograms::compile(vec![f], &s).unwrap());
        for words in [1usize, 2, 4] {
            let mut est =
                IncrementalEstimator::from_compiled_with_width(&programs, 0, words).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(123);
            let mut drawn = 0usize;
            for i in 0.. {
                let n = 1 + (i * 7) % 13;
                est.add_samples(n, &mut rng);
                drawn += n;
                if drawn >= 30_000 {
                    break;
                }
            }
            assert_eq!(est.samples(), drawn as u64);
            assert!(
                (est.estimate() - exact_p).abs() < 0.02,
                "width {words}: {} vs {exact_p}",
                est.estimate()
            );
        }
    }

    #[test]
    fn wide_banks_drain_across_word_boundaries() {
        // Draws that straddle the 64-lane word edges of a 4-word bank: the
        // multiword shift must neither drop nor double-count lanes.
        let (f, s) = setup();
        let exact_p = exact::probability(&f, &s).unwrap();
        let programs = Arc::new(LineagePrograms::compile(vec![f], &s).unwrap());
        let mut est = IncrementalEstimator::from_compiled_with_width(&programs, 0, 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let mut drawn = 0usize;
        for n in [1usize, 63, 64, 65, 127, 129, 255, 200, 191, 65, 3]
            .iter()
            .cycle()
        {
            est.add_samples(*n, &mut rng);
            drawn += n;
            if drawn >= 40_000 {
                break;
            }
        }
        assert_eq!(est.samples(), drawn as u64);
        assert!((est.estimate() - exact_p).abs() < 0.02);
    }

    #[test]
    fn from_compiled_reuses_a_shared_batch() {
        let (f, s) = setup();
        let other = DnfEvent::new([Assignment::new([(1, 1)]).unwrap()]);
        let programs = Arc::new(LineagePrograms::compile(vec![f.clone(), other], &s).unwrap());
        let mut a = IncrementalEstimator::from_compiled(&programs, 0).unwrap();
        let mut b = IncrementalEstimator::new(f, s).unwrap();
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        a.add_samples(5_000, &mut r1);
        b.add_samples(5_000, &mut r2);
        // Same event, same seed: the shared-batch estimator and the
        // self-compiled one walk identical programs.
        assert_eq!(a.estimate(), b.estimate());
        assert_eq!(a.num_terms(), b.num_terms());
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let (f, s) = setup();
        let mut est = IncrementalEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        est.add_batch(&mut rng);
        assert!(est.error_bound(0.0).is_err());
        assert!(est.error_bound(1.0).is_err());
    }
}
