//! Incremental (anytime) Karp–Luby estimation, bit-parallel.
//!
//! The predicate-approximation algorithm of Figure 3 interleaves estimation
//! and decision making: in each outer-loop iteration it draws `|F_i|` further
//! samples for every approximable value `p̂_i`, then re-checks whether the
//! current estimates already support the predicate.  [`IncrementalEstimator`]
//! provides exactly that interface: an estimator whose sample count can grow
//! batch by batch while keeping the running estimate and its Chernoff error
//! bound available at all times.
//!
//! Since the bit-parallel rewrite the samples come from the
//! [`crate::bitworld`] kernel, which decides 64 worlds per pass over the
//! event's compiled program.  Because the adaptive driver asks for batches of
//! `|F_i|` samples — often far fewer than 64 — the estimator banks the unused
//! lanes of the last drawn block and serves later batches from the bank
//! first, so even fine-grained sampling schedules pay the blockwise price.
//! (Banked lanes are i.i.d. draws that no stopping decision has looked at,
//! so consuming them later leaves the estimator's distribution unchanged.)

use crate::bitworld::BitKarpLuby;
use crate::chernoff::{delta_prime, error_bound};
use crate::compile::LineagePrograms;
use crate::error::Result;
use crate::event::{DnfEvent, ProbabilitySpace};
use rand::Rng;
use std::sync::Arc;

/// A Karp–Luby estimator that accumulates samples across calls.
#[derive(Clone, Debug)]
pub struct IncrementalEstimator {
    kernel: Option<BitKarpLuby>,
    /// Exact value for trivial events (empty → 0, certain → 1).
    trivial: Option<f64>,
    /// Number of terms `|F_i|` (1 for trivial events so iteration counts stay
    /// meaningful).
    num_terms: usize,
    /// Running sum `X = Σ X_i`.
    successes: u64,
    /// Number of samples drawn so far.
    samples: u64,
    /// Number of completed batches (outer-loop iterations `l`).
    batches: u64,
    /// Success bits of drawn-but-unconsumed lanes of the last block.
    banked_bits: u64,
    /// Number of banked lanes.
    banked_len: u32,
}

impl IncrementalEstimator {
    /// Prepares an incremental estimator for an event, compiling it into a
    /// single-program batch.
    ///
    /// Trivial events (no terms, or a term that is always true) are handled
    /// exactly; they never consume samples and their error bound is 0.
    pub fn new(event: DnfEvent, space: ProbabilitySpace) -> Result<Self> {
        let programs = Arc::new(LineagePrograms::compile(vec![event], &space)?);
        IncrementalEstimator::from_compiled(&programs, 0)
    }

    /// Prepares an incremental estimator over an already compiled program —
    /// the warm path: no event walking, no compilation, no space clone.
    pub fn from_compiled(programs: &Arc<LineagePrograms>, index: usize) -> Result<Self> {
        let trivial = programs.trivial(index);
        let num_terms = programs.num_terms(index).max(1);
        let kernel = if trivial.is_none() {
            Some(BitKarpLuby::new(programs.clone(), index)?)
        } else {
            None
        };
        Ok(IncrementalEstimator {
            kernel,
            trivial,
            num_terms,
            successes: 0,
            samples: 0,
            batches: 0,
            banked_bits: 0,
            banked_len: 0,
        })
    }

    /// True if the event's probability is known exactly (0 or 1).
    pub fn is_trivial(&self) -> bool {
        self.trivial.is_some()
    }

    /// The number of terms `|F_i|` of the underlying event.
    pub fn num_terms(&self) -> usize {
        self.num_terms
    }

    /// Number of samples drawn so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of completed batches (the paper's outer-loop counter `l`).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Draws one batch of `|F_i|` samples (one outer-loop iteration of
    /// Figure 3).
    pub fn add_batch<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.add_samples(self.num_terms, rng);
        self.batches += 1;
    }

    /// Draws `n` further samples (bank first, then whole 64-lane blocks).
    pub fn add_samples<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) {
        let Some(kernel) = &mut self.kernel else {
            return;
        };
        let mut remaining = n as u64;
        // Serve from the bank of already-drawn lanes.
        if self.banked_len > 0 && remaining > 0 {
            let take = (self.banked_len as u64).min(remaining) as u32;
            let mask = if take >= 64 { !0 } else { (1u64 << take) - 1 };
            self.successes += u64::from((self.banked_bits & mask).count_ones());
            self.banked_bits = if take >= 64 {
                0
            } else {
                self.banked_bits >> take
            };
            self.banked_len -= take;
            remaining -= u64::from(take);
        }
        while remaining >= 64 {
            self.successes += u64::from(kernel.sample_block(rng, 64));
            remaining -= 64;
        }
        if remaining > 0 {
            // Draw one more block, consume `remaining` lanes, bank the rest.
            let bits = kernel.sample_block_bits(rng);
            let mask = (1u64 << remaining) - 1;
            self.successes += u64::from((bits & mask).count_ones());
            self.banked_bits = bits >> remaining;
            self.banked_len = 64 - remaining as u32;
        }
        self.samples += n as u64;
    }

    /// The current estimate `p̂ = X · M / m` (or the exact value for trivial
    /// events; 0 before any sample has been drawn).
    pub fn estimate(&self) -> f64 {
        if let Some(v) = self.trivial {
            return v;
        }
        if self.samples == 0 {
            return 0.0;
        }
        let kernel = self.kernel.as_ref().expect("non-trivial estimator");
        self.successes as f64 * kernel.total_weight() / self.samples as f64
    }

    /// The Chernoff bound `δ_i(ε) = 2·e^{−m·ε²/(3·|F_i|)}` on the probability
    /// that the current estimate misses the true value by a relative error of
    /// ε or more; 0 for trivial events.
    pub fn error_bound(&self, epsilon: f64) -> Result<f64> {
        if self.trivial.is_some() {
            return Ok(0.0);
        }
        error_bound(epsilon, self.samples as usize, self.num_terms)
    }

    /// The balanced form `δ′(ε, l)` of the error bound, driven by the batch
    /// counter instead of the raw sample count; 0 for trivial events.
    pub fn error_bound_by_batches(&self, epsilon: f64) -> Result<f64> {
        if self.trivial.is_some() {
            return Ok(0.0);
        }
        delta_prime(epsilon, self.batches as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Assignment;
    use crate::exact;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (DnfEvent, ProbabilitySpace) {
        let mut s = ProbabilitySpace::new();
        let a = s.add_bool_variable(0.4).unwrap();
        let b = s.add_bool_variable(0.3).unwrap();
        let c = s.add_bool_variable(0.2).unwrap();
        let f = DnfEvent::new([
            Assignment::new([(a, 0)]).unwrap(),
            Assignment::new([(b, 0), (c, 0)]).unwrap(),
        ]);
        (f, s)
    }

    #[test]
    fn trivial_events_are_exact_and_sample_free() {
        let (_, s) = setup();
        let mut never = IncrementalEstimator::new(DnfEvent::never(), s.clone()).unwrap();
        assert!(never.is_trivial());
        assert_eq!(never.estimate(), 0.0);
        assert_eq!(never.error_bound(0.1).unwrap(), 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        never.add_batch(&mut rng);
        assert_eq!(never.samples(), 0);

        let certain = DnfEvent::new([Assignment::always()]);
        let est = IncrementalEstimator::new(certain, s).unwrap();
        assert_eq!(est.estimate(), 1.0);
        assert_eq!(est.error_bound_by_batches(0.1).unwrap(), 0.0);
    }

    #[test]
    fn batches_accumulate_and_shrink_the_error_bound() {
        let (f, s) = setup();
        let mut est = IncrementalEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(est.estimate(), 0.0);
        est.add_batch(&mut rng);
        let d1 = est.error_bound(0.2).unwrap();
        for _ in 0..50 {
            est.add_batch(&mut rng);
        }
        let d2 = est.error_bound(0.2).unwrap();
        assert!(d2 < d1);
        assert_eq!(est.batches(), 51);
        assert_eq!(est.samples(), 51 * est.num_terms() as u64);
        // The batch-driven bound matches the sample-driven bound because each
        // batch draws exactly |F| samples.
        assert!(
            (est.error_bound(0.2).unwrap() - est.error_bound_by_batches(0.2).unwrap()).abs()
                < 1e-12
        );
    }

    #[test]
    fn estimate_converges_to_exact() {
        let (f, s) = setup();
        let exact_p = exact::probability(&f, &s).unwrap();
        let mut est = IncrementalEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        est.add_samples(30_000, &mut rng);
        assert!((est.estimate() - exact_p).abs() < 0.02);
    }

    #[test]
    fn banked_lanes_match_fresh_blocks_statistically() {
        // Drawing 30k samples in odd-sized dribbles (exercising the lane
        // bank on every call) must converge exactly like one bulk call.
        let (f, s) = setup();
        let exact_p = exact::probability(&f, &s).unwrap();
        let mut est = IncrementalEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let mut drawn = 0usize;
        for i in 0.. {
            let n = 1 + (i * 7) % 13;
            est.add_samples(n, &mut rng);
            drawn += n;
            if drawn >= 30_000 {
                break;
            }
        }
        assert_eq!(est.samples(), drawn as u64);
        assert!((est.estimate() - exact_p).abs() < 0.02);
    }

    #[test]
    fn from_compiled_reuses_a_shared_batch() {
        let (f, s) = setup();
        let other = DnfEvent::new([Assignment::new([(1, 1)]).unwrap()]);
        let programs = Arc::new(LineagePrograms::compile(vec![f.clone(), other], &s).unwrap());
        let mut a = IncrementalEstimator::from_compiled(&programs, 0).unwrap();
        let mut b = IncrementalEstimator::new(f, s).unwrap();
        let mut r1 = ChaCha8Rng::seed_from_u64(9);
        let mut r2 = ChaCha8Rng::seed_from_u64(9);
        a.add_samples(5_000, &mut r1);
        b.add_samples(5_000, &mut r2);
        // Same event, same seed: the shared-batch estimator and the
        // self-compiled one walk identical programs.
        assert_eq!(a.estimate(), b.estimate());
        assert_eq!(a.num_terms(), b.num_terms());
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let (f, s) = setup();
        let mut est = IncrementalEstimator::new(f, s).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        est.add_batch(&mut rng);
        assert!(est.error_bound(0.0).is_err());
        assert!(est.error_bound(1.0).is_err());
    }
}
