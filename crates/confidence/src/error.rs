//! Error type for confidence computation.

use std::fmt;

/// Errors raised by the `confidence` crate.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfidenceError {
    /// A variable id was used that is not declared in the probability space.
    UnknownVariable(usize),
    /// An alternative index was used that is out of range for its variable.
    UnknownAlternative {
        /// The variable id.
        var: usize,
        /// The offending alternative index.
        alt: usize,
    },
    /// A variable's distribution is invalid.
    InvalidDistribution(String),
    /// An approximation parameter (ε, δ) is outside its legal range.
    InvalidParameter(String),
    /// The exact method would exceed its configured work limit.
    TooLarge {
        /// A description of the size that was exceeded.
        what: String,
        /// The configured limit.
        limit: u128,
    },
    /// The event is empty in a context that requires at least one term.
    EmptyEvent,
    /// A sampling run was cut short by its caller's deadline before it
    /// drew all requested samples; no estimate was produced.
    Interrupted,
}

impl fmt::Display for ConfidenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfidenceError::UnknownVariable(v) => write!(f, "unknown variable id {v}"),
            ConfidenceError::UnknownAlternative { var, alt } => {
                write!(f, "variable {var} has no alternative {alt}")
            }
            ConfidenceError::InvalidDistribution(m) => write!(f, "invalid distribution: {m}"),
            ConfidenceError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            ConfidenceError::TooLarge { what, limit } => {
                write!(f, "{what} exceeds the limit of {limit}")
            }
            ConfidenceError::EmptyEvent => write!(f, "the event has no terms"),
            ConfidenceError::Interrupted => {
                write!(f, "sampling interrupted by the caller's deadline")
            }
        }
    }
}

impl std::error::Error for ConfidenceError {}

/// Result alias for the `confidence` crate.
pub type Result<T> = std::result::Result<T, ConfidenceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(ConfidenceError::UnknownVariable(3)
            .to_string()
            .contains('3'));
        assert!(ConfidenceError::TooLarge {
            what: "number of worlds".into(),
            limit: 100
        }
        .to_string()
        .contains("100"));
        assert!(ConfidenceError::EmptyEvent.to_string().contains("no terms"));
    }
}
