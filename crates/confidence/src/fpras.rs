//! The (ε, δ) fully polynomial-time randomized approximation scheme for
//! confidence computation (Proposition 4.2): Karp–Luby sampling with the
//! Chernoff-bound sample count.

use crate::chernoff::{check_delta, check_epsilon, required_samples};
use crate::error::Result;
use crate::event::{DnfEvent, ProbabilitySpace};
use crate::karp_luby::KarpLubyEstimator;
use rand::Rng;

/// Parameters of an approximate confidence computation (`conf_{ε,δ}`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FprasParams {
    /// Relative error ε.
    pub epsilon: f64,
    /// Error probability δ.
    pub delta: f64,
}

impl FprasParams {
    /// Creates a parameter set, validating the ranges.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self> {
        check_epsilon(epsilon)?;
        check_delta(delta)?;
        Ok(FprasParams { epsilon, delta })
    }

    /// The number of Karp–Luby samples required for an event with
    /// `num_terms` terms.
    pub fn samples_for(&self, num_terms: usize) -> Result<usize> {
        required_samples(self.epsilon, self.delta, num_terms)
    }
}

/// Outcome of an approximate confidence computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceEstimate {
    /// The estimate `p̂`.
    pub estimate: f64,
    /// Number of Karp–Luby samples drawn.
    pub samples: usize,
    /// The requested relative error ε.
    pub epsilon: f64,
    /// The requested error probability δ.
    pub delta: f64,
}

/// Approximates `Pr[F]` to within relative error ε with probability at least
/// `1 − δ` (Proposition 4.2).
///
/// Events with no terms or with an always-true term are answered exactly
/// (0 and 1 respectively) without sampling.
pub fn approximate_confidence<R: Rng + ?Sized>(
    event: &DnfEvent,
    space: &ProbabilitySpace,
    params: FprasParams,
    rng: &mut R,
) -> Result<ConfidenceEstimate> {
    if event.is_never() {
        return Ok(ConfidenceEstimate {
            estimate: 0.0,
            samples: 0,
            epsilon: params.epsilon,
            delta: params.delta,
        });
    }
    if event.is_certain() {
        return Ok(ConfidenceEstimate {
            estimate: 1.0,
            samples: 0,
            epsilon: params.epsilon,
            delta: params.delta,
        });
    }
    let estimator = KarpLubyEstimator::new(event.clone(), space.clone())?;
    let m = params.samples_for(event.num_terms())?;
    let estimate = estimator.estimate(m, rng)?;
    Ok(ConfidenceEstimate {
        estimate,
        samples: m,
        epsilon: params.epsilon,
        delta: params.delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Assignment;
    use crate::exact;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_event(
        rng: &mut ChaCha8Rng,
        num_vars: usize,
        num_terms: usize,
        term_len: usize,
    ) -> (DnfEvent, ProbabilitySpace) {
        use rand::Rng as _;
        let mut space = ProbabilitySpace::new();
        for _ in 0..num_vars {
            space.add_bool_variable(rng.gen_range(0.05..0.95)).unwrap();
        }
        let mut terms = Vec::new();
        for _ in 0..num_terms {
            let mut pairs = Vec::new();
            for _ in 0..term_len {
                pairs.push((rng.gen_range(0..num_vars), rng.gen_range(0..2usize)));
            }
            if let Ok(a) = Assignment::new(pairs) {
                terms.push(a);
            }
        }
        if terms.is_empty() {
            terms.push(Assignment::new([(0, 0)]).unwrap());
        }
        (DnfEvent::new(terms), space)
    }

    #[test]
    fn params_validation() {
        assert!(FprasParams::new(0.1, 0.05).is_ok());
        assert!(FprasParams::new(0.0, 0.05).is_err());
        assert!(FprasParams::new(0.1, 0.0).is_err());
        assert!(FprasParams::new(1.2, 0.5).is_err());
    }

    #[test]
    fn trivial_events_need_no_samples() {
        let space = ProbabilitySpace::new();
        let params = FprasParams::new(0.1, 0.05).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let r = approximate_confidence(&DnfEvent::never(), &space, params, &mut rng).unwrap();
        assert_eq!(r.estimate, 0.0);
        assert_eq!(r.samples, 0);
        let certain = DnfEvent::new([Assignment::always()]);
        let r = approximate_confidence(&certain, &space, params, &mut rng).unwrap();
        assert_eq!(r.estimate, 1.0);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn estimates_are_within_epsilon_of_exact_most_of_the_time() {
        // Empirical check of the (ε, δ) guarantee over several seeded runs:
        // with ε = 0.2 and δ = 0.05, at most a small fraction of runs may
        // exceed the relative error.  With 20 runs, allow 2 outliers.
        let params = FprasParams::new(0.2, 0.05).unwrap();
        let mut gen_rng = ChaCha8Rng::seed_from_u64(11);
        let (event, space) = random_event(&mut gen_rng, 8, 6, 2);
        let exact_p = exact::probability(&event, &space).unwrap();
        assert!(exact_p > 0.0);
        let mut violations = 0;
        for seed in 0..20u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let r = approximate_confidence(&event, &space, params, &mut rng).unwrap();
            if (r.estimate - exact_p).abs() > params.epsilon * exact_p {
                violations += 1;
            }
        }
        assert!(
            violations <= 2,
            "{violations} of 20 runs exceeded the bound"
        );
    }

    #[test]
    fn sample_count_follows_the_fpras_formula() {
        let params = FprasParams::new(0.25, 0.1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (event, space) = random_event(&mut rng, 6, 5, 2);
        let mut rng2 = ChaCha8Rng::seed_from_u64(6);
        let r = approximate_confidence(&event, &space, params, &mut rng2).unwrap();
        assert_eq!(r.samples, params.samples_for(event.num_terms()).unwrap());
        assert!(r.samples > 0);
    }
}
