//! The out-of-core storage tier: digest-verified segment files.
//!
//! Two consumers share this module:
//!
//! * the **spill tier** ([`merge_spilling`]) — when a positive
//!   [`spill_budget_bytes`](crate::EvalConfig::spill_budget_bytes) is
//!   configured, pure-operator chunk outputs heavier than the budget are
//!   encoded with [`urel::segment`], framed, written to temporary segment
//!   files, and merged back by *streaming* decode (header + row-at-a-time
//!   insert), so the merged result is built without ever holding two copies
//!   of a heavy chunk.  Set semantics make the merge order-independent, so
//!   spilled execution is bit-identical to resident execution;
//! * the **checkpoint store** ([`crate::ServingEngine::checkpoint`] /
//!   [`restore`](crate::ServingEngine::restore)) — a directory of segment
//!   files (catalog, W-table, one segment per relation, one per warm pool
//!   entry) plus a `MANIFEST` segment, written last, recording every
//!   segment's payload length and digest pair.  The shape follows the
//!   state-layout/state-manager design of replicated-state systems: readers
//!   trust nothing until the manifest digest *and* each segment's own framed
//!   digest both verify.
//!
//! Every segment file is framed: magic `USEG`, format version, payload
//! length, and a pair of independently seeded 64-bit digests over the
//! payload, followed by the payload itself.  [`read_segment`] rejects any
//! mismatch with [`EngineError::Storage`] — a flipped bit anywhere in the
//! file (header or payload) surfaces as a classified error, never as
//! silently wrong rows.  The `storage` failpoint
//! ([`crate::faults::corrupt_bytes`]) flips a deterministic bit of a
//! checkpoint segment just before it hits disk to prove exactly that.

use crate::error::{EngineError, Result};
use crate::exec::{EvalStats, EvaluatedRelation};
use std::collections::BTreeSet;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use urel::segment::{self, SegmentCursor};
use urel::{UDatabase, URelation, WTable};

/// Segment file magic.
const MAGIC: [u8; 4] = *b"USEG";
/// Segment format version; bump on any wire-format change.
/// Version 2 widened the warm-entry statistics block with the estimation
/// backend counters (exact-compiled / sampled answers, shared block hits).
const VERSION: u32 = 2;
/// Frame header: magic + version + payload length + digest pair.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;
/// Seed separating the second digest's stream from the first.
const DIGEST2_SEED: u64 = 0xD6E8_FEB8_6659_FD93;

/// The manifest's own file name (not listed in itself).
pub(crate) const MANIFEST: &str = "MANIFEST";

fn corrupt(msg: impl Into<String>) -> EngineError {
    EngineError::Storage(msg.into())
}

fn io_err(path: &Path, what: &str, e: std::io::Error) -> EngineError {
    corrupt(format!("{what} {}: {e}", path.display()))
}

/// The digest pair of a payload: two `DefaultHasher` (SipHash-1-3 with
/// fixed keys, stable across processes and platforms) streams, the second
/// seeded differently so a collision must fool both.
pub(crate) fn digest_pair(payload: &[u8]) -> (u64, u64) {
    let mut h1 = std::collections::hash_map::DefaultHasher::new();
    h1.write(payload);
    let mut h2 = std::collections::hash_map::DefaultHasher::new();
    h2.write_u64(DIGEST2_SEED);
    h2.write(payload);
    (h1.finish(), h2.finish())
}

/// Frames a payload: header (magic, version, length, digests) + payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let (h1, h2) = digest_pair(payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    segment::put_u32(&mut out, VERSION);
    segment::put_u64(&mut out, payload.len() as u64);
    segment::put_u64(&mut out, h1);
    segment::put_u64(&mut out, h2);
    out.extend_from_slice(payload);
    out
}

/// Verifies a framed buffer and returns its payload slice.
fn unframe<'a>(buf: &'a [u8], path: &Path) -> Result<&'a [u8]> {
    let p = path.display();
    if buf.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "{p}: truncated frame ({} bytes)",
            buf.len()
        )));
    }
    if buf[..4] != MAGIC {
        return Err(corrupt(format!("{p}: bad magic")));
    }
    let mut cur = SegmentCursor::new(&buf[4..HEADER_LEN]);
    let version = cur.take_u32().expect("header slice");
    let len = cur.take_u64().expect("header slice");
    let h1 = cur.take_u64().expect("header slice");
    let h2 = cur.take_u64().expect("header slice");
    if version != VERSION {
        return Err(corrupt(format!("{p}: unknown segment version {version}")));
    }
    let payload = &buf[HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(corrupt(format!(
            "{p}: payload is {} bytes, header promised {len}",
            payload.len()
        )));
    }
    if digest_pair(payload) != (h1, h2) {
        return Err(corrupt(format!("{p}: digest mismatch")));
    }
    Ok(payload)
}

/// Reads a framed segment file and returns its verified payload.
pub(crate) fn read_segment(path: &Path) -> Result<Vec<u8>> {
    let buf = std::fs::read(path).map_err(|e| io_err(path, "reading segment", e))?;
    Ok(unframe(&buf, path)?.to_vec())
}

/// One manifest row: a segment file's name, payload length, and digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct ManifestEntry {
    pub name: String,
    pub len: u64,
    pub h1: u64,
    pub h2: u64,
}

/// Writes one framed checkpoint segment into `dir` and returns its manifest
/// row.  This is the `storage` failpoint site: an armed corruption storm
/// flips one bit of the framed buffer *after* the manifest row is taken, so
/// what lands on disk no longer matches what the manifest promises.
pub(crate) fn write_segment_file(dir: &Path, name: &str, payload: &[u8]) -> Result<ManifestEntry> {
    let (h1, h2) = digest_pair(payload);
    let entry = ManifestEntry {
        name: name.to_owned(),
        len: payload.len() as u64,
        h1,
        h2,
    };
    let mut framed = frame(payload);
    crate::faults::corrupt_bytes("storage", &mut framed);
    let path = dir.join(name);
    std::fs::write(&path, framed).map_err(|e| io_err(&path, "writing segment", e))?;
    Ok(entry)
}

/// Writes the manifest segment.  Called after every other segment has been
/// durably written, so a crash mid-checkpoint leaves a directory without a
/// (complete) manifest — which `restore` rejects as a whole — rather than a
/// manifest pointing at missing or partial segments.
pub(crate) fn write_manifest(dir: &Path, entries: &[ManifestEntry]) -> Result<()> {
    let mut payload = Vec::new();
    segment::put_u32(&mut payload, entries.len() as u32);
    for e in entries {
        segment::put_str(&mut payload, &e.name);
        segment::put_u64(&mut payload, e.len);
        segment::put_u64(&mut payload, e.h1);
        segment::put_u64(&mut payload, e.h2);
    }
    let path = dir.join(MANIFEST);
    std::fs::write(&path, frame(&payload)).map_err(|e| io_err(&path, "writing manifest", e))
}

/// Reads and decodes the manifest of a checkpoint directory.
pub(crate) fn read_manifest(dir: &Path) -> Result<Vec<ManifestEntry>> {
    let path = dir.join(MANIFEST);
    let payload = read_segment(&path)?;
    let mut cur = SegmentCursor::new(&payload);
    let decode = |cur: &mut SegmentCursor<'_>| -> urel::Result<Vec<ManifestEntry>> {
        let count = cur.take_u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            entries.push(ManifestEntry {
                name: cur.take_str()?,
                len: cur.take_u64()?,
                h1: cur.take_u64()?,
                h2: cur.take_u64()?,
            });
        }
        Ok(entries)
    };
    let entries = decode(&mut cur).map_err(|e| corrupt(format!("{}: {e}", path.display())))?;
    if !cur.is_exhausted() {
        return Err(corrupt(format!("{}: trailing bytes", path.display())));
    }
    Ok(entries)
}

/// Reads a segment file and cross-checks it against its manifest row: the
/// frame must verify *and* agree with the manifest's length and digests, so
/// swapping two internally consistent segment files is also detected.
pub(crate) fn read_verified(dir: &Path, entry: &ManifestEntry) -> Result<Vec<u8>> {
    let payload = read_segment(&dir.join(&entry.name))?;
    if payload.len() as u64 != entry.len || digest_pair(&payload) != (entry.h1, entry.h2) {
        return Err(corrupt(format!(
            "{}: segment does not match its manifest row",
            entry.name
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Spill tier
// ---------------------------------------------------------------------------

/// Deterministic-per-process unique spill file path (no clock, no RNG).
fn spill_path() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "uadb-spill-{}-{}.seg",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Temp-file janitor: spill segments are deleted when the merge finishes,
/// including on the error path.
struct SpillFiles(Vec<PathBuf>);

impl Drop for SpillFiles {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Merges chunked operator outputs under a spill budget.  Budget `0` is the
/// fully resident fast path ([`crate::ops::merge_chunks`]).  Otherwise each
/// output heavier than `budget` bytes is written to a framed temporary
/// segment and dropped; the light outputs merge in memory first, then each
/// spilled segment is digest-verified and streamed row-by-row into the
/// accumulator.  Rows live in a set, so the split/merge schedule cannot
/// change the result — spilled ≡ resident, bit for bit.
pub(crate) fn merge_spilling(outs: Vec<URelation>, budget: usize) -> Result<URelation> {
    if budget == 0 {
        return Ok(crate::ops::merge_chunks(outs));
    }
    let mut spilled = SpillFiles(Vec::with_capacity(outs.len()));
    let mut merged: Option<URelation> = None;
    for out in outs {
        if !out.is_empty() && out.approx_bytes() > budget {
            let mut payload = Vec::new();
            segment::put_relation(&mut payload, &out);
            drop(out);
            let path = spill_path();
            std::fs::write(&path, frame(&payload))
                .map_err(|e| io_err(&path, "writing spill segment", e))?;
            spilled.0.push(path);
        } else {
            match merged.as_mut() {
                None => merged = Some(out),
                Some(m) => m.absorb(out),
            }
        }
    }
    for path in std::mem::take(&mut spilled.0) {
        let payload = read_segment(&path)?;
        let _ = std::fs::remove_file(&path);
        let mut cur = SegmentCursor::new(&payload);
        let streamed = |e: urel::UrelError| corrupt(format!("{}: {e}", path.display()));
        let (schema, rows) = cur.take_relation_header().map_err(streamed)?;
        let m = merged.get_or_insert_with(|| URelation::empty(schema));
        for _ in 0..rows {
            let row = cur.take_row().map_err(streamed)?;
            m.insert(row.condition, row.tuple)
                .map_err(|e| corrupt(format!("{}: {e}", path.display())))?;
        }
        if !cur.is_exhausted() {
            return Err(corrupt(format!("{}: trailing bytes", path.display())));
        }
    }
    Ok(merged.expect("partition yields at least one chunk"))
}

// ---------------------------------------------------------------------------
// Checkpoint payload codecs (engine-level composition over urel::segment)
// ---------------------------------------------------------------------------

fn put_string_set(out: &mut Vec<u8>, set: &BTreeSet<String>) {
    segment::put_u32(out, set.len() as u32);
    for s in set {
        segment::put_str(out, s);
    }
}

fn take_string_set(cur: &mut SegmentCursor<'_>) -> urel::Result<BTreeSet<String>> {
    let count = cur.take_u32()? as usize;
    let mut set = BTreeSet::new();
    for _ in 0..count {
        set.insert(cur.take_str()?);
    }
    Ok(set)
}

/// Encodes a whole U-database: W-table, then each relation with its name
/// and completeness flag, in catalog (`BTreeMap`) order.
pub(crate) fn put_database(out: &mut Vec<u8>, db: &UDatabase) {
    segment::put_wtable(out, db.wtable());
    let names = db.relation_names();
    segment::put_u32(out, names.len() as u32);
    for name in names {
        segment::put_str(out, &name);
        segment::put_u8(out, u8::from(db.is_complete(&name)));
        segment::put_relation(out, db.relation(&name).expect("listed relation exists"));
    }
}

/// Decodes a U-database through its validating mutators and a final
/// [`UDatabase::validate`], so undeclared variables or inconsistent flags in
/// a tampered payload are rejected rather than installed.
pub(crate) fn take_database(cur: &mut SegmentCursor<'_>) -> urel::Result<UDatabase> {
    let wtable: WTable = cur.take_wtable()?;
    let mut db = UDatabase::new();
    *db.wtable_mut() = wtable;
    let count = cur.take_u32()? as usize;
    for _ in 0..count {
        let name = cur.take_str()?;
        let complete = cur.take_u8()? != 0;
        let rel = cur.take_relation()?;
        db.set_relation(name, rel, complete);
    }
    db.validate()?;
    Ok(db)
}

/// One decoded warm pool entry: everything needed to re-seed a
/// deterministic-prefix snapshot for `creator` without re-evaluating it.
pub(crate) struct WarmEntry {
    /// Normalized text of the query whose evaluation created the entry.
    pub creator: String,
    /// `config_digest` of the serving configuration the entry was pooled
    /// under; restores with a different configuration skip the entry.
    pub config_digest: u64,
    /// Variable counter after the prefix ran (repair-key allocations).
    pub var_counter: u64,
    /// Evaluation statistics after the prefix ran.
    pub stats: EvalStats,
    /// Post-prefix database state (includes repair-key variables).
    pub database: UDatabase,
    /// Union of the relation names the entry's *stateful* prefix read.
    pub stateful_footprint: BTreeSet<String>,
    /// Pooled pure sub-results: subplan digest, input footprint, value.
    pub slots: Vec<((u64, u64), BTreeSet<String>, EvaluatedRelation)>,
}

/// Encodes a warm pool entry.
pub(crate) fn put_warm(out: &mut Vec<u8>, warm: &WarmEntry) {
    segment::put_str(out, &warm.creator);
    segment::put_u64(out, warm.config_digest);
    segment::put_u64(out, warm.var_counter);
    for n in [
        warm.stats.karp_luby_samples,
        warm.stats.exact_confidence_calls,
        warm.stats.conf_operators,
        warm.stats.approx_select_operators,
        warm.stats.approx_select_decisions,
        warm.stats.approx_select_pruned,
        warm.stats.exact_compiled_answers,
        warm.stats.sampled_answers,
        warm.stats.shared_block_hits,
    ] {
        segment::put_u64(out, n);
    }
    put_database(out, &warm.database);
    put_string_set(out, &warm.stateful_footprint);
    segment::put_u32(out, warm.slots.len() as u32);
    for ((d1, d2), footprint, value) in &warm.slots {
        segment::put_u64(out, *d1);
        segment::put_u64(out, *d2);
        put_string_set(out, footprint);
        segment::put_relation(out, &value.relation);
        segment::put_u8(out, u8::from(value.complete));
        segment::put_u32(out, value.errors.len() as u32);
        for (tuple, err) in &value.errors {
            segment::put_tuple(out, tuple);
            segment::put_f64(out, *err);
        }
    }
}

/// Decodes a warm pool entry, rejecting trailing bytes.
pub(crate) fn take_warm(payload: &[u8]) -> urel::Result<WarmEntry> {
    let mut cur = SegmentCursor::new(payload);
    let creator = cur.take_str()?;
    let config_digest = cur.take_u64()?;
    let var_counter = cur.take_u64()?;
    let stats = EvalStats {
        karp_luby_samples: cur.take_u64()?,
        exact_confidence_calls: cur.take_u64()?,
        conf_operators: cur.take_u64()?,
        approx_select_operators: cur.take_u64()?,
        approx_select_decisions: cur.take_u64()?,
        approx_select_pruned: cur.take_u64()?,
        exact_compiled_answers: cur.take_u64()?,
        sampled_answers: cur.take_u64()?,
        shared_block_hits: cur.take_u64()?,
    };
    let database = take_database(&mut cur)?;
    let stateful_footprint = take_string_set(&mut cur)?;
    let slot_count = cur.take_u32()? as usize;
    let mut slots = Vec::with_capacity(slot_count.min(1024));
    for _ in 0..slot_count {
        let d1 = cur.take_u64()?;
        let d2 = cur.take_u64()?;
        let footprint = take_string_set(&mut cur)?;
        let relation = cur.take_relation()?;
        let complete = cur.take_u8()? != 0;
        let err_count = cur.take_u32()? as usize;
        let mut errors = std::collections::BTreeMap::new();
        for _ in 0..err_count {
            let tuple = cur.take_tuple()?;
            let err = cur.take_f64()?;
            errors.insert(tuple, err);
        }
        slots.push((
            (d1, d2),
            footprint,
            EvaluatedRelation {
                relation,
                complete,
                errors,
            },
        ));
    }
    if !cur.is_exhausted() {
        return Err(urel::UrelError::Corrupt(
            "warm entry: trailing bytes".into(),
        ));
    }
    Ok(WarmEntry {
        creator,
        config_digest,
        var_counter,
        stats,
        database,
        stateful_footprint,
        slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdb::{schema, tuple};
    use urel::{Condition, Var};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uadb-storage-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_db() -> UDatabase {
        let mut db = UDatabase::new();
        db.add_variable(
            Var::new("c"),
            [
                (pdb::Value::str("fair"), 2.0 / 3.0),
                (pdb::Value::str("2headed"), 1.0 / 3.0),
            ],
        )
        .unwrap();
        let mut r = URelation::empty(schema!["CoinType"]);
        r.insert(
            Condition::new([(Var::new("c"), pdb::Value::str("fair"))]).unwrap(),
            tuple!["fair"],
        )
        .unwrap();
        r.insert(
            Condition::new([(Var::new("c"), pdb::Value::str("2headed"))]).unwrap(),
            tuple!["2headed"],
        )
        .unwrap();
        db.set_relation("R", r, false);
        db
    }

    #[test]
    fn frame_round_trips_and_rejects_every_flipped_byte_class() {
        let dir = tmp_dir("frame");
        let payload = b"the quick brown segment".to_vec();
        let entry = write_segment_file(&dir, "a.seg", &payload).unwrap();
        assert_eq!(read_verified(&dir, &entry).unwrap(), payload);

        // Flip one byte at every offset: header or payload, the read must
        // fail with a classified storage error.
        let path = dir.join("a.seg");
        let pristine = std::fs::read(&path).unwrap();
        for i in 0..pristine.len() {
            let mut bad = pristine.clone();
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            match read_segment(&path) {
                Err(EngineError::Storage(_)) => {}
                other => panic!("flipped byte {i} not rejected: {other:?}"),
            }
        }
        // Truncation at every length is rejected too.
        for cut in 0..pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(matches!(read_segment(&path), Err(EngineError::Storage(_))));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_cross_check_catches_swapped_segments() {
        let dir = tmp_dir("swap");
        let a = write_segment_file(&dir, "a.seg", b"first payload").unwrap();
        let b = write_segment_file(&dir, "b.seg", b"second payload!").unwrap();
        write_manifest(&dir, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), vec![a.clone(), b.clone()]);

        // Swap the two (individually self-consistent) files on disk: the
        // per-file frames still verify, but the manifest cross-check fails.
        let fa = std::fs::read(dir.join("a.seg")).unwrap();
        let fb = std::fs::read(dir.join("b.seg")).unwrap();
        std::fs::write(dir.join("a.seg"), &fb).unwrap();
        std::fs::write(dir.join("b.seg"), &fa).unwrap();
        assert!(matches!(
            read_verified(&dir, &a),
            Err(EngineError::Storage(_))
        ));
        // A missing segment file is a storage error, not a panic.
        std::fs::remove_file(dir.join("b.seg")).unwrap();
        assert!(matches!(
            read_verified(&dir, &b),
            Err(EngineError::Storage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_spilling_matches_merge_chunks_bit_for_bit() {
        let mut u = URelation::empty(schema!["A", "B"]);
        for i in 0..200i64 {
            u.insert(
                Condition::new([(Var::new(format!("x{}", i % 7)), pdb::Value::Int(i % 3))])
                    .unwrap(),
                tuple![i, format!("payload-{i}-{}", "p".repeat((i % 40) as usize))],
            )
            .unwrap();
        }
        for chunks in [1usize, 3, 8] {
            let resident = crate::ops::merge_chunks(u.partition(chunks));
            // A tiny budget forces every non-trivial chunk through disk.
            let spilled = merge_spilling(u.partition(chunks), 64).unwrap();
            assert_eq!(spilled, resident);
            assert_eq!(spilled.content_digest(), u.content_digest());
            // A huge budget keeps everything resident.
            let unspilled = merge_spilling(u.partition(chunks), usize::MAX).unwrap();
            assert_eq!(unspilled, resident);
        }
    }

    #[test]
    fn database_payload_round_trips() {
        let db = sample_db();
        let mut payload = Vec::new();
        put_database(&mut payload, &db);
        let mut cur = SegmentCursor::new(&payload);
        let back = take_database(&mut cur).unwrap();
        assert!(cur.is_exhausted());
        assert_eq!(back, db);
    }

    #[test]
    fn warm_entry_round_trips() {
        let db = sample_db();
        let warm = WarmEntry {
            creator: "conf(R)".into(),
            config_digest: 0xABCD,
            var_counter: 3,
            stats: EvalStats {
                karp_luby_samples: 10,
                exact_confidence_calls: 2,
                conf_operators: 1,
                approx_select_operators: 0,
                approx_select_decisions: 4,
                approx_select_pruned: 1,
                exact_compiled_answers: 3,
                sampled_answers: 5,
                shared_block_hits: 2,
            },
            database: db.clone(),
            stateful_footprint: BTreeSet::from(["R".to_owned()]),
            slots: vec![(
                (7, 9),
                BTreeSet::from(["R".to_owned(), "S".to_owned()]),
                EvaluatedRelation {
                    relation: db.relation("R").unwrap().clone(),
                    complete: false,
                    errors: std::collections::BTreeMap::from([(tuple!["fair"], 0.125)]),
                },
            )],
        };
        let mut payload = Vec::new();
        put_warm(&mut payload, &warm);
        let back = take_warm(&payload).unwrap();
        assert_eq!(back.creator, warm.creator);
        assert_eq!(back.config_digest, warm.config_digest);
        assert_eq!(back.var_counter, warm.var_counter);
        assert_eq!(back.stats, warm.stats);
        assert_eq!(back.database, warm.database);
        assert_eq!(back.stateful_footprint, warm.stateful_footprint);
        assert_eq!(back.slots.len(), 1);
        let ((d1, d2), footprint, value) = &back.slots[0];
        assert_eq!((*d1, *d2), (7, 9));
        assert_eq!(footprint, &warm.slots[0].1);
        assert_eq!(value.relation, warm.slots[0].2.relation);
        assert_eq!(value.complete, warm.slots[0].2.complete);
        assert_eq!(value.errors, warm.slots[0].2.errors);
        // Tampered payloads are rejected, not mis-decoded.
        assert!(take_warm(&payload[..payload.len() - 1]).is_err());
    }
}
