//! # UA query evaluation
//!
//! Two engines for the Uncertainty Algebra of Koch (PODS 2008), both
//! lowerings of the same logical plan ([`algebra::plan`]):
//!
//! * [`UEngine`] lowers queries into a validated [`algebra::LogicalPlan`]
//!   and executes the [`physical`] operator pipeline over U-relational
//!   databases: the parsimonious translation of Section 3, confidences
//!   computed exactly or by the Karp–Luby FPRAS (Section 4) through the
//!   batched parallel `confidence::estimator` layer, approximate selections
//!   decided by the Figure 3 algorithm (Section 5), and per-tuple error
//!   bounds propagated following the provenance analysis of Section 6.
//! * [`evaluate_naive`] executes the same plan over the explicit
//!   possible-worlds representation (Proposition 3.5) — exponential but
//!   exact, the ground truth for tests and benchmarks.
//!
//! On top of the per-operator machinery, [`evaluate_adaptive`] implements the
//! whole-query approximation of Theorem 6.7 (iteration doubling until the
//! output error bound meets the target), with the closed-form bounds of
//! Proposition 6.6 in [`error_bound`], and [`provenance`] provides the ≺
//! relation of Section 6 for analysis and for reproducing Example 6.5.
//!
//! ```
//! use algebra::parse_query;
//! use engine::{EvalConfig, UEngine};
//! use pdb::{relation, schema, tuple};
//! use rand::SeedableRng;
//! use urel::UDatabase;
//!
//! let db = UDatabase::from_complete_relations([
//!     ("Coins", relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]]),
//! ]);
//! let q = parse_query("conf(project[CoinType](repairkey[ @ Count](Coins)))").unwrap();
//! let engine = UEngine::new(EvalConfig::exact());
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let out = engine.evaluate(&db, &q, &mut rng).unwrap();
//! assert!(out.result.relation.possible_tuples().contains(&tuple!["fair", 2.0 / 3.0]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive_query;
pub mod delta;
mod error;
pub mod error_bound;
mod exec;
pub mod faults;
mod naive_engine;
pub mod ops;
pub mod physical;
mod predicate_compile;
pub mod provenance;
pub mod sched;
pub mod serving;
mod space;
mod storage;
pub mod sync;

pub use adaptive_query::{active_domain_size, catalog_of, evaluate_adaptive, AdaptiveOutput};
pub use delta::DeltaInput;
pub use error::{EngineError, Result};
pub use error_bound::{proposition_6_6_bound, theorem_6_7_iterations, QueryShape};
pub use exec::{
    ApproxSelectMode, ConfidenceMode, EvalConfig, EvalOutput, EvalStats, EvaluatedRelation, UEngine,
};
pub use naive_engine::{evaluate_naive, evaluate_naive_plan, NaiveOutput};
pub use physical::{ExecContext, ExecSnapshot, OpClass, PhysicalOperator, PhysicalPlan, PureCtx};
pub use predicate_compile::compile_predicate;
pub use sched::SampleScheduler;
pub use serving::{
    DatabaseGuard, DegradedAnswer, DegradedReason, Request, RetryPolicy, ServingAnswer,
    ServingEngine, ServingLimits, ServingSession, ServingStats,
};
pub use space::{CompiledSpace, RelationEvents, SpaceCache};
pub use sync::{LockRank, OrderedMutex, OrderedRwLock};
