//! The physical operator pipeline: executing a [`LogicalPlan`] over a
//! U-relational database.
//!
//! [`PhysicalPlan::lower`] turns each logical node into a concrete
//! [`PhysicalOperator`] implementation, resolving every accuracy annotation
//! against the engine's [`EvalConfig`] — `conf` becomes exact model counting
//! or the Karp–Luby FPRAS, `σ̂` becomes exact decisions, the adaptive
//! Figure 3 algorithm, or a fixed iteration budget.  [`PhysicalPlan::execute`]
//! then runs the nodes in topological order over value slots, moving each
//! intermediate result to its last consumer instead of cloning.
//!
//! Operator → paper section map:
//!
//! | operator                                   | section             |
//! |--------------------------------------------|---------------------|
//! | [`ScanOp`], [`SelectOp`], [`ProjectOp`], [`ExtendOp`], [`RenameOp`], [`ProductOp`], [`NaturalJoinOp`], [`UnionOp`], [`DifferenceOp`] | §3 parsimonious translation |
//! | [`RepairKeyOp`]                            | §2.2 / §3           |
//! | [`PossOp`], [`CertOp`]                     | §2 (`cert` = the `conf = 1` test of Example 5.7) |
//! | [`ConfOp`]                                 | §4 (exact / Prop. 4.2 FPRAS) |
//! | [`ApproxSelectOp`]                         | §5 Figure 3, §6 error propagation (Lemma 6.4) |
//!
//! The confidence-bearing operators (`conf`, `cert`, `σ̂`) are *batched*:
//! they collect the DNF lineages of all tuples via
//! [`URelation::tuple_events`] and hand the whole batch to the
//! [`ConfidenceEstimator`] layer, which estimates every event in parallel
//! with a deterministic per-event sub-RNG.  Adaptive `σ̂` decisions are
//! likewise run concurrently across candidate tuples, one seeded RNG per
//! candidate, so results are identical for a fixed seed no matter how many
//! threads run.

use crate::error::{EngineError, Result};
use crate::exec::{ApproxSelectMode, ConfidenceMode, EvalConfig, EvalStats, EvaluatedRelation};
use crate::ops;
use crate::predicate_compile::compile_predicate;
use crate::space::CompiledSpace;
use algebra::{Accuracy, ConfTerm, LogicalOp, LogicalPlan, Predicate, ProjItem};
use approx::{approximate_predicate, ApproxPredicate, ApproximationParams};
use confidence::{
    chernoff, event_seed, BatchedIncrementalEstimator, ConfidenceEstimator, DnfEvent,
    ExactEstimator, FprasEstimator, FprasParams, IncrementalEstimator,
};
use pdb::{Schema, Tuple, Value};
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::fmt;
use urel::{Condition, UDatabase, URelation, Var};

/// Mutable evaluation state threaded through the pipeline.
pub struct ExecContext<'a> {
    /// The engine configuration the plan was lowered with.
    pub config: EvalConfig,
    /// The database being queried; `repair-key` adds variables and the final
    /// state is returned with the output.
    pub database: UDatabase,
    /// Accumulated statistics.
    pub stats: EvalStats,
    /// Counter for globally unique `repair-key` variable names.
    pub var_counter: usize,
    /// The caller's random source; operators draw *master seeds* from it and
    /// derive per-event/per-candidate sub-RNGs, so parallel estimation stays
    /// deterministic.
    pub rng: &'a mut dyn RngCore,
}

/// One operator of a physical plan.
pub trait PhysicalOperator: fmt::Debug {
    /// Operator mnemonic for plan rendering.
    fn name(&self) -> &'static str;

    /// Executes the operator on its (already evaluated) inputs.
    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation>;
}

/// A lowered, executable plan.
pub struct PhysicalPlan {
    nodes: Vec<PhysicalNode>,
    consumer_counts: Vec<usize>,
    root: usize,
}

/// One node of a [`PhysicalPlan`].
pub struct PhysicalNode {
    /// The operator implementation.
    pub operator: Box<dyn PhysicalOperator + Send + Sync>,
    /// Input slots (topologically earlier nodes).
    pub inputs: Vec<usize>,
    /// The subquery label inherited from the logical node.
    pub label: String,
}

impl fmt::Debug for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PhysicalPlan (root = #{})", self.root)?;
        for (id, node) in self.nodes.iter().enumerate() {
            let inputs: Vec<String> = node.inputs.iter().map(|i| format!("#{i}")).collect();
            writeln!(
                f,
                "  #{id} {}({})  ← {}",
                node.operator.name(),
                inputs.join(", "),
                node.label
            )?;
        }
        Ok(())
    }
}

impl PhysicalPlan {
    /// Lowers a logical plan, resolving accuracy annotations against the
    /// engine configuration.
    pub fn lower(plan: &LogicalPlan, config: EvalConfig) -> Result<PhysicalPlan> {
        let mut nodes = Vec::with_capacity(plan.len());
        for node in plan.nodes() {
            let operator: Box<dyn PhysicalOperator + Send + Sync> = match &node.op {
                LogicalOp::Scan { relation } => Box::new(ScanOp {
                    relation: relation.clone(),
                }),
                LogicalOp::Select { predicate } => Box::new(SelectOp {
                    predicate: predicate.clone(),
                }),
                LogicalOp::Project { items } => Box::new(ProjectOp {
                    items: items.clone(),
                }),
                LogicalOp::Extend { items } => Box::new(ExtendOp {
                    items: items.clone(),
                }),
                LogicalOp::Rename { from, to } => Box::new(RenameOp {
                    from: from.clone(),
                    to: to.clone(),
                }),
                LogicalOp::Product => Box::new(ProductOp),
                LogicalOp::NaturalJoin => Box::new(NaturalJoinOp),
                LogicalOp::Union => Box::new(UnionOp),
                LogicalOp::Difference { checked } => Box::new(DifferenceOp { checked: *checked }),
                LogicalOp::Poss => Box::new(PossOp),
                LogicalOp::Cert => Box::new(CertOp),
                LogicalOp::RepairKey { key, weight } => Box::new(RepairKeyOp {
                    key: key.clone(),
                    weight: weight.clone(),
                }),
                LogicalOp::Conf { prob_attr } => {
                    let params = match node.accuracy {
                        // An explicit `conf_{ε,δ}` always uses its own
                        // parameters.
                        Accuracy::Fpras { epsilon, delta } => Some(
                            FprasParams::new(epsilon, delta).map_err(EngineError::Confidence)?,
                        ),
                        // A plain `conf` follows the engine configuration.
                        _ => match config.confidence {
                            ConfidenceMode::Exact => None,
                            ConfidenceMode::Fpras { epsilon, delta } => Some(
                                FprasParams::new(epsilon, delta)
                                    .map_err(EngineError::Confidence)?,
                            ),
                        },
                    };
                    Box::new(ConfOp {
                        prob_attr: prob_attr.clone(),
                        params,
                    })
                }
                LogicalOp::ApproxSelect { terms, predicate } => {
                    let (epsilon0, delta) = match node.accuracy {
                        Accuracy::ApproxSelect { epsilon0, delta } => (epsilon0, delta),
                        other => {
                            return Err(EngineError::Invariant(format!(
                                "σ̂ plan node carries accuracy {other:?} instead of \
                                 Accuracy::ApproxSelect"
                            )))
                        }
                    };
                    Box::new(ApproxSelectOp {
                        terms: terms.clone(),
                        predicate: predicate.clone(),
                        epsilon0,
                        delta,
                        mode: config.approx_select,
                    })
                }
            };
            nodes.push(PhysicalNode {
                operator,
                inputs: node.inputs.clone(),
                label: node.label.clone(),
            });
        }
        Ok(PhysicalPlan {
            nodes,
            consumer_counts: plan.consumer_counts(),
            root: plan.root(),
        })
    }

    /// The nodes in execution order.
    pub fn nodes(&self) -> &[PhysicalNode] {
        &self.nodes
    }

    /// Executes the pipeline: every node runs once after its inputs, shared
    /// results are cloned only while further consumers remain.
    pub fn execute(&self, ctx: &mut ExecContext<'_>) -> Result<EvaluatedRelation> {
        let mut remaining = self.consumer_counts.clone();
        let mut slots: Vec<Option<EvaluatedRelation>> =
            (0..self.nodes.len()).map(|_| None).collect();
        for (id, node) in self.nodes.iter().enumerate() {
            let mut inputs = Vec::with_capacity(node.inputs.len());
            for &i in &node.inputs {
                remaining[i] -= 1;
                let value = if remaining[i] == 0 {
                    slots[i].take()
                } else {
                    slots[i].clone()
                };
                inputs.push(value.expect("topological order: input evaluated before use"));
            }
            slots[id] = Some(node.operator.execute(inputs, ctx)?);
        }
        Ok(slots[self.root]
            .take()
            .expect("the root slot holds the query result"))
    }
}

fn unary_input(mut inputs: Vec<EvaluatedRelation>) -> EvaluatedRelation {
    debug_assert_eq!(inputs.len(), 1);
    inputs.pop().expect("unary operator receives one input")
}

fn binary_inputs(mut inputs: Vec<EvaluatedRelation>) -> (EvaluatedRelation, EvaluatedRelation) {
    debug_assert_eq!(inputs.len(), 2);
    let right = inputs.pop().expect("binary operator receives two inputs");
    let left = inputs.pop().expect("binary operator receives two inputs");
    (left, right)
}

// ---- error-bound propagation (Lemma 6.4(1)) --------------------------------

fn propagate_unary(relation: URelation, input: &EvaluatedRelation) -> EvaluatedRelation {
    // Selection/extension/renaming keep tuples in 1:1 correspondence with
    // input tuples (modulo data-only transformation), so each output tuple
    // inherits the error of the input tuples it came from.  For simplicity
    // and soundness we look the error up by the shared data prefix when
    // arities match, falling back to the sum of all input errors when they
    // do not.
    if input.errors.is_empty() {
        return EvaluatedRelation {
            relation,
            complete: input.complete,
            errors: BTreeMap::new(),
        };
    }
    if relation.schema() == input.relation.schema() {
        let errors = relation
            .possible_tuples()
            .iter()
            .filter_map(|t| input.errors.get(t).map(|e| (t.clone(), *e)))
            .filter(|(_, e)| *e > 0.0)
            .collect();
        return EvaluatedRelation {
            relation,
            complete: input.complete,
            errors,
        };
    }
    let total: f64 = input.errors.values().sum::<f64>().min(1.0);
    let errors = relation
        .possible_tuples()
        .iter()
        .map(|t| (t.clone(), total))
        .collect();
    EvaluatedRelation {
        relation,
        complete: input.complete,
        errors,
    }
}

fn propagate_unary_complete(relation: URelation, input: &EvaluatedRelation) -> EvaluatedRelation {
    let mut out = propagate_unary(relation, input);
    out.complete = true;
    out
}

fn propagate_projection(
    relation: URelation,
    input: &EvaluatedRelation,
    items: &[ProjItem],
) -> Result<EvaluatedRelation> {
    if input.errors.is_empty() {
        return Ok(EvaluatedRelation {
            relation,
            complete: input.complete,
            errors: BTreeMap::new(),
        });
    }
    // Each output tuple's membership can change whenever any input tuple
    // that projects onto it changes (Example 6.5): sum the errors of the
    // contributing input tuples.
    let mut errors: BTreeMap<Tuple, f64> = BTreeMap::new();
    for t in input.relation.possible_tuples().iter() {
        let e = input.error_of(t);
        if e == 0.0 {
            continue;
        }
        let mut values = Vec::with_capacity(items.len());
        for item in items {
            values.push(item.expr.eval(input.relation.schema(), t)?);
        }
        let out_t = Tuple::new(values);
        *errors.entry(out_t).or_insert(0.0) += e;
    }
    for e in errors.values_mut() {
        *e = e.min(1.0);
    }
    Ok(EvaluatedRelation {
        relation,
        complete: input.complete,
        errors,
    })
}

fn propagate_binary(
    relation: URelation,
    left: &EvaluatedRelation,
    right: &EvaluatedRelation,
) -> EvaluatedRelation {
    let complete = left.complete && right.complete;
    if left.errors.is_empty() && right.errors.is_empty() {
        return EvaluatedRelation {
            relation,
            complete,
            errors: BTreeMap::new(),
        };
    }
    // Conservative propagation: any output tuple of a binary operation
    // depends on at most one tuple from each side plus, for unions, on a
    // tuple of either side; we bound its error by the sum of the maximal
    // per-side errors (capped at 1).  This over-approximates Lemma 6.4 but
    // never under-reports.
    let bound = (left.max_error() + right.max_error()).min(1.0);
    let errors = relation
        .possible_tuples()
        .iter()
        .map(|t| (t.clone(), bound))
        .collect();
    EvaluatedRelation {
        relation,
        complete,
        errors,
    }
}

// ---- per-world relational operators (§3) -----------------------------------

/// Reads a base relation.
#[derive(Clone, Debug)]
pub struct ScanOp {
    /// Relation name.
    pub relation: String,
}

impl PhysicalOperator for ScanOp {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn execute(
        &self,
        _inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let rel = ctx.database.relation(&self.relation)?.clone();
        let complete = ctx.database.is_complete(&self.relation);
        Ok(EvaluatedRelation {
            relation: rel,
            complete,
            errors: BTreeMap::new(),
        })
    }
}

/// Per-world selection `σ_φ`.
#[derive(Clone, Debug)]
pub struct SelectOp {
    /// Selection predicate.
    pub predicate: Predicate,
}

impl PhysicalOperator for SelectOp {
    fn name(&self) -> &'static str {
        "select"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = ops::select(&input.relation, &self.predicate)?;
        Ok(propagate_unary(relation, &input))
    }
}

/// Generalised projection `π`.
#[derive(Clone, Debug)]
pub struct ProjectOp {
    /// Output items.
    pub items: Vec<ProjItem>,
}

impl PhysicalOperator for ProjectOp {
    fn name(&self) -> &'static str {
        "project"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = ops::project(&input.relation, &self.items)?;
        propagate_projection(relation, &input, &self.items)
    }
}

/// Extension by computed attributes.
#[derive(Clone, Debug)]
pub struct ExtendOp {
    /// Appended items.
    pub items: Vec<ProjItem>,
}

impl PhysicalOperator for ExtendOp {
    fn name(&self) -> &'static str {
        "extend"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = ops::extend(&input.relation, &self.items)?;
        Ok(propagate_unary(relation, &input))
    }
}

/// Attribute renaming `ρ`.
#[derive(Clone, Debug)]
pub struct RenameOp {
    /// Attribute to rename.
    pub from: String,
    /// New attribute name.
    pub to: String,
}

impl PhysicalOperator for RenameOp {
    fn name(&self) -> &'static str {
        "rename"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = ops::rename(&input.relation, &self.from, &self.to)?;
        Ok(propagate_unary(relation, &input))
    }
}

/// Cartesian product `×`.
#[derive(Clone, Copy, Debug)]
pub struct ProductOp;

impl PhysicalOperator for ProductOp {
    fn name(&self) -> &'static str {
        "product"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let (left, right) = binary_inputs(inputs);
        let relation = ops::product(&left.relation, &right.relation)?;
        Ok(propagate_binary(relation, &left, &right))
    }
}

/// Natural join `⋈`.
#[derive(Clone, Copy, Debug)]
pub struct NaturalJoinOp;

impl PhysicalOperator for NaturalJoinOp {
    fn name(&self) -> &'static str {
        "join"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let (left, right) = binary_inputs(inputs);
        let relation = ops::natural_join(&left.relation, &right.relation)?;
        Ok(propagate_binary(relation, &left, &right))
    }
}

/// Union `∪`.
#[derive(Clone, Copy, Debug)]
pub struct UnionOp;

impl PhysicalOperator for UnionOp {
    fn name(&self) -> &'static str {
        "union"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let (left, right) = binary_inputs(inputs);
        let relation = ops::union(&left.relation, &right.relation)?;
        Ok(propagate_binary(relation, &left, &right))
    }
}

/// Difference; the unchecked `−` form verifies completeness at runtime
/// (unrestricted difference over uncertain inputs is outside positive UA).
#[derive(Clone, Copy, Debug)]
pub struct DifferenceOp {
    /// True for the `−c` form (Proposition 3.3).
    pub checked: bool,
}

impl PhysicalOperator for DifferenceOp {
    fn name(&self) -> &'static str {
        if self.checked {
            "diffc"
        } else {
            "diff"
        }
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let (left, right) = binary_inputs(inputs);
        if !self.checked
            && (!left.relation.is_complete_representation()
                || !right.relation.is_complete_representation())
        {
            return Err(EngineError::Unsupported(
                "difference over uncertain relations is outside positive UA; use −c on complete inputs"
                    .into(),
            ));
        }
        let relation = ops::difference_complete(&left.relation, &right.relation)?;
        Ok(propagate_binary(relation, &left, &right))
    }
}

/// `poss`: the possible tuples, as a complete relation.
#[derive(Clone, Copy, Debug)]
pub struct PossOp;

impl PhysicalOperator for PossOp {
    fn name(&self) -> &'static str {
        "poss"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = URelation::from_complete(&input.relation.possible_tuples());
        Ok(propagate_unary_complete(relation, &input))
    }
}

// ---- repair-key (§2.2 / §3) ------------------------------------------------

/// `repair-key_{A⃗@B}`: uncertainty introduction on a complete input.
#[derive(Clone, Debug)]
pub struct RepairKeyOp {
    /// Key attributes.
    pub key: Vec<String>,
    /// Weight attribute.
    pub weight: String,
}

impl PhysicalOperator for RepairKeyOp {
    fn name(&self) -> &'static str {
        "repair-key"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        if !input.relation.is_complete_representation() {
            return Err(EngineError::NotComplete(
                "repair-key requires a complete input relation".into(),
            ));
        }
        let complete = input.relation.possible_tuples();
        let key_refs: Vec<&str> = self.key.iter().map(String::as_str).collect();
        let groups = complete.group_by(&key_refs).map_err(EngineError::Pdb)?;

        let mut out = URelation::empty(complete.schema().clone());
        for (key_tuple, members) in groups {
            // Validate and normalise the weights.
            let mut weights = Vec::with_capacity(members.len());
            let mut total = 0.0;
            for t in &members {
                let w = complete
                    .numeric_value(t, &self.weight)
                    .map_err(EngineError::Pdb)?;
                if !w.is_finite() || w <= 0.0 {
                    return Err(EngineError::Pdb(pdb::PdbError::InvalidWeight(format!(
                        "weight {w} of tuple {t} is not a positive finite number"
                    ))));
                }
                total += w;
                weights.push(w);
            }
            if members.len() == 1 {
                // A single candidate is chosen with probability 1; no random
                // variable is needed.
                out.insert(Condition::always(), members[0].clone())?;
                continue;
            }
            // One fresh variable per key group (the Section 3 translation
            // names it after the key values; we add a counter for global
            // uniqueness across repeated repair-key applications).
            ctx.var_counter += 1;
            let var = Var::new(format!("rk{}:{}", ctx.var_counter, key_tuple));
            let dist: Vec<(Value, f64)> = weights
                .iter()
                .enumerate()
                .map(|(i, w)| (Value::Int(i as i64), w / total))
                .collect();
            ctx.database.wtable_mut().add_variable(var.clone(), dist)?;
            for (i, t) in members.iter().enumerate() {
                let cond = Condition::new([(var.clone(), Value::Int(i as i64))])?;
                out.insert(cond, t.clone())?;
            }
        }

        let errors = if input.errors.is_empty() {
            BTreeMap::new()
        } else {
            out.possible_tuples()
                .iter()
                .filter_map(|t| input.errors.get(t).map(|e| (t.clone(), *e)))
                .collect()
        };
        Ok(EvaluatedRelation {
            relation: out,
            complete: false,
            errors,
        })
    }
}

// ---- confidence computation (§4) -------------------------------------------

/// `conf` / `conf_{ε,δ}`: batched confidence computation over all tuple
/// lineages at once.
#[derive(Clone, Debug)]
pub struct ConfOp {
    /// Name of the appended probability attribute.
    pub prob_attr: String,
    /// `None` for exact model counting, `Some` for the Karp–Luby FPRAS.
    pub params: Option<FprasParams>,
}

impl PhysicalOperator for ConfOp {
    fn name(&self) -> &'static str {
        "conf"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        ctx.stats.conf_operators += 1;
        let compiled = CompiledSpace::compile(ctx.database.wtable())?;
        let schema = input
            .relation
            .schema()
            .with_appended(&self.prob_attr)
            .map_err(EngineError::Pdb)?;

        // Batch: every tuple's DNF lineage in one pass, all estimated
        // concurrently by the shared estimator layer.
        let tuple_events = input.relation.tuple_events();
        let events: Vec<DnfEvent> = tuple_events
            .iter()
            .map(|(_, conditions)| compiled.event(conditions))
            .collect::<Result<_>>()?;
        let estimator: Box<dyn ConfidenceEstimator> = match self.params {
            None => Box::new(ExactEstimator),
            Some(params) => Box::new(FprasEstimator::new(params)),
        };
        // Exact estimation consumes no randomness; leave the caller's RNG
        // stream untouched in that case.
        let master_seed = if self.params.is_some() {
            ctx.rng.next_u64()
        } else {
            0
        };
        let estimates = estimator
            .estimate_batch(&events, compiled.space(), master_seed)
            .map_err(EngineError::Confidence)?;

        let mut out = URelation::empty(schema);
        let mut errors: BTreeMap<Tuple, f64> = BTreeMap::new();
        for ((t, _), estimate) in tuple_events.iter().zip(&estimates) {
            // Stats keep the pre-pipeline semantics: exact mode counts model-
            // counting calls, FPRAS mode counts samples (0 for trivial
            // events, which are answered without sampling).
            if self.params.is_none() {
                ctx.stats.exact_confidence_calls += 1;
            } else {
                ctx.stats.karp_luby_samples += estimate.samples;
            }
            let out_t = t.with_appended(Value::float(estimate.estimate));
            out.insert(Condition::always(), out_t.clone())?;
            let e = input.error_of(t);
            if e > 0.0 {
                errors.insert(out_t, e);
            }
        }
        Ok(EvaluatedRelation {
            relation: out,
            complete: true,
            errors,
        })
    }
}

/// `cert`: the `conf = 1` test — exactly the singularity of Example 5.7 — so
/// it is always answered by exact model counting (batched).
#[derive(Clone, Copy, Debug)]
pub struct CertOp;

impl PhysicalOperator for CertOp {
    fn name(&self) -> &'static str {
        "cert"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let compiled = CompiledSpace::compile(ctx.database.wtable())?;
        let tuple_events = input.relation.tuple_events();
        let events: Vec<DnfEvent> = tuple_events
            .iter()
            .map(|(_, conditions)| compiled.event(conditions))
            .collect::<Result<_>>()?;
        let estimates = ExactEstimator
            .estimate_batch(&events, compiled.space(), 0)
            .map_err(EngineError::Confidence)?;

        let mut out = URelation::empty(input.relation.schema().clone());
        let mut errors = BTreeMap::new();
        for ((t, _), estimate) in tuple_events.iter().zip(&estimates) {
            ctx.stats.exact_confidence_calls += 1;
            if (estimate.estimate - 1.0).abs() < 1e-9 {
                out.insert(Condition::always(), t.clone())?;
                let e = input.error_of(t);
                if e > 0.0 {
                    errors.insert(t.clone(), e);
                }
            }
        }
        Ok(EvaluatedRelation {
            relation: out,
            complete: true,
            errors,
        })
    }
}

// ---- approximate selection σ̂ (§5 Figure 3, §6) -----------------------------

/// `σ̂_{φ(conf[A⃗₁], …, conf[A⃗_k])}` with its physical decision mode baked in
/// at lowering time.
#[derive(Clone, Debug)]
pub struct ApproxSelectOp {
    /// Confidence terms the predicate refers to.
    pub terms: Vec<ConfTerm>,
    /// Predicate over the term placeholders.
    pub predicate: Predicate,
    /// Smallest relative half-width refined to.
    pub epsilon0: f64,
    /// Per-operator error bound.
    pub delta: f64,
    /// The decision strategy chosen by the engine configuration.
    pub mode: ApproxSelectMode,
}

impl PhysicalOperator for ApproxSelectOp {
    fn name(&self) -> &'static str {
        "approx-select"
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        ctx.stats.approx_select_operators += 1;
        algebra::check_conf_terms(&self.terms, input.relation.schema())?;
        let compiled = CompiledSpace::compile(ctx.database.wtable())?;

        // Projections π_{A⃗_i}(R), one per confidence term.
        let mut projections = Vec::with_capacity(self.terms.len());
        for term in &self.terms {
            let items: Vec<ProjItem> = term.attrs.iter().map(ProjItem::attr).collect();
            projections.push(ops::project(&input.relation, &items)?);
        }

        // The candidate output tuples: the natural join of the possible
        // tuples of the projections (over the union of the term attributes).
        let out_attrs: Vec<String> = {
            let mut attrs = Vec::new();
            for term in &self.terms {
                for a in &term.attrs {
                    if !attrs.contains(a) {
                        attrs.push(a.clone());
                    }
                }
            }
            attrs
        };
        let out_schema = Schema::new(out_attrs.clone()).map_err(EngineError::Pdb)?;
        let mut candidates =
            URelation::from_complete(&pdb::Relation::new(Schema::empty(), [Tuple::empty()])?);
        for proj in &projections {
            candidates = ops::natural_join(
                &candidates,
                &URelation::from_complete(&proj.possible_tuples()),
            )?;
        }
        // Reorder candidate columns to the declared output order.
        let reorder: Vec<ProjItem> = out_attrs.iter().map(ProjItem::attr).collect();
        let candidates = ops::project(&candidates, &reorder)?;

        // Compile the predicate over the term placeholders.
        let placeholders: Vec<String> = self.terms.iter().map(|t| t.name.clone()).collect();
        let compiled_predicate = compile_predicate(&self.predicate, &placeholders)?;

        // The input-error contribution: the confidence terms aggregate over
        // the whole input relation, so every candidate depends on every
        // input tuple (cf. Example 6.5).
        let input_error: f64 = input.errors.values().sum::<f64>().min(1.0);

        // The k events of every candidate, in candidate order.  The term
        // attribute indices are hoisted out of the candidate loop.
        let term_indices: Vec<Vec<usize>> = self
            .terms
            .iter()
            .map(|term| {
                candidates
                    .schema()
                    .indices_of(&term.attrs)
                    .map_err(EngineError::Pdb)
            })
            .collect::<Result<_>>()?;
        let candidate_tuples: Vec<Tuple> = candidates.possible_tuples().iter().cloned().collect();
        ctx.stats.approx_select_decisions += candidate_tuples.len() as u64;
        // The k events of candidate i occupy events[i*k .. (i+1)*k]: one flat
        // vector shared by every decision mode, no per-candidate re-clone.
        let mut events: Vec<DnfEvent> =
            Vec::with_capacity(candidate_tuples.len() * self.terms.len());
        for candidate in &candidate_tuples {
            for (idx, proj) in term_indices.iter().zip(&projections) {
                let key = candidate.project(idx);
                events.push(compiled.event(&proj.conditions_for(&key))?);
            }
        }

        // Decide every candidate: (keep, decision error bound).
        let decisions = self.decide_candidates(
            candidate_tuples.len(),
            &events,
            &compiled,
            &compiled_predicate,
            ctx,
        )?;
        debug_assert_eq!(decisions.len(), candidate_tuples.len());

        let mut out = URelation::empty(out_schema);
        let mut errors: BTreeMap<Tuple, f64> = BTreeMap::new();
        for (candidate, (keep, decision_error)) in candidate_tuples.iter().zip(decisions) {
            let total_error = (decision_error + input_error).min(1.0);
            if keep {
                out.insert(Condition::always(), candidate.clone())?;
                if total_error > 0.0 {
                    errors.insert(candidate.clone(), total_error);
                }
            } else if total_error > 0.0 {
                // Dropped tuples may also be wrongly dropped; their error is
                // recorded so that downstream negation-free operators (and
                // the adaptive driver) can still reason about them.  They
                // are keyed by the candidate tuple even though it is absent.
                errors.insert(candidate.clone(), total_error);
            }
        }

        Ok(EvaluatedRelation {
            relation: out,
            complete: false,
            errors,
        })
    }
}

impl ApproxSelectOp {
    /// Decides all `num_candidates` candidates under the operator's mode;
    /// candidate `i`'s `k` events are `events[i*k .. (i+1)*k]` (`k` may be 0:
    /// a term-less predicate is decided once per candidate on no values).
    /// Monte Carlo modes run candidates/events concurrently with per-index
    /// sub-RNGs derived from one master seed, so the outcome is
    /// deterministic per seed.
    fn decide_candidates(
        &self,
        num_candidates: usize,
        events: &[DnfEvent],
        compiled: &CompiledSpace,
        predicate: &ApproxPredicate,
        ctx: &mut ExecContext<'_>,
    ) -> Result<Vec<(bool, f64)>> {
        let k = self.terms.len();
        debug_assert_eq!(events.len(), num_candidates * k);
        match self.mode {
            ApproxSelectMode::Exact => {
                let estimates = ExactEstimator
                    .estimate_batch(events, compiled.space(), 0)
                    .map_err(EngineError::Confidence)?;
                ctx.stats.exact_confidence_calls += estimates.len() as u64;
                (0..num_candidates)
                    .map(|i| {
                        let chunk = &estimates[i * k..(i + 1) * k];
                        let values: Vec<f64> = chunk.iter().map(|e| e.estimate).collect();
                        Ok((predicate.eval(&values)?, 0.0))
                    })
                    .collect()
            }
            ApproxSelectMode::FixedIterations(l) => {
                let master_seed = ctx.rng.next_u64();
                let estimates = BatchedIncrementalEstimator::new(l)
                    .estimate_batch(events, compiled.space(), master_seed)
                    .map_err(EngineError::Confidence)?;
                for estimate in &estimates {
                    ctx.stats.karp_luby_samples += estimate.samples;
                }
                (0..num_candidates)
                    .map(|i| {
                        let chunk = &estimates[i * k..(i + 1) * k];
                        let values: Vec<f64> = chunk.iter().map(|e| e.estimate).collect();
                        let keep = predicate.eval(&values)?;
                        let eps_psi = predicate.epsilon_homogeneous(&values)?;
                        let eps = eps_psi.max(self.epsilon0).min(0.999_999);
                        let mut bound = 0.0;
                        for estimate in chunk {
                            bound += if estimate.exact {
                                0.0
                            } else {
                                chernoff::delta_prime(eps, l)?
                            };
                        }
                        Ok((keep, bound.min(0.5)))
                    })
                    .collect()
            }
            ApproxSelectMode::Adaptive => {
                let params = ApproximationParams::new(self.epsilon0, self.delta)?;
                let master_seed = ctx.rng.next_u64();
                // One Figure 3 run per candidate, all candidates in
                // parallel, each on its own seeded RNG.
                let outcomes: Vec<approx::Decision> = (0..num_candidates)
                    .into_par_iter()
                    .map(|i| {
                        let mut rng = ChaCha8Rng::seed_from_u64(event_seed(master_seed, i));
                        let mut estimators: Vec<IncrementalEstimator> = events[i * k..(i + 1) * k]
                            .iter()
                            .map(|event| {
                                IncrementalEstimator::new(event.clone(), compiled.space().clone())
                                    .map_err(EngineError::Confidence)
                            })
                            .collect::<Result<_>>()?;
                        approximate_predicate(predicate, &mut estimators, params, &mut rng)
                            .map_err(EngineError::Approx)
                    })
                    .collect::<Result<_>>()?;
                for decision in &outcomes {
                    ctx.stats.karp_luby_samples += decision.samples;
                }
                Ok(outcomes
                    .into_iter()
                    .map(|d| (d.value, d.error_bound))
                    .collect())
            }
        }
    }
}
