//! The physical operator pipeline: executing a [`LogicalPlan`] over a
//! U-relational database.
//!
//! [`PhysicalPlan::lower`] turns each logical node into a concrete
//! [`PhysicalOperator`] implementation, resolving every accuracy annotation
//! against the engine's [`EvalConfig`] — `conf` becomes exact model counting
//! or the Karp–Luby FPRAS, `σ̂` becomes exact decisions, the adaptive
//! Figure 3 algorithm, or a fixed iteration budget.  [`PhysicalPlan::execute`]
//! then schedules the nodes over value slots, moving each intermediate
//! result to its last consumer instead of cloning.
//!
//! Operator → paper section map:
//!
//! | operator                                   | section             |
//! |--------------------------------------------|---------------------|
//! | [`ScanOp`], [`SelectOp`], [`ProjectOp`], [`ExtendOp`], [`RenameOp`], [`ProductOp`], [`NaturalJoinOp`], [`UnionOp`], [`DifferenceOp`] | §3 parsimonious translation |
//! | [`RepairKeyOp`]                            | §2.2 / §3           |
//! | [`PossOp`], [`CertOp`]                     | §2 (`cert` = the `conf = 1` test of Example 5.7) |
//! | [`ConfOp`]                                 | §4 (exact / Prop. 4.2 FPRAS) |
//! | [`ApproxSelectOp`]                         | §5 Figure 3, §6 error propagation (Lemma 6.4) |
//!
//! The confidence-bearing operators (`conf`, `cert`, `σ̂`) are *batched*:
//! they collect the DNF lineages of all tuples via the memoised
//! [`CompiledSpace::relation_events`] batch and hand it to the
//! [`ConfidenceEstimator`] layer, which estimates every event in parallel
//! with a deterministic per-event sub-RNG.  Adaptive `σ̂` decisions are
//! likewise run concurrently across candidate tuples, one seeded RNG per
//! candidate, so results are identical for a fixed seed no matter how many
//! threads run.
//!
//! Execution itself is a **sharded slot executor**:
//!
//! * every *pure* operator (the per-world relational algebra, which touches
//!   neither the RNG nor the database) runs as soon as its inputs are ready,
//!   and all ready pure operators of a wave run concurrently — independent
//!   DAG branches overlap;
//! * large inputs are split into partitioned chunks
//!   ([`URelation::partition`]) and the per-chunk results merged — a
//!   set-semantics merge, so chunked output is identical to single-batch
//!   output; the chunked join additionally probes one shared key index
//!   instead of rescanning the right side per row;
//! * *stateful* operators (repair-key, the confidence operators) execute
//!   sequentially in node-id order, which keeps every RNG draw and variable
//!   name identical to the sequential reference schedule — results are
//!   bit-identical for a fixed seed regardless of shard count or thread
//!   count ([`PhysicalPlan::execute_sequential`] is the property-tested
//!   reference).
//!
//! [`PhysicalPlan::execute_capturing`] additionally snapshots the slot state
//! at the *sampling frontier* — just before the first operator that consumes
//! randomness — and [`PhysicalPlan::resume`] restarts from such a snapshot,
//! which is how the serving layer makes the steady-state cost of a repeated
//! query estimation-only.

use crate::delta::{self, DeltaInput};
use crate::error::{EngineError, Result};
use crate::exec::{ApproxSelectMode, ConfidenceMode, EvalConfig, EvalStats, EvaluatedRelation};
use crate::ops;
use crate::predicate_compile::compile_predicate;
use crate::space::{CompiledSpace, SpaceCache};
use algebra::{Accuracy, ConfTerm, LogicalOp, LogicalPlan, Predicate, ProjItem};
use approx::{
    approximate_predicate, evaluate_over_box, ApproxError, ApproxPredicate, ApproximationParams,
    BoxVerdict, Interval, Orthotope,
};
use confidence::{
    chernoff, event_bounds_with_limit, event_seed, BatchedIncrementalEstimator, ConfidenceError,
    ConfidenceEstimator, DnfEvent, EventBounds, ExactEstimator, FprasEstimator, FprasParams,
    IncrementalEstimator,
};
use pdb::{Schema, Tuple, Value};
use rand::RngCore;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::fmt;
use urel::{ColumnarChunk, Condition, UDatabase, URelation, Var};

/// Minimum number of input rows before an operator is worth chunking.
const SHARD_MIN_ROWS: usize = 128;

/// Mutable evaluation state threaded through the pipeline.
pub struct ExecContext<'a> {
    /// The engine configuration the plan was lowered with.
    pub config: EvalConfig,
    /// The database being queried; `repair-key` adds variables and the final
    /// state is returned with the output.
    pub database: UDatabase,
    /// Accumulated statistics.
    pub stats: EvalStats,
    /// Counter for globally unique `repair-key` variable names.
    pub var_counter: usize,
    /// The caller's random source; operators draw *master seeds* from it and
    /// derive per-event/per-candidate sub-RNGs, so parallel estimation stays
    /// deterministic.
    pub rng: &'a mut dyn RngCore,
    /// Memoised W-table compilation (and, inside each compiled space, the
    /// per-relation lineage batches) shared by every confidence-bearing
    /// operator of this evaluation.
    pub spaces: SpaceCache,
    /// Cooperative deadline threaded into the sampling loops: estimation
    /// kernels probe the clock between sample blocks/batches and abort with
    /// `DeadlineExceeded { stage: "estimate" }` once it passes.  `None`
    /// never interrupts.  The probes draw no randomness, so runs that
    /// complete are bit-identical to deadline-free runs.
    pub deadline: Option<std::time::Instant>,
    /// The serving engine's shared block scheduler, present only on
    /// shared-sampling serving paths.  Purely a tally cache: answers are
    /// identical with or without it (canonical content-derived streams),
    /// so plain evaluations pass `None`.
    pub sampler: Option<std::sync::Arc<crate::sched::SampleScheduler>>,
}

/// Read-only state available to pure operators, which the slot executor may
/// run concurrently.
pub struct PureCtx<'a> {
    /// The database (base relations; pure operators never mutate it).
    pub database: &'a UDatabase,
    /// Number of chunks large inputs are split into (≤ 1 disables chunking).
    pub shards: usize,
    /// Spill tier budget ([`EvalConfig::spill_budget_bytes`]); `0` keeps
    /// every chunk resident.  A positive budget raises the chunk count so no
    /// chunk's input weighs much more than the budget, and chunk outputs
    /// above it go through digest-verified temporary segments.
    pub spill_budget: usize,
}

/// How a physical operator interacts with shared evaluation state; drives
/// the slot executor's schedule and the serving layer's snapshot point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Reads only its inputs and base relations: safe to run concurrently
    /// with other pure operators.
    Pure,
    /// Mutates the evaluation context (introduces variables, accumulates
    /// statistics) but consumes no randomness: deterministic, executed in
    /// node-id order.
    Stateful,
    /// Stateful *and* draws master seeds from the context RNG (Monte Carlo
    /// estimation): everything at or above the first such node must re-run
    /// per evaluation.
    Sampling,
}

/// One operator of a physical plan.
pub trait PhysicalOperator: fmt::Debug {
    /// Operator mnemonic for plan rendering.
    fn name(&self) -> &'static str;

    /// The operator's scheduling class.
    fn class(&self) -> OpClass;

    /// Executes a pure operator on its (already evaluated) inputs; pure
    /// operators implement this and inherit
    /// [`execute`](PhysicalOperator::execute), which delegates here.
    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let _ = (inputs, pctx);
        Err(EngineError::Invariant(format!(
            "operator {} is {:?} and must override execute",
            self.name(),
            self.class()
        )))
    }

    /// Executes the operator on its (already evaluated) inputs.
    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let pctx = PureCtx {
            database: &ctx.database,
            shards: ctx.config.shards,
            spill_budget: ctx.config.spill_budget_bytes,
        };
        self.execute_pure(inputs, &pctx)
    }

    /// Incrementally re-evaluates a *pure* operator from its old output and
    /// per-input row deltas, producing the same relation a fresh
    /// [`execute_pure`](PhysicalOperator::execute_pure) over the new inputs
    /// would (bit for bit — the rules of [`crate::delta`]).  Returns
    /// `Ok(None)` when the operator has no incremental rule (stateful and
    /// sampling operators, cartesian products, difference), in which case
    /// the caller falls back to recomputation.
    fn execute_delta(
        &self,
        old_output: &URelation,
        inputs: &[DeltaInput<'_>],
    ) -> Result<Option<URelation>> {
        let _ = (old_output, inputs);
        Ok(None)
    }
}

/// A lowered, executable plan.
pub struct PhysicalPlan {
    nodes: Vec<PhysicalNode>,
    consumer_counts: Vec<usize>,
    root: usize,
    /// Fingerprint of (node labels, operator shapes, lowering config); ties
    /// an [`ExecSnapshot`] to the plan that produced it.
    signature: u64,
}

/// The mutable slot state of one plan execution: which nodes have run, their
/// results, and how many consumers each result still has.
#[derive(Clone)]
struct SlotState {
    slots: Vec<Option<EvaluatedRelation>>,
    remaining: Vec<usize>,
    done: Vec<bool>,
}

impl SlotState {
    fn fresh(plan: &PhysicalPlan) -> SlotState {
        SlotState {
            slots: (0..plan.nodes.len()).map(|_| None).collect(),
            remaining: plan.consumer_counts.clone(),
            done: vec![false; plan.nodes.len()],
        }
    }
}

/// A resumable snapshot of a partially executed plan, captured at the
/// sampling frontier by [`PhysicalPlan::execute_capturing`].
///
/// Everything below the frontier is deterministic for a fixed database, so
/// the serving layer evaluates a prepared query by cloning this snapshot and
/// running only the sampling suffix — parse, validation, lowering, the
/// relational prefix, lineage extraction and W-table compilation are all
/// skipped, leaving estimation as the steady-state cost.
#[derive(Clone)]
pub struct ExecSnapshot {
    state: SlotState,
    /// Signature of the plan the snapshot was captured on; resuming on any
    /// other plan is rejected.
    plan_signature: u64,
    /// Database state at the frontier (includes prefix repair-key variables).
    database: UDatabase,
    var_counter: usize,
    stats: EvalStats,
    spaces: SpaceCache,
}

impl ExecSnapshot {
    /// True if the snapshot covers the whole plan (no sampling operator:
    /// resuming just returns the cached result).
    pub fn is_complete(&self) -> bool {
        self.state.done.iter().all(|&d| d)
    }

    /// The database state at the snapshot point.
    pub fn database(&self) -> &UDatabase {
        &self.database
    }

    /// Which nodes had executed when the snapshot was captured.
    pub fn done_flags(&self) -> &[bool] {
        &self.state.done
    }

    /// The retained slot values of the snapshot.  Capturing runs keep the
    /// result of *every* prefix node alive (a phantom consumer per node), so
    /// this iterates over the full deterministic prefix — including interior
    /// results like a join under a projection — which is what the serving
    /// layer's cross-query snapshot pool stores, content-addressed by
    /// sub-plan digest.
    pub fn live_slots(&self) -> impl Iterator<Item = (usize, &EvaluatedRelation)> {
        self.state
            .slots
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.as_ref().map(|value| (id, value)))
    }

    /// The repair-key variable counter at the snapshot point.
    pub fn var_counter(&self) -> usize {
        self.var_counter
    }

    /// The statistics accumulated by the snapshotted prefix.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// The memoised W-table compilations of the snapshotted prefix.
    pub fn spaces(&self) -> &SpaceCache {
        &self.spaces
    }
}

impl fmt::Debug for ExecSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let done = self.state.done.iter().filter(|&&d| d).count();
        f.debug_struct("ExecSnapshot")
            .field("nodes_done", &done)
            .field("nodes_total", &self.state.done.len())
            .finish()
    }
}

/// One node of a [`PhysicalPlan`].
pub struct PhysicalNode {
    /// The operator implementation.
    pub operator: Box<dyn PhysicalOperator + Send + Sync>,
    /// Input slots (topologically earlier nodes).
    pub inputs: Vec<usize>,
    /// The subquery label inherited from the logical node.
    pub label: String,
}

impl fmt::Debug for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PhysicalPlan (root = #{})", self.root)?;
        for (id, node) in self.nodes.iter().enumerate() {
            let inputs: Vec<String> = node.inputs.iter().map(|i| format!("#{i}")).collect();
            writeln!(
                f,
                "  #{id} {}({})  ← {}",
                node.operator.name(),
                inputs.join(", "),
                node.label
            )?;
        }
        Ok(())
    }
}

impl PhysicalPlan {
    /// Lowers a logical plan, resolving accuracy annotations against the
    /// engine configuration.
    pub fn lower(plan: &LogicalPlan, config: EvalConfig) -> Result<PhysicalPlan> {
        let mut nodes = Vec::with_capacity(plan.len());
        for node in plan.nodes() {
            let operator: Box<dyn PhysicalOperator + Send + Sync> = match &node.op {
                LogicalOp::Scan { relation } => Box::new(ScanOp {
                    relation: relation.clone(),
                }),
                LogicalOp::Select { predicate } => Box::new(SelectOp {
                    predicate: predicate.clone(),
                }),
                LogicalOp::Project { items } => Box::new(ProjectOp {
                    items: items.clone(),
                }),
                LogicalOp::Extend { items } => Box::new(ExtendOp {
                    items: items.clone(),
                }),
                LogicalOp::Rename { from, to } => Box::new(RenameOp {
                    from: from.clone(),
                    to: to.clone(),
                }),
                LogicalOp::Product => Box::new(ProductOp),
                LogicalOp::NaturalJoin => Box::new(NaturalJoinOp),
                LogicalOp::Union => Box::new(UnionOp),
                LogicalOp::Difference { checked } => Box::new(DifferenceOp { checked: *checked }),
                LogicalOp::Poss => Box::new(PossOp),
                LogicalOp::Cert => Box::new(CertOp),
                LogicalOp::RepairKey { key, weight } => Box::new(RepairKeyOp {
                    key: key.clone(),
                    weight: weight.clone(),
                }),
                LogicalOp::Conf { prob_attr } => {
                    let params = match node.accuracy {
                        // An explicit `conf_{ε,δ}` always uses its own
                        // parameters.
                        Accuracy::Fpras { epsilon, delta } => Some(
                            FprasParams::new(epsilon, delta).map_err(EngineError::Confidence)?,
                        ),
                        // A plain `conf` follows the engine configuration.
                        _ => match config.confidence {
                            ConfidenceMode::Exact => None,
                            ConfidenceMode::Fpras { epsilon, delta } => Some(
                                FprasParams::new(epsilon, delta)
                                    .map_err(EngineError::Confidence)?,
                            ),
                        },
                    };
                    Box::new(ConfOp {
                        prob_attr: prob_attr.clone(),
                        params,
                    })
                }
                LogicalOp::ApproxSelect { terms, predicate } => {
                    let (epsilon0, delta) = match node.accuracy {
                        Accuracy::ApproxSelect { epsilon0, delta } => (epsilon0, delta),
                        other => {
                            return Err(EngineError::Invariant(format!(
                                "σ̂ plan node carries accuracy {other:?} instead of \
                                 Accuracy::ApproxSelect"
                            )))
                        }
                    };
                    Box::new(ApproxSelectOp {
                        terms: terms.clone(),
                        predicate: predicate.clone(),
                        epsilon0,
                        delta,
                        mode: config.approx_select,
                    })
                }
            };
            nodes.push(PhysicalNode {
                operator,
                inputs: node.inputs.clone(),
                label: node.label.clone(),
            });
        }
        let signature = {
            use std::hash::{Hash, Hasher};
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            format!("{config:?}").hash(&mut hasher);
            for node in plan.nodes() {
                node.label.hash(&mut hasher);
                node.inputs.hash(&mut hasher);
            }
            plan.root().hash(&mut hasher);
            hasher.finish()
        };
        Ok(PhysicalPlan {
            nodes,
            consumer_counts: plan.consumer_counts(),
            root: plan.root(),
            signature,
        })
    }

    /// The nodes in execution order.
    pub fn nodes(&self) -> &[PhysicalNode] {
        &self.nodes
    }

    /// The root (output) node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node id of the *sampling frontier*: the smallest id of an operator
    /// that consumes randomness (`len()` if the plan is fully deterministic).
    pub fn sampling_frontier(&self) -> usize {
        self.nodes
            .iter()
            .position(|n| n.operator.class() == OpClass::Sampling)
            .unwrap_or(self.nodes.len())
    }

    /// For every node, whether it belongs to the *deterministic prefix*: the
    /// set of nodes that have executed when
    /// [`execute_capturing`](PhysicalPlan::execute_capturing) reaches the
    /// sampling frontier and captures its snapshot.
    ///
    /// The set is a pure function of the plan: sampling nodes never belong;
    /// other stateful nodes belong iff their id precedes the frontier (they
    /// execute in id order); pure nodes belong iff all their inputs do (the
    /// executor runs pure waves to a fixpoint before touching the frontier).
    /// In particular every scan belongs — a plan's whole relation footprint
    /// is always part of its prefix.
    pub fn prefix_done_flags(&self) -> Vec<bool> {
        let frontier = self.sampling_frontier();
        let mut done = vec![false; self.nodes.len()];
        for id in 0..self.nodes.len() {
            done[id] = match self.nodes[id].operator.class() {
                OpClass::Sampling => false,
                OpClass::Stateful => id < frontier,
                OpClass::Pure => self.nodes[id].inputs.iter().all(|&i| done[i]),
            };
        }
        done
    }

    /// The ids of the stateful (non-pure, non-sampling) nodes of the
    /// deterministic prefix, in execution (id) order.
    ///
    /// This sequence determines every context effect of the prefix — the
    /// repair-key variables added to the database (and hence the variable
    /// counter), the statistics, and the compiled probability spaces — so
    /// two plans whose stateful prefix sequences have equal sub-plan content
    /// can share one captured prefix snapshot bit for bit.
    pub fn stateful_prefix(&self) -> Vec<usize> {
        let done = self.prefix_done_flags();
        (0..self.nodes.len())
            .filter(|&id| done[id] && self.nodes[id].operator.class() != OpClass::Pure)
            .collect()
    }

    /// Rebuilds a resumable [`ExecSnapshot`] of this plan's deterministic
    /// prefix from content-addressed parts (the serving layer's cross-query
    /// snapshot pool stores them per sub-plan rather than per query).
    ///
    /// `done` marks the nodes to restore as already executed.  It must keep
    /// every stateful prefix node done (the supplied context effects —
    /// database, variable counter, statistics — are those of the full
    /// stateful prefix) but may mark *pure* prefix nodes undone, in which
    /// case resuming recomputes them from the restored database: this is how
    /// the serving layer re-warms exactly the sub-plans an update
    /// invalidated.  `slots[i]` must be `Some` for every done node `i` whose
    /// result an undone node (or the root of a complete prefix) still
    /// consumes; pending-consumer counts are recomputed from the plan
    /// structure, so the resulting snapshot is exactly what
    /// [`execute_capturing`](PhysicalPlan::execute_capturing) would have
    /// captured given the same prefix effects.
    pub fn assemble_snapshot(
        &self,
        done: Vec<bool>,
        slots: Vec<Option<EvaluatedRelation>>,
        database: UDatabase,
        var_counter: usize,
        stats: EvalStats,
        spaces: SpaceCache,
    ) -> Result<ExecSnapshot> {
        if slots.len() != self.nodes.len() || done.len() != self.nodes.len() {
            return Err(EngineError::Invariant(format!(
                "snapshot assembly got {} slots / {} done flags for a plan of {} nodes",
                slots.len(),
                done.len(),
                self.nodes.len()
            )));
        }
        let prefix = self.prefix_done_flags();
        for id in 0..self.nodes.len() {
            let class = self.nodes[id].operator.class();
            if done[id] && !prefix[id] {
                return Err(EngineError::Invariant(format!(
                    "snapshot assembly marks node #{id} done outside the deterministic prefix"
                )));
            }
            if class != OpClass::Pure && done[id] != prefix[id] {
                return Err(EngineError::Invariant(format!(
                    "snapshot assembly must keep the stateful prefix intact, \
                     but node #{id} ({}) deviates",
                    self.nodes[id].operator.name()
                )));
            }
        }
        let mut remaining = vec![0usize; self.nodes.len()];
        // A done node's pending-consumer count is the number of its consumer
        // occurrences in the suffix (plus one for the root: the query output
        // is taken only at the end of the run); an undone node's consumers
        // are all undone, so the same sum yields its full consumer count.
        for (id, node) in self.nodes.iter().enumerate() {
            if done[id] {
                continue;
            }
            for &input in &node.inputs {
                remaining[input] += 1;
            }
        }
        remaining[self.root] += 1;
        for id in 0..self.nodes.len() {
            let needed = done[id] && remaining[id] > 0;
            if needed && slots[id].is_none() {
                return Err(EngineError::Invariant(format!(
                    "snapshot assembly is missing the live result of prefix node #{id} ({})",
                    self.nodes[id].operator.name()
                )));
            }
        }
        Ok(ExecSnapshot {
            state: SlotState {
                slots: slots
                    .into_iter()
                    .enumerate()
                    .map(|(id, slot)| if done[id] { slot } else { None })
                    .collect(),
                remaining,
                done,
            },
            plan_signature: self.signature,
            database,
            var_counter,
            stats,
            spaces,
        })
    }

    /// Executes the pipeline with the sharded slot executor; results are
    /// bit-identical to [`execute_sequential`](PhysicalPlan::execute_sequential)
    /// for a fixed seed.
    pub fn execute(&self, ctx: &mut ExecContext<'_>) -> Result<EvaluatedRelation> {
        self.run(ctx, SlotState::fresh(self), false)
            .map(|(result, _)| result)
    }

    /// Executes the pipeline and captures a resumable [`ExecSnapshot`] at the
    /// sampling frontier (the whole plan, if it is deterministic).
    pub fn execute_capturing(
        &self,
        ctx: &mut ExecContext<'_>,
    ) -> Result<(EvaluatedRelation, ExecSnapshot)> {
        let (result, snapshot) = self.run(ctx, SlotState::fresh(self), true)?;
        Ok((
            result,
            snapshot.expect("capturing execution always produces a snapshot"),
        ))
    }

    /// Resumes execution from a snapshot captured on this plan: restores the
    /// slot, database and statistics state of the deterministic prefix and
    /// runs only the remaining (sampling) suffix.
    pub fn resume(
        &self,
        ctx: &mut ExecContext<'_>,
        snapshot: &ExecSnapshot,
    ) -> Result<EvaluatedRelation> {
        self.resume_owned(ctx, snapshot.clone())
    }

    /// [`resume`](PhysicalPlan::resume) taking the snapshot by value: the
    /// restored database and slot state are moved into the execution
    /// context instead of cloned.  The serving layer assembles a fresh
    /// throwaway snapshot per warm request, so this saves a full database +
    /// slot copy on its hot path.
    pub fn resume_owned(
        &self,
        ctx: &mut ExecContext<'_>,
        snapshot: ExecSnapshot,
    ) -> Result<EvaluatedRelation> {
        let state = self.restore(ctx, snapshot)?;
        self.run(ctx, state, false).map(|(result, _)| result)
    }

    /// Like [`resume_owned`](PhysicalPlan::resume_owned), but re-captures a
    /// snapshot at the sampling frontier.  Used by the serving layer when a
    /// snapshot was assembled with *demoted* pure nodes (their pooled
    /// results were invalidated by an update, or never computed by the
    /// query that pooled the prefix): the demoted nodes recompute during
    /// the resume, and the re-captured snapshot carries their fresh results
    /// back to the pool.
    pub fn resume_capturing(
        &self,
        ctx: &mut ExecContext<'_>,
        snapshot: ExecSnapshot,
    ) -> Result<(EvaluatedRelation, ExecSnapshot)> {
        let state = self.restore(ctx, snapshot)?;
        let (result, recaptured) = self.run(ctx, state, true)?;
        Ok((
            result,
            recaptured.expect("capturing execution always produces a snapshot"),
        ))
    }

    /// Moves a snapshot's context effects into `ctx` and returns its slot
    /// state for the run.  The space cache is still forked: a snapshot
    /// obtained by `clone` shares its cache map with the original, and
    /// states compiled during this resume must not leak back.
    fn restore(&self, ctx: &mut ExecContext<'_>, snapshot: ExecSnapshot) -> Result<SlotState> {
        if snapshot.plan_signature != self.signature {
            return Err(EngineError::Invariant(
                "snapshot resumed on a plan other than the one that captured it \
                 (different query, or different lowering configuration)"
                    .into(),
            ));
        }
        ctx.database = snapshot.database;
        ctx.var_counter = snapshot.var_counter;
        ctx.stats = snapshot.stats;
        ctx.spaces = snapshot.spaces.fork();
        Ok(snapshot.state)
    }

    /// The single-threaded, single-batch reference schedule: every node runs
    /// in id order on one unchunked batch.  The sharded executor is
    /// property-tested to produce bit-identical results; this stays as the
    /// differential baseline (and as documentation of the semantics).
    pub fn execute_sequential(&self, ctx: &mut ExecContext<'_>) -> Result<EvaluatedRelation> {
        // The single-batch override is restored by the guard's destructor on
        // *every* exit path — a `?` return from a failing operator must not
        // leak `shards = 1` into the caller's subsequent evaluations.
        let mut ctx = ShardWidthOverride::new(ctx, 1);
        let mut state = SlotState::fresh(self);
        for id in 0..self.nodes.len() {
            let inputs = self.gather_inputs(id, &mut state);
            state.slots[id] = Some(self.nodes[id].operator.execute(inputs, &mut ctx)?);
            state.done[id] = true;
        }
        Ok(state.slots[self.root]
            .take()
            .expect("the root slot holds the query result"))
    }

    /// Collects (moves or clones) a node's inputs out of the slots.
    fn gather_inputs(&self, id: usize, state: &mut SlotState) -> Vec<EvaluatedRelation> {
        let node = &self.nodes[id];
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for &i in &node.inputs {
            state.remaining[i] -= 1;
            let value = if state.remaining[i] == 0 {
                state.slots[i].take()
            } else {
                state.slots[i].clone()
            };
            inputs.push(value.expect("topological order: input evaluated before use"));
        }
        inputs
    }

    /// Runs every currently ready pure node (concurrently when there are
    /// several); returns whether any node ran.
    fn run_pure_wave(&self, state: &mut SlotState, pctx: &PureCtx<'_>) -> Result<bool> {
        let ready: Vec<usize> = (0..self.nodes.len())
            .filter(|&id| {
                !state.done[id]
                    && self.nodes[id].operator.class() == OpClass::Pure
                    && self.nodes[id].inputs.iter().all(|&i| state.done[i])
            })
            .collect();
        if ready.is_empty() {
            return Ok(false);
        }
        let work: Vec<(usize, Vec<EvaluatedRelation>)> = ready
            .into_iter()
            .map(|id| (id, self.gather_inputs(id, state)))
            .collect();
        let results: Vec<(usize, EvaluatedRelation)> = if work.len() == 1 {
            let (id, inputs) = work.into_iter().next().expect("one ready node");
            vec![(id, self.nodes[id].operator.execute_pure(inputs, pctx)?)]
        } else {
            work.into_par_iter()
                .map(|(id, inputs)| {
                    self.nodes[id]
                        .operator
                        .execute_pure(inputs, pctx)
                        .map(|r| (id, r))
                })
                .collect::<Result<_>>()?
        };
        for (id, result) in results {
            state.slots[id] = Some(result);
            state.done[id] = true;
        }
        Ok(true)
    }

    /// The slot executor: pure waves to a fixpoint, then the next stateful
    /// node in id order, until every node has run.  When `capture` is set,
    /// the slot/context state is snapshotted at the sampling frontier.
    fn run(
        &self,
        ctx: &mut ExecContext<'_>,
        mut state: SlotState,
        capture: bool,
    ) -> Result<(EvaluatedRelation, Option<ExecSnapshot>)> {
        let mut snapshot = None;
        // A phantom consumer per not-yet-done prefix node keeps every
        // deterministic intermediate result alive until the snapshot is
        // taken: the serving layer's cross-query pool stores them all, so a
        // later query sharing only an *interior* sub-plan (a hot join under
        // a different projection) can still resume it.  `capture_snapshot`
        // subtracts the phantoms again, so resuming sees the true
        // pending-consumer counts.  (Resume-with-capture starts from a
        // partially done state: already-done nodes carry true counts and
        // must not be touched.)
        let mut phantom = vec![false; self.nodes.len()];
        if capture {
            for (i, in_prefix) in self.prefix_done_flags().into_iter().enumerate() {
                if in_prefix && !state.done[i] {
                    state.remaining[i] += 1;
                    phantom[i] = true;
                }
            }
        }
        loop {
            loop {
                let pctx = PureCtx {
                    database: &ctx.database,
                    shards: ctx.config.shards,
                    spill_budget: ctx.config.spill_budget_bytes,
                };
                if !self.run_pure_wave(&mut state, &pctx)? {
                    break;
                }
            }
            // The smallest-id unexecuted stateful node is always ready once
            // pure nodes are at a fixpoint: any unexecuted input chain would
            // bottom out at a smaller-id unexecuted stateful node.
            let Some(id) = (0..self.nodes.len())
                .find(|&id| !state.done[id] && self.nodes[id].operator.class() != OpClass::Pure)
            else {
                break;
            };
            debug_assert!(
                self.nodes[id].inputs.iter().all(|&i| state.done[i]),
                "stateful node #{id} scheduled before its inputs"
            );
            if capture && snapshot.is_none() && self.nodes[id].operator.class() == OpClass::Sampling
            {
                snapshot = Some(self.capture_snapshot(&state, ctx, &phantom));
            }
            let inputs = self.gather_inputs(id, &mut state);
            state.slots[id] = Some(self.nodes[id].operator.execute(inputs, ctx)?);
            state.done[id] = true;
        }
        debug_assert!(state.done.iter().all(|&d| d), "executor left nodes unrun");
        if capture && snapshot.is_none() {
            // Fully deterministic plan: the snapshot holds the final state,
            // including the root result.
            snapshot = Some(self.capture_snapshot(&state, ctx, &phantom));
        }
        let result = state.slots[self.root]
            .take()
            .expect("the root slot holds the query result");
        Ok((result, snapshot))
    }

    fn capture_snapshot(
        &self,
        state: &SlotState,
        ctx: &ExecContext<'_>,
        phantom: &[bool],
    ) -> ExecSnapshot {
        // Undo the phantom consumers the capturing run added, so resuming
        // sees the true pending-consumer counts.  Slots whose counts drop to
        // zero keep their values — they are what the serving pool shares
        // across queries; resumes simply never consume them.
        let mut state = state.clone();
        for (i, &is_phantom) in phantom.iter().enumerate() {
            if is_phantom {
                debug_assert!(state.done[i], "phantom node #{i} unrun at capture");
                state.remaining[i] -= 1;
            }
        }
        ExecSnapshot {
            state,
            plan_signature: self.signature,
            database: ctx.database.clone(),
            var_counter: ctx.var_counter,
            stats: ctx.stats,
            // The snapshot *shares* the capturing run's cache map (no fork):
            // the sampling suffix still to run after this capture compiles
            // the post-frontier W-table state and extracts/compiles the
            // lineage programs it estimates over, and those must land in the
            // retained snapshot so warm resumes pay sampling only.  Resuming
            // forks (see `restore`), so per-request compilations never leak
            // back into the snapshot.
            spaces: ctx.spaces.clone(),
        }
    }

    /// Whether the plan has the shape the serving layer can answer in
    /// *degraded* mode: the root is an approximate (sampling) `conf`
    /// operator and everything below it is the deterministic prefix.  For
    /// such plans the σ̂ interval bounds over the root's input lineage are a
    /// correct, sampling-free answer of last resort (see
    /// [`execute_bounds`](PhysicalPlan::execute_bounds)).
    pub fn bounds_root(&self) -> bool {
        let prefix = self.prefix_done_flags();
        let root = &self.nodes[self.root];
        root.operator.name() == "conf"
            && root.operator.class() == OpClass::Sampling
            && root.inputs.len() == 1
            && (0..self.nodes.len()).all(|id| id == self.root || prefix[id])
    }

    /// Degraded evaluation for [`bounds_root`](PhysicalPlan::bounds_root)
    /// plans: runs the deterministic prefix only and answers the root
    /// `conf` with the exact interval bounds of
    /// [`confidence::event_bounds_with_limit`] (first-order ∩ Bonferroni
    /// lower, Hunter–Worsley upper) over each output tuple's lineage,
    /// widened by the tuple's accumulated input error.  Consumes no
    /// randomness and draws no samples; the true confidence of every tuple
    /// is guaranteed to lie within its returned bounds.
    pub fn execute_bounds(
        &self,
        ctx: &mut ExecContext<'_>,
        pairwise_limit: usize,
    ) -> Result<Vec<(Tuple, EventBounds)>> {
        if !self.bounds_root() {
            return Err(EngineError::Unsupported(
                "degraded bounds answers need a plan rooted at an approximate conf \
                 over a deterministic prefix"
                    .into(),
            ));
        }
        let mut state = SlotState::fresh(self);
        loop {
            loop {
                let pctx = PureCtx {
                    database: &ctx.database,
                    shards: ctx.config.shards,
                    spill_budget: ctx.config.spill_budget_bytes,
                };
                if !self.run_pure_wave(&mut state, &pctx)? {
                    break;
                }
            }
            let Some(id) = (0..self.nodes.len()).find(|&id| {
                id != self.root
                    && !state.done[id]
                    && self.nodes[id].operator.class() != OpClass::Pure
            }) else {
                break;
            };
            let inputs = self.gather_inputs(id, &mut state);
            state.slots[id] = Some(self.nodes[id].operator.execute(inputs, ctx)?);
            state.done[id] = true;
        }
        let input_id = self.nodes[self.root].inputs[0];
        let input = state.slots[input_id]
            .as_ref()
            .expect("prefix executed: the root's input slot is live");
        let compiled = ctx.spaces.compiled(ctx.database.wtable())?;
        let lineage = compiled.relation_events(&input.relation)?;
        let mut out = Vec::with_capacity(lineage.tuples().len());
        for (tuple, event) in lineage.tuples().iter().zip(lineage.events()) {
            let b = event_bounds_with_limit(event, compiled.space(), pairwise_limit)
                .map_err(EngineError::Confidence)?;
            // Upstream approximation error (σ̂ inputs) widens the interval so
            // the containment guarantee survives approximate prefixes.
            let e = input.error_of(tuple);
            out.push((
                tuple.clone(),
                EventBounds {
                    lower: (b.lower - e).max(0.0),
                    upper: (b.upper + e).min(1.0),
                },
            ));
        }
        Ok(out)
    }
}

/// A drop guard that overrides the execution context's shard width and
/// restores the previous value when it goes out of scope, whether the
/// enclosing computation returns normally or bails with `?`.  Derefs to the
/// wrapped [`ExecContext`] so operator calls pass through unchanged.
struct ShardWidthOverride<'g, 'a> {
    ctx: &'g mut ExecContext<'a>,
    saved: usize,
}

impl<'g, 'a> ShardWidthOverride<'g, 'a> {
    fn new(ctx: &'g mut ExecContext<'a>, shards: usize) -> Self {
        let saved = ctx.config.shards;
        ctx.config.shards = shards;
        ShardWidthOverride { ctx, saved }
    }
}

impl Drop for ShardWidthOverride<'_, '_> {
    fn drop(&mut self) {
        self.ctx.config.shards = self.saved;
    }
}

impl<'a> std::ops::Deref for ShardWidthOverride<'_, 'a> {
    type Target = ExecContext<'a>;

    fn deref(&self) -> &Self::Target {
        self.ctx
    }
}

impl std::ops::DerefMut for ShardWidthOverride<'_, '_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.ctx
    }
}

fn unary_input(mut inputs: Vec<EvaluatedRelation>) -> EvaluatedRelation {
    debug_assert_eq!(inputs.len(), 1);
    inputs.pop().expect("unary operator receives one input")
}

// ---- sharded (chunked) execution of row-local operators --------------------

/// True if chunking `len` input rows into `shards` partitions is worthwhile
/// for a data-parallel operator (it only pays off with worker threads).
fn shard_parallel(len: usize, shards: usize) -> bool {
    shards > 1 && len >= SHARD_MIN_ROWS && rayon::current_num_threads() > 1
}

/// Applies a row-local unary operator per *columnar* chunk, concurrently,
/// and merges (set semantics: identical to the single-batch result).  The
/// chunk count is the larger of the parallel shard gate and the spill
/// budget's byte-derived count, so a positive budget engages chunking (and
/// spilling of heavy chunk outputs) even below the parallel threshold.
fn sharded_unary<F>(
    input: &URelation,
    shards: usize,
    spill_budget: usize,
    f: F,
) -> Result<URelation>
where
    F: Fn(&ColumnarChunk) -> Result<URelation> + Sync,
{
    let gate = if shard_parallel(input.len(), shards) {
        shards
    } else {
        1
    };
    let count = ops::chunk_count(input, gate, spill_budget);
    if count <= 1 {
        return f(&ColumnarChunk::from_relation(input));
    }
    let chunks = input.partition_columnar(count);
    let outs: Vec<URelation> = chunks.par_iter().map(&f).collect::<Result<_>>()?;
    crate::storage::merge_spilling(outs, spill_budget)
}

fn binary_inputs(mut inputs: Vec<EvaluatedRelation>) -> (EvaluatedRelation, EvaluatedRelation) {
    debug_assert_eq!(inputs.len(), 2);
    let right = inputs.pop().expect("binary operator receives two inputs");
    let left = inputs.pop().expect("binary operator receives two inputs");
    (left, right)
}

// ---- error-bound propagation (Lemma 6.4(1)) --------------------------------

fn propagate_unary(relation: URelation, input: &EvaluatedRelation) -> EvaluatedRelation {
    // Selection/extension/renaming keep tuples in 1:1 correspondence with
    // input tuples (modulo data-only transformation), so each output tuple
    // inherits the error of the input tuples it came from.  For simplicity
    // and soundness we look the error up by the shared data prefix when
    // arities match, falling back to the sum of all input errors when they
    // do not.
    if input.errors.is_empty() {
        return EvaluatedRelation {
            relation,
            complete: input.complete,
            errors: BTreeMap::new(),
        };
    }
    if relation.schema() == input.relation.schema() {
        let errors = relation
            .possible_tuples()
            .iter()
            .filter_map(|t| input.errors.get(t).map(|e| (t.clone(), *e)))
            .filter(|(_, e)| *e > 0.0)
            .collect();
        return EvaluatedRelation {
            relation,
            complete: input.complete,
            errors,
        };
    }
    let total: f64 = input.errors.values().sum::<f64>().min(1.0);
    let errors = relation
        .possible_tuples()
        .iter()
        .map(|t| (t.clone(), total))
        .collect();
    EvaluatedRelation {
        relation,
        complete: input.complete,
        errors,
    }
}

fn propagate_unary_complete(relation: URelation, input: &EvaluatedRelation) -> EvaluatedRelation {
    let mut out = propagate_unary(relation, input);
    out.complete = true;
    out
}

fn propagate_projection(
    relation: URelation,
    input: &EvaluatedRelation,
    items: &[ProjItem],
) -> Result<EvaluatedRelation> {
    if input.errors.is_empty() {
        return Ok(EvaluatedRelation {
            relation,
            complete: input.complete,
            errors: BTreeMap::new(),
        });
    }
    // Each output tuple's membership can change whenever any input tuple
    // that projects onto it changes (Example 6.5): sum the errors of the
    // contributing input tuples.
    let mut errors: BTreeMap<Tuple, f64> = BTreeMap::new();
    for t in input.relation.possible_tuples().iter() {
        let e = input.error_of(t);
        if e == 0.0 {
            continue;
        }
        let mut values = Vec::with_capacity(items.len());
        for item in items {
            values.push(item.expr.eval(input.relation.schema(), t)?);
        }
        let out_t = Tuple::new(values);
        *errors.entry(out_t).or_insert(0.0) += e;
    }
    for e in errors.values_mut() {
        *e = e.min(1.0);
    }
    Ok(EvaluatedRelation {
        relation,
        complete: input.complete,
        errors,
    })
}

fn propagate_binary(
    relation: URelation,
    left: &EvaluatedRelation,
    right: &EvaluatedRelation,
) -> EvaluatedRelation {
    let complete = left.complete && right.complete;
    if left.errors.is_empty() && right.errors.is_empty() {
        return EvaluatedRelation {
            relation,
            complete,
            errors: BTreeMap::new(),
        };
    }
    // Conservative propagation: any output tuple of a binary operation
    // depends on at most one tuple from each side plus, for unions, on a
    // tuple of either side; we bound its error by the sum of the maximal
    // per-side errors (capped at 1).  This over-approximates Lemma 6.4 but
    // never under-reports.
    let bound = (left.max_error() + right.max_error()).min(1.0);
    let errors = relation
        .possible_tuples()
        .iter()
        .map(|t| (t.clone(), bound))
        .collect();
    EvaluatedRelation {
        relation,
        complete,
        errors,
    }
}

// ---- per-world relational operators (§3) -----------------------------------

/// Reads a base relation.
#[derive(Clone, Debug)]
pub struct ScanOp {
    /// Relation name.
    pub relation: String,
}

impl PhysicalOperator for ScanOp {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        _inputs: Vec<EvaluatedRelation>,
        pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let rel = pctx.database.relation(&self.relation)?.clone();
        let complete = pctx.database.is_complete(&self.relation);
        Ok(EvaluatedRelation {
            relation: rel,
            complete,
            errors: BTreeMap::new(),
        })
    }
}

/// Per-world selection `σ_φ`.
#[derive(Clone, Debug)]
pub struct SelectOp {
    /// Selection predicate.
    pub predicate: Predicate,
}

impl PhysicalOperator for SelectOp {
    fn name(&self) -> &'static str {
        "select"
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = sharded_unary(&input.relation, pctx.shards, pctx.spill_budget, |chunk| {
            ops::select_columnar(chunk, &self.predicate)
        })?;
        Ok(propagate_unary(relation, &input))
    }

    fn execute_delta(
        &self,
        old_output: &URelation,
        inputs: &[DeltaInput<'_>],
    ) -> Result<Option<URelation>> {
        delta::select_delta(old_output, &inputs[0], &self.predicate).map(Some)
    }
}

/// Generalised projection `π`.
#[derive(Clone, Debug)]
pub struct ProjectOp {
    /// Output items.
    pub items: Vec<ProjItem>,
}

impl PhysicalOperator for ProjectOp {
    fn name(&self) -> &'static str {
        "project"
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = sharded_unary(&input.relation, pctx.shards, pctx.spill_budget, |chunk| {
            ops::project_columnar(chunk, &self.items)
        })?;
        propagate_projection(relation, &input, &self.items)
    }

    fn execute_delta(
        &self,
        old_output: &URelation,
        inputs: &[DeltaInput<'_>],
    ) -> Result<Option<URelation>> {
        delta::project_delta(old_output, &inputs[0], &self.items).map(Some)
    }
}

/// Extension by computed attributes.
#[derive(Clone, Debug)]
pub struct ExtendOp {
    /// Appended items.
    pub items: Vec<ProjItem>,
}

impl PhysicalOperator for ExtendOp {
    fn name(&self) -> &'static str {
        "extend"
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = sharded_unary(&input.relation, pctx.shards, pctx.spill_budget, |chunk| {
            ops::extend_columnar(chunk, &self.items)
        })?;
        Ok(propagate_unary(relation, &input))
    }

    fn execute_delta(
        &self,
        old_output: &URelation,
        inputs: &[DeltaInput<'_>],
    ) -> Result<Option<URelation>> {
        delta::extend_delta(old_output, &inputs[0], &self.items).map(Some)
    }
}

/// Attribute renaming `ρ`.
#[derive(Clone, Debug)]
pub struct RenameOp {
    /// Attribute to rename.
    pub from: String,
    /// New attribute name.
    pub to: String,
}

impl PhysicalOperator for RenameOp {
    fn name(&self) -> &'static str {
        "rename"
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = ops::rename(&input.relation, &self.from, &self.to)?;
        Ok(propagate_unary(relation, &input))
    }

    fn execute_delta(
        &self,
        old_output: &URelation,
        inputs: &[DeltaInput<'_>],
    ) -> Result<Option<URelation>> {
        delta::rename_delta(old_output, &inputs[0]).map(Some)
    }
}

/// Cartesian product `×`.
#[derive(Clone, Copy, Debug)]
pub struct ProductOp;

impl PhysicalOperator for ProductOp {
    fn name(&self) -> &'static str {
        "product"
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let (left, right) = binary_inputs(inputs);
        let relation = sharded_unary(&left.relation, pctx.shards, pctx.spill_budget, |chunk| {
            ops::product_columnar(chunk, &right.relation)
        })?;
        Ok(propagate_binary(relation, &left, &right))
    }
}

/// Natural join `⋈`.
#[derive(Clone, Copy, Debug)]
pub struct NaturalJoinOp;

impl PhysicalOperator for NaturalJoinOp {
    fn name(&self) -> &'static str {
        "join"
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let (left, right) = binary_inputs(inputs);
        // The sharded join pays off even single-threaded: it probes one
        // shared key index per chunk instead of rescanning the right side
        // for every left row.  A positive spill budget also routes through
        // the chunked path so heavy probe outputs can spill.
        let by_shards = if pctx.shards > 1 && left.relation.len() >= SHARD_MIN_ROWS {
            pctx.shards
        } else {
            1
        };
        let relation = if by_shards > 1 || pctx.spill_budget > 0 {
            ops::natural_join_spilling(
                &left.relation,
                &right.relation,
                by_shards,
                pctx.spill_budget,
            )?
        } else {
            ops::natural_join(&left.relation, &right.relation)?
        };
        Ok(propagate_binary(relation, &left, &right))
    }

    fn execute_delta(
        &self,
        old_output: &URelation,
        inputs: &[DeltaInput<'_>],
    ) -> Result<Option<URelation>> {
        delta::natural_join_delta(old_output, &inputs[0], &inputs[1])
    }
}

/// Union `∪`.
#[derive(Clone, Copy, Debug)]
pub struct UnionOp;

impl PhysicalOperator for UnionOp {
    fn name(&self) -> &'static str {
        "union"
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let (left, right) = binary_inputs(inputs);
        let relation = ops::union(&left.relation, &right.relation)?;
        Ok(propagate_binary(relation, &left, &right))
    }

    fn execute_delta(
        &self,
        old_output: &URelation,
        inputs: &[DeltaInput<'_>],
    ) -> Result<Option<URelation>> {
        delta::union_delta(old_output, &inputs[0], &inputs[1]).map(Some)
    }
}

/// Difference; the unchecked `−` form verifies completeness at runtime
/// (unrestricted difference over uncertain inputs is outside positive UA).
#[derive(Clone, Copy, Debug)]
pub struct DifferenceOp {
    /// True for the `−c` form (Proposition 3.3).
    pub checked: bool,
}

impl PhysicalOperator for DifferenceOp {
    fn name(&self) -> &'static str {
        if self.checked {
            "diffc"
        } else {
            "diff"
        }
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let (left, right) = binary_inputs(inputs);
        if !self.checked
            && (!left.relation.is_complete_representation()
                || !right.relation.is_complete_representation())
        {
            return Err(EngineError::Unsupported(
                "difference over uncertain relations is outside positive UA; use −c on complete inputs"
                    .into(),
            ));
        }
        let relation = ops::difference_complete(&left.relation, &right.relation)?;
        Ok(propagate_binary(relation, &left, &right))
    }
}

/// `poss`: the possible tuples, as a complete relation.
#[derive(Clone, Copy, Debug)]
pub struct PossOp;

impl PhysicalOperator for PossOp {
    fn name(&self) -> &'static str {
        "poss"
    }

    fn class(&self) -> OpClass {
        OpClass::Pure
    }

    fn execute_pure(
        &self,
        inputs: Vec<EvaluatedRelation>,
        _pctx: &PureCtx<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let relation = URelation::from_complete(&input.relation.possible_tuples());
        Ok(propagate_unary_complete(relation, &input))
    }

    fn execute_delta(
        &self,
        old_output: &URelation,
        inputs: &[DeltaInput<'_>],
    ) -> Result<Option<URelation>> {
        delta::poss_delta(old_output, &inputs[0]).map(Some)
    }
}

// ---- repair-key (§2.2 / §3) ------------------------------------------------

/// `repair-key_{A⃗@B}`: uncertainty introduction on a complete input.
#[derive(Clone, Debug)]
pub struct RepairKeyOp {
    /// Key attributes.
    pub key: Vec<String>,
    /// Weight attribute.
    pub weight: String,
}

impl PhysicalOperator for RepairKeyOp {
    fn name(&self) -> &'static str {
        "repair-key"
    }

    fn class(&self) -> OpClass {
        // Introduces variables (names drawn from the shared counter) but
        // consumes no randomness: deterministic, so it may sit below the
        // serving layer's snapshot point.
        OpClass::Stateful
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        if !input.relation.is_complete_representation() {
            return Err(EngineError::NotComplete(
                "repair-key requires a complete input relation".into(),
            ));
        }
        let complete = input.relation.possible_tuples();
        let key_refs: Vec<&str> = self.key.iter().map(String::as_str).collect();
        let groups = complete.group_by(&key_refs).map_err(EngineError::Pdb)?;

        let mut out = URelation::empty(complete.schema().clone());
        for (key_tuple, members) in groups {
            // Validate and normalise the weights.
            let mut weights = Vec::with_capacity(members.len());
            let mut total = 0.0;
            for t in &members {
                let w = complete
                    .numeric_value(t, &self.weight)
                    .map_err(EngineError::Pdb)?;
                if !w.is_finite() || w <= 0.0 {
                    return Err(EngineError::Pdb(pdb::PdbError::InvalidWeight(format!(
                        "weight {w} of tuple {t} is not a positive finite number"
                    ))));
                }
                total += w;
                weights.push(w);
            }
            if members.len() == 1 {
                // A single candidate is chosen with probability 1; no random
                // variable is needed.
                out.insert(Condition::always(), members[0].clone())?;
                continue;
            }
            // One fresh variable per key group (the Section 3 translation
            // names it after the key values; we add a counter for global
            // uniqueness across repeated repair-key applications).
            ctx.var_counter += 1;
            let var = Var::new(format!("rk{}:{}", ctx.var_counter, key_tuple));
            let dist: Vec<(Value, f64)> = weights
                .iter()
                .enumerate()
                .map(|(i, w)| (Value::Int(i as i64), w / total))
                .collect();
            ctx.database.wtable_mut().add_variable(var.clone(), dist)?;
            for (i, t) in members.iter().enumerate() {
                let cond = Condition::new([(var.clone(), Value::Int(i as i64))])?;
                out.insert(cond, t.clone())?;
            }
        }

        let errors = if input.errors.is_empty() {
            BTreeMap::new()
        } else {
            out.possible_tuples()
                .iter()
                .filter_map(|t| input.errors.get(t).map(|e| (t.clone(), *e)))
                .collect()
        };
        Ok(EvaluatedRelation {
            relation: out,
            complete: false,
            errors,
        })
    }
}

// ---- confidence computation (§4) -------------------------------------------

/// `conf` / `conf_{ε,δ}`: batched confidence computation over all tuple
/// lineages at once.
#[derive(Clone, Debug)]
pub struct ConfOp {
    /// Name of the appended probability attribute.
    pub prob_attr: String,
    /// `None` for exact model counting, `Some` for the Karp–Luby FPRAS.
    pub params: Option<FprasParams>,
}

impl PhysicalOperator for ConfOp {
    fn name(&self) -> &'static str {
        "conf"
    }

    fn class(&self) -> OpClass {
        match self.params {
            // Exact model counting is deterministic.
            None => OpClass::Stateful,
            // The FPRAS draws a master seed per execution.
            Some(_) => OpClass::Sampling,
        }
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        ctx.stats.conf_operators += 1;
        let compiled = ctx.spaces.compiled(ctx.database.wtable())?;
        let schema = input
            .relation
            .schema()
            .with_appended(&self.prob_attr)
            .map_err(EngineError::Pdb)?;

        // Batch: every tuple's DNF lineage in one memoised pass, compiled
        // once into flat programs and estimated by the bit-parallel
        // estimator layer (64 sampled worlds per word).  On a warm serving
        // resume both the lineage and its compiled programs come from the
        // retained snapshot caches, so the request pays sampling only.
        let lineage = compiled.relation_events(&input.relation)?;
        let estimator: Box<dyn ConfidenceEstimator> = match self.params {
            None => Box::new(ExactEstimator),
            Some(params) => Box::new(
                FprasEstimator::new(params)
                    .with_exact_backend(ctx.config.exact_backend_node_budget)
                    .with_deadline(ctx.deadline),
            ),
        };
        // The failpoint sits *before* the master-seed draw: a retried
        // request that faulted here has consumed no caller randomness, so
        // its successful attempt is still bit-identical to cold.
        if self.params.is_some() {
            crate::faults::fire("estimate", ctx.deadline)?;
        }
        // Exact estimation consumes no randomness; leave the caller's RNG
        // stream untouched in that case.  Shared-sampling runs *draw* the
        // seed (so the caller's stream advances exactly as it always has)
        // but replace it with the arena's content fingerprint below.
        let master_seed = if self.params.is_some() {
            ctx.rng.next_u64()
        } else {
            0
        };
        let programs = lineage.programs();
        let estimates = match self.params {
            Some(params) if ctx.config.shared_sampling => {
                // Canonical streams: every per-event sub-RNG derives from
                // the compiled arena's content fingerprint, so the answer is
                // a pure function of (content, configuration, ε/δ) — the
                // precondition for sharing drawn blocks across requests.
                let canonical = programs.fingerprint();
                let drawn: Vec<(confidence::EventEstimate, bool)> = (0..programs.len())
                    .into_par_iter()
                    .map(|i| -> Result<(confidence::EventEstimate, bool)> {
                        let draw =
                            || estimator.estimate_compiled(programs, i, event_seed(canonical, i));
                        let routed = match (&ctx.sampler, programs.trivial(i)) {
                            // Non-trivial events consult the shared block
                            // scheduler; the tally key includes the Chernoff
                            // bill so prepared queries with different (ε, δ)
                            // never alias.
                            (Some(sampler), None) => {
                                let m = params
                                    .samples_for(programs.num_terms(i))
                                    .map_err(EngineError::Confidence)?;
                                sampler
                                    .estimate(canonical, i as u32, m as u64, draw)
                                    .map_err(EngineError::Confidence)?
                            }
                            _ => (draw().map_err(EngineError::Confidence)?, false),
                        };
                        Ok(routed)
                    })
                    .collect::<Result<Vec<_>>>()
                    .map_err(deadline_interrupt)?;
                ctx.stats.shared_block_hits += drawn.iter().filter(|(_, hit)| *hit).count() as u64;
                drawn.into_iter().map(|(estimate, _)| estimate).collect()
            }
            _ => estimator
                .estimate_compiled_batch(programs, master_seed)
                .map_err(|e| deadline_interrupt(EngineError::Confidence(e)))?,
        };

        let mut out = URelation::empty(schema);
        let mut errors: BTreeMap<Tuple, f64> = BTreeMap::new();
        for (i, (t, estimate)) in lineage.tuples().iter().zip(&estimates).enumerate() {
            // Stats keep the pre-pipeline semantics: exact mode counts model-
            // counting calls, FPRAS mode counts samples (0 for trivial
            // events, which are answered without sampling).  Backend
            // attribution is per non-trivial event: the d-DNNF path flags
            // `exact` with zero samples, everything else was sampled.
            if self.params.is_none() {
                ctx.stats.exact_confidence_calls += 1;
            } else {
                ctx.stats.karp_luby_samples += estimate.samples;
                if lineage.programs().trivial(i).is_none() {
                    if estimate.exact {
                        ctx.stats.exact_compiled_answers += 1;
                    } else {
                        ctx.stats.sampled_answers += 1;
                    }
                }
            }
            let out_t = t.with_appended(Value::float(estimate.estimate));
            out.insert(Condition::always(), out_t.clone())?;
            let e = input.error_of(t);
            if e > 0.0 {
                errors.insert(out_t, e);
            }
        }
        Ok(EvaluatedRelation {
            relation: out,
            complete: true,
            errors,
        })
    }
}

/// `cert`: the `conf = 1` test — exactly the singularity of Example 5.7 — so
/// it is always answered by exact model counting (batched).
#[derive(Clone, Copy, Debug)]
pub struct CertOp;

impl PhysicalOperator for CertOp {
    fn name(&self) -> &'static str {
        "cert"
    }

    fn class(&self) -> OpClass {
        OpClass::Stateful
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        let compiled = ctx.spaces.compiled(ctx.database.wtable())?;
        let lineage = compiled.relation_events(&input.relation)?;
        // The compiled path memoises the Shannon-expansion results inside
        // the cached batch: repeated `cert` requests are lookups.
        let estimates = ExactEstimator
            .estimate_compiled_batch(lineage.programs(), 0)
            .map_err(EngineError::Confidence)?;

        let mut out = URelation::empty(input.relation.schema().clone());
        let mut errors = BTreeMap::new();
        for (t, estimate) in lineage.tuples().iter().zip(&estimates) {
            ctx.stats.exact_confidence_calls += 1;
            if (estimate.estimate - 1.0).abs() < 1e-9 {
                out.insert(Condition::always(), t.clone())?;
                let e = input.error_of(t);
                if e > 0.0 {
                    errors.insert(t.clone(), e);
                }
            }
        }
        Ok(EvaluatedRelation {
            relation: out,
            complete: true,
            errors,
        })
    }
}

// ---- approximate selection σ̂ (§5 Figure 3, §6) -----------------------------

/// `σ̂_{φ(conf[A⃗₁], …, conf[A⃗_k])}` with its physical decision mode baked in
/// at lowering time.
#[derive(Clone, Debug)]
pub struct ApproxSelectOp {
    /// Confidence terms the predicate refers to.
    pub terms: Vec<ConfTerm>,
    /// Predicate over the term placeholders.
    pub predicate: Predicate,
    /// Smallest relative half-width refined to.
    pub epsilon0: f64,
    /// Per-operator error bound.
    pub delta: f64,
    /// The decision strategy chosen by the engine configuration.
    pub mode: ApproxSelectMode,
}

impl PhysicalOperator for ApproxSelectOp {
    fn name(&self) -> &'static str {
        "approx-select"
    }

    fn class(&self) -> OpClass {
        match self.mode {
            // Exact decisions consume no randomness.
            ApproxSelectMode::Exact => OpClass::Stateful,
            ApproxSelectMode::Adaptive | ApproxSelectMode::FixedIterations(_) => OpClass::Sampling,
        }
    }

    fn execute(
        &self,
        inputs: Vec<EvaluatedRelation>,
        ctx: &mut ExecContext<'_>,
    ) -> Result<EvaluatedRelation> {
        let input = unary_input(inputs);
        ctx.stats.approx_select_operators += 1;
        algebra::check_conf_terms(&self.terms, input.relation.schema())?;
        let compiled = ctx.spaces.compiled(ctx.database.wtable())?;

        // Projections π_{A⃗_i}(R), one per confidence term.
        let mut projections = Vec::with_capacity(self.terms.len());
        for term in &self.terms {
            let items: Vec<ProjItem> = term.attrs.iter().map(ProjItem::attr).collect();
            projections.push(ops::project(&input.relation, &items)?);
        }

        // The candidate output tuples: the natural join of the possible
        // tuples of the projections (over the union of the term attributes).
        let out_attrs: Vec<String> = {
            let mut attrs = Vec::new();
            for term in &self.terms {
                for a in &term.attrs {
                    if !attrs.contains(a) {
                        attrs.push(a.clone());
                    }
                }
            }
            attrs
        };
        let out_schema = Schema::new(out_attrs.clone()).map_err(EngineError::Pdb)?;
        let mut candidates =
            URelation::from_complete(&pdb::Relation::new(Schema::empty(), [Tuple::empty()])?);
        for proj in &projections {
            candidates = ops::natural_join(
                &candidates,
                &URelation::from_complete(&proj.possible_tuples()),
            )?;
        }
        // Reorder candidate columns to the declared output order.
        let reorder: Vec<ProjItem> = out_attrs.iter().map(ProjItem::attr).collect();
        let candidates = ops::project(&candidates, &reorder)?;

        // Compile the predicate over the term placeholders.
        let placeholders: Vec<String> = self.terms.iter().map(|t| t.name.clone()).collect();
        let compiled_predicate = compile_predicate(&self.predicate, &placeholders)?;

        // The input-error contribution: the confidence terms aggregate over
        // the whole input relation, so every candidate depends on every
        // input tuple (cf. Example 6.5).
        let input_error: f64 = input.errors.values().sum::<f64>().min(1.0);

        // The k events of every candidate, in candidate order.  The term
        // attribute indices are hoisted out of the candidate loop.
        let term_indices: Vec<Vec<usize>> = self
            .terms
            .iter()
            .map(|term| {
                candidates
                    .schema()
                    .indices_of(&term.attrs)
                    .map_err(EngineError::Pdb)
            })
            .collect::<Result<_>>()?;
        let candidate_tuples: Vec<Tuple> = candidates.possible_tuples().iter().cloned().collect();
        ctx.stats.approx_select_decisions += candidate_tuples.len() as u64;
        // The k events of candidate i occupy events[i*k .. (i+1)*k]: one flat
        // vector shared by every decision mode, no per-candidate re-clone.
        // Each projection's lineage batch is extracted and compiled once
        // (memoised in the compiled space); candidates look their events —
        // and their compiled-program handles, which the Monte Carlo modes
        // sample through — up by key.  Candidates absent from a projection
        // share one impossible-event program.
        let lineages = projections
            .iter()
            .map(|proj| compiled.relation_events(proj))
            .collect::<Result<Vec<_>>>()?;
        let never = std::sync::Arc::new(
            confidence::LineagePrograms::compile(vec![DnfEvent::never()], compiled.space())
                .map_err(EngineError::Confidence)?,
        );
        let mut events: Vec<DnfEvent> =
            Vec::with_capacity(candidate_tuples.len() * self.terms.len());
        let mut handles: Vec<CompiledEventHandle> =
            Vec::with_capacity(candidate_tuples.len() * self.terms.len());
        for candidate in &candidate_tuples {
            for (idx, lineage) in term_indices.iter().zip(&lineages) {
                let key = candidate.project(idx);
                match lineage.index_of(&key) {
                    Some(i) => {
                        events.push(lineage.events()[i].clone());
                        handles.push((lineage.programs().clone(), i));
                    }
                    None => {
                        events.push(DnfEvent::never());
                        handles.push((never.clone(), 0));
                    }
                }
            }
        }

        // Decide every candidate: (keep, decision error bound).
        let decisions = self.decide_candidates(
            candidate_tuples.len(),
            &events,
            &handles,
            &compiled,
            &compiled_predicate,
            ctx,
        )?;
        debug_assert_eq!(decisions.len(), candidate_tuples.len());

        let mut out = URelation::empty(out_schema);
        let mut errors: BTreeMap<Tuple, f64> = BTreeMap::new();
        for (candidate, (keep, decision_error)) in candidate_tuples.iter().zip(decisions) {
            let total_error = (decision_error + input_error).min(1.0);
            if keep {
                out.insert(Condition::always(), candidate.clone())?;
                if total_error > 0.0 {
                    errors.insert(candidate.clone(), total_error);
                }
            } else if total_error > 0.0 {
                // Dropped tuples may also be wrongly dropped; their error is
                // recorded so that downstream negation-free operators (and
                // the adaptive driver) can still reason about them.  They
                // are keyed by the candidate tuple even though it is absent.
                errors.insert(candidate.clone(), total_error);
            }
        }

        Ok(EvaluatedRelation {
            relation: out,
            complete: false,
            errors,
        })
    }
}

/// A compiled event of a lineage batch: the shared program arena plus the
/// event's index within it.
type CompiledEventHandle = (std::sync::Arc<confidence::LineagePrograms>, usize);

/// Maps the estimator layers' cooperative-interrupt errors into the serving
/// taxonomy: an interrupted sampling run *is* the request's deadline firing
/// mid-estimate.
fn deadline_interrupt(e: EngineError) -> EngineError {
    match e {
        EngineError::Confidence(ConfidenceError::Interrupted)
        | EngineError::Approx(ApproxError::Interrupted)
        | EngineError::Approx(ApproxError::Confidence(ConfidenceError::Interrupted)) => {
            EngineError::DeadlineExceeded { stage: "estimate" }
        }
        e => e,
    }
}

impl ApproxSelectOp {
    /// Sampling-free candidate decisions from the exact confidence bounds of
    /// [`confidence::bounds`] (max-term lower / union upper, refined by one
    /// round of inclusion–exclusion — degree-two Bonferroni lower bound and
    /// Hunter–Worsley spanning-tree upper bound): a candidate whose
    /// predicate is constant over its `k`-dimensional bounds box is decided
    /// with error 0 before any estimator runs.  `None` marks the ambiguous
    /// band that falls through to Monte Carlo estimation.
    fn prune_candidates(
        &self,
        num_candidates: usize,
        events: &[DnfEvent],
        compiled: &CompiledSpace,
        predicate: &ApproxPredicate,
        pairwise_limit: usize,
    ) -> Result<Vec<Option<bool>>> {
        let k = self.terms.len();
        let bounds = events
            .iter()
            .map(|e| event_bounds_with_limit(e, compiled.space(), pairwise_limit))
            .collect::<confidence::Result<Vec<_>>>()
            .map_err(EngineError::Confidence)?;
        (0..num_candidates)
            .map(|i| {
                let boxed = Orthotope::from_intervals(
                    bounds[i * k..(i + 1) * k]
                        .iter()
                        .map(|b| Interval::new(b.lower, b.upper)),
                );
                Ok(
                    match evaluate_over_box(predicate, &boxed).map_err(EngineError::Approx)? {
                        BoxVerdict::AlwaysTrue => Some(true),
                        BoxVerdict::AlwaysFalse => Some(false),
                        BoxVerdict::Unknown => None,
                    },
                )
            })
            .collect()
    }

    /// Decides all `num_candidates` candidates under the operator's mode;
    /// candidate `i`'s `k` events are `events[i*k .. (i+1)*k]` (`k` may be 0:
    /// a term-less predicate is decided once per candidate on no values).
    /// Monte Carlo modes first prune candidates whose exact confidence
    /// bounds already decide the predicate (when the engine enables it),
    /// then run candidates/events concurrently with per-index sub-RNGs
    /// derived from one master seed.  Every unpruned candidate keeps the
    /// sub-RNG of its original index, so the outcome is deterministic per
    /// seed *and* unchanged for the candidates pruning leaves alone.
    fn decide_candidates(
        &self,
        num_candidates: usize,
        events: &[DnfEvent],
        handles: &[CompiledEventHandle],
        compiled: &CompiledSpace,
        predicate: &ApproxPredicate,
        ctx: &mut ExecContext<'_>,
    ) -> Result<Vec<(bool, f64)>> {
        let k = self.terms.len();
        debug_assert_eq!(events.len(), num_candidates * k);
        debug_assert_eq!(handles.len(), events.len());
        // Exact mode is the reference semantics and stays unpruned; the
        // Monte Carlo modes skip clear candidates entirely.
        let pruned: Vec<Option<bool>> =
            if ctx.config.prune_approx_select && self.mode != ApproxSelectMode::Exact {
                self.prune_candidates(
                    num_candidates,
                    events,
                    compiled,
                    predicate,
                    ctx.config.pairwise_bound_limit,
                )?
            } else {
                vec![None; num_candidates]
            };
        ctx.stats.approx_select_pruned += pruned.iter().filter(|p| p.is_some()).count() as u64;
        match self.mode {
            ApproxSelectMode::Exact => {
                let estimates = ExactEstimator
                    .estimate_batch(events, compiled.space(), 0)
                    .map_err(EngineError::Confidence)?;
                ctx.stats.exact_confidence_calls += estimates.len() as u64;
                (0..num_candidates)
                    .map(|i| {
                        let chunk = &estimates[i * k..(i + 1) * k];
                        let values: Vec<f64> = chunk.iter().map(|e| e.estimate).collect();
                        Ok((predicate.eval(&values)?, 0.0))
                    })
                    .collect()
            }
            ApproxSelectMode::FixedIterations(l) => {
                // Failpoint before the seed draw: see `ConfOp::execute`.
                crate::faults::fire("estimate", ctx.deadline)?;
                let master_seed = ctx.rng.next_u64();
                let estimator = BatchedIncrementalEstimator::new(l)
                    .with_exact_backend(ctx.config.exact_backend_node_budget)
                    .with_deadline(ctx.deadline);
                // Estimate only the events of unpruned candidates, each with
                // the sub-RNG seed of its original flat index.
                let needed: Vec<usize> = (0..num_candidates)
                    .filter(|&i| pruned[i].is_none())
                    .flat_map(|i| i * k..(i + 1) * k)
                    .collect();
                let estimated: Vec<(usize, confidence::EventEstimate)> = needed
                    .into_par_iter()
                    .map(|idx| {
                        let (programs, event) = &handles[idx];
                        estimator
                            .estimate_compiled(programs, *event, event_seed(master_seed, idx))
                            .map(|e| (idx, e))
                            .map_err(|e| deadline_interrupt(EngineError::Confidence(e)))
                    })
                    .collect::<Result<_>>()?;
                let mut estimates: Vec<Option<confidence::EventEstimate>> =
                    vec![None; events.len()];
                for (idx, estimate) in estimated {
                    ctx.stats.karp_luby_samples += estimate.samples;
                    let (programs, event) = &handles[idx];
                    if programs.trivial(*event).is_none() {
                        if estimate.exact {
                            ctx.stats.exact_compiled_answers += 1;
                        } else {
                            ctx.stats.sampled_answers += 1;
                        }
                    }
                    estimates[idx] = Some(estimate);
                }
                (0..num_candidates)
                    .map(|i| {
                        if let Some(keep) = pruned[i] {
                            return Ok((keep, 0.0));
                        }
                        let chunk: Vec<confidence::EventEstimate> = (i * k..(i + 1) * k)
                            .map(|idx| estimates[idx].expect("unpruned event estimated"))
                            .collect();
                        let values: Vec<f64> = chunk.iter().map(|e| e.estimate).collect();
                        let keep = predicate.eval(&values)?;
                        let eps_psi = predicate.epsilon_homogeneous(&values)?;
                        let eps = eps_psi.max(self.epsilon0).min(0.999_999);
                        let mut bound = 0.0;
                        for estimate in &chunk {
                            bound += if estimate.exact {
                                0.0
                            } else {
                                chernoff::delta_prime(eps, l)?
                            };
                        }
                        Ok((keep, bound.min(0.5)))
                    })
                    .collect()
            }
            ApproxSelectMode::Adaptive => {
                let params = ApproximationParams::new(self.epsilon0, self.delta)?
                    .with_deadline(ctx.deadline);
                // Failpoint before the seed draw: see `ConfOp::execute`.
                crate::faults::fire("estimate", ctx.deadline)?;
                let master_seed = ctx.rng.next_u64();
                // Cost-model inputs for the exact backend: the sample bill
                // is the Chernoff count the Figure 3 driver would reach at
                // its floor accuracy (ε₀, δ) — a conservative proxy for the
                // run's total draws.
                let node_budget = ctx.config.exact_backend_node_budget;
                let bill_params = if node_budget > 0 {
                    Some(
                        FprasParams::new(self.epsilon0, self.delta)
                            .map_err(EngineError::Confidence)?,
                    )
                } else {
                    None
                };
                // One Figure 3 run per unpruned candidate, all candidates in
                // parallel, each on its own seeded RNG.
                let outcomes: Vec<(bool, f64, u64, u64)> = (0..num_candidates)
                    .into_par_iter()
                    .map(|i| {
                        if let Some(keep) = pruned[i] {
                            return Ok((keep, 0.0, 0, 0));
                        }
                        // Per-candidate xoshiro sub-RNG: the Figure 3 loop
                        // below is bit-parallel-sampling-bound.
                        let mut rng =
                            rand::rngs::SmallRng::seed_from_u64(event_seed(master_seed, i));
                        let mut estimators: Vec<IncrementalEstimator> = handles[i * k..(i + 1) * k]
                            .iter()
                            .map(|(programs, event)| {
                                IncrementalEstimator::from_compiled(programs, *event)
                                    .map_err(EngineError::Confidence)
                            })
                            .collect::<Result<_>>()?;
                        // Resolve term estimators exactly where compilation
                        // beats the sample bill: the Figure 3 loop then
                        // treats them as zero-width, seed-independent inputs.
                        let mut resolved = 0u64;
                        if let Some(bill_params) = bill_params {
                            for (state, (programs, event)) in
                                estimators.iter_mut().zip(&handles[i * k..(i + 1) * k])
                            {
                                if state.is_trivial() {
                                    continue;
                                }
                                let m = bill_params
                                    .samples_for(programs.num_terms(*event))
                                    .map_err(EngineError::Confidence)?;
                                if confidence::cost::choose_backend(
                                    programs.dnnf_estimate(*event),
                                    m as u64,
                                    node_budget,
                                ) == confidence::Backend::Exact
                                {
                                    if let Some(p) = programs.dnnf_probability(*event, node_budget)
                                    {
                                        state.resolve_exactly(p);
                                        resolved += 1;
                                    }
                                }
                            }
                        }
                        let decision =
                            approximate_predicate(predicate, &mut estimators, params, &mut rng)
                                .map_err(|e| deadline_interrupt(EngineError::Approx(e)))?;
                        Ok((
                            decision.value,
                            decision.error_bound,
                            decision.samples,
                            resolved,
                        ))
                    })
                    .collect::<Result<_>>()?;
                for &(_, _, samples, resolved) in &outcomes {
                    ctx.stats.karp_luby_samples += samples;
                    ctx.stats.exact_compiled_answers += resolved;
                }
                Ok(outcomes
                    .into_iter()
                    .map(|(value, error, _, _)| (value, error))
                    .collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::UEngine;
    use rand_chacha::ChaCha8Rng;
    use workloads::{SensorWorkload, TupleIndependentDb};

    fn lowered(text: &str, db: &UDatabase, config: EvalConfig) -> PhysicalPlan {
        let query = algebra::parse_query(text).unwrap();
        let catalog = crate::adaptive_query::catalog_of(db).unwrap();
        let plan = LogicalPlan::lower_validated(&query, &catalog).unwrap();
        PhysicalPlan::lower(&plan, config).unwrap()
    }

    fn ctx_for<'a>(
        db: &UDatabase,
        config: EvalConfig,
        rng: &'a mut dyn RngCore,
    ) -> ExecContext<'a> {
        ExecContext {
            config,
            database: db.clone(),
            stats: EvalStats::default(),
            var_counter: 0,
            rng,
            spaces: SpaceCache::new(),
            deadline: None,
            sampler: None,
        }
    }

    #[test]
    fn operator_classes_and_sampling_frontier() {
        let db = TupleIndependentDb::default().database();
        // Deterministic plan: exact conf → frontier past the end.
        let exact = lowered("conf(project[A](T))", &db, EvalConfig::exact());
        assert_eq!(exact.sampling_frontier(), exact.nodes().len());
        for node in exact.nodes() {
            assert_ne!(node.operator.class(), OpClass::Sampling);
        }
        // FPRAS conf samples: the frontier sits at the conf node (the last).
        let fpras = lowered("aconf[0.3, 0.2](project[A](T))", &db, EvalConfig::exact());
        assert_eq!(fpras.sampling_frontier(), fpras.nodes().len() - 1);
        assert_eq!(
            fpras.nodes().last().unwrap().operator.class(),
            OpClass::Sampling
        );
        // Scans and projections are pure.
        assert_eq!(fpras.nodes()[0].operator.class(), OpClass::Pure);
    }

    #[test]
    fn capture_and_resume_reproduce_direct_execution() {
        let workload = SensorWorkload {
            num_sensors: 6,
            readings_per_sensor: 3,
            high_probability: 0.45,
            seed: 21,
        };
        let db = workload.database();
        let config = EvalConfig::default();
        let plan = lowered(
            &SensorWorkload::alarm_query(0.7, 0.05, 0.05).to_string(),
            &db,
            config,
        );

        // Cold run with capture.
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let mut ctx = ctx_for(&db, config, &mut rng);
        let (cold, snapshot) = plan.execute_capturing(&mut ctx).unwrap();
        assert!(!snapshot.is_complete(), "σ̂ keeps the suffix live");
        assert!(snapshot.database().wtable().num_variables() > 0);
        assert!(format!("{snapshot:?}").contains("nodes_done"));

        // Resume with a fresh RNG state S equals direct execution with S.
        let mut warm_rng = ChaCha8Rng::seed_from_u64(41);
        let mut warm_ctx = ctx_for(&db, config, &mut warm_rng);
        let warm = plan.resume(&mut warm_ctx, &snapshot).unwrap();

        let mut direct_rng = ChaCha8Rng::seed_from_u64(41);
        let mut direct_ctx = ctx_for(&db, config, &mut direct_rng);
        let direct = plan.execute(&mut direct_ctx).unwrap();
        assert_eq!(warm.relation, direct.relation);
        assert_eq!(warm.errors, direct.errors);
        assert_eq!(warm_ctx.stats, direct_ctx.stats);
        assert_eq!(warm_ctx.database, direct_ctx.database);
        // RNG streams advanced identically.
        assert_eq!(warm_rng.next_u64(), direct_rng.next_u64());

        // Cold and direct agree too (seeds differ only after the frontier,
        // and 40 vs 41 were both fresh at the σ̂ draw — so compare shape).
        assert_eq!(cold.relation.schema(), direct.relation.schema());

        // A snapshot from another plan is rejected.
        let other = lowered("poss(T)", &TupleIndependentDb::default().database(), config);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ctx = ctx_for(&db, config, &mut rng);
        assert!(other.resume(&mut ctx, &snapshot).is_err());

        // …including one with the *same* node count but a different query,
        // and the same query lowered under a different configuration.
        let same_shape = lowered(
            &SensorWorkload::alarm_query(0.9, 0.05, 0.05).to_string(),
            &db,
            config,
        );
        assert_eq!(same_shape.nodes().len(), plan.nodes().len());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ctx = ctx_for(&db, config, &mut rng);
        assert!(same_shape.resume(&mut ctx, &snapshot).is_err());
        let other_config = lowered(
            &SensorWorkload::alarm_query(0.7, 0.05, 0.05).to_string(),
            &db,
            config.with_pruning(!config.prune_approx_select),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ctx = ctx_for(&db, config, &mut rng);
        assert!(other_config.resume(&mut ctx, &snapshot).is_err());
    }

    #[test]
    fn assembled_snapshots_match_captured_ones() {
        let workload = SensorWorkload {
            num_sensors: 5,
            readings_per_sensor: 3,
            high_probability: 0.4,
            seed: 13,
        };
        let db = workload.database();
        let config = EvalConfig::default();
        let plan = lowered(
            &SensorWorkload::alarm_query(0.6, 0.05, 0.05).to_string(),
            &db,
            config,
        );

        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut ctx = ctx_for(&db, config, &mut rng);
        let (_, captured) = plan.execute_capturing(&mut ctx).unwrap();

        // The statically computed prefix equals the captured done set, and
        // every scan belongs to it.
        assert_eq!(plan.prefix_done_flags(), captured.done_flags());
        let done = plan.prefix_done_flags();
        for (id, node) in plan.nodes().iter().enumerate() {
            if node.operator.name() == "scan" {
                assert!(done[id], "scan #{id} outside the prefix");
            }
        }
        // The stateful prefix lists the non-pure done nodes in id order.
        let stateful = plan.stateful_prefix();
        assert!(stateful.windows(2).all(|w| w[0] < w[1]));
        for &id in &stateful {
            assert!(done[id]);
            assert_ne!(plan.nodes()[id].operator.class(), OpClass::Pure);
        }

        // Disassemble into content-addressed parts and reassemble: resuming
        // the rebuilt snapshot is bit-identical to resuming the original.
        let mut slots: Vec<Option<EvaluatedRelation>> = vec![None; plan.nodes().len()];
        for (id, value) in captured.live_slots() {
            slots[id] = Some(value.clone());
        }
        let rebuilt = plan
            .assemble_snapshot(
                plan.prefix_done_flags(),
                slots,
                captured.database().clone(),
                captured.var_counter(),
                captured.stats(),
                captured.spaces().fork(),
            )
            .unwrap();

        let mut rng_a = ChaCha8Rng::seed_from_u64(23);
        let mut ctx_a = ctx_for(&db, config, &mut rng_a);
        let from_captured = plan.resume(&mut ctx_a, &captured).unwrap();
        let mut rng_b = ChaCha8Rng::seed_from_u64(23);
        let mut ctx_b = ctx_for(&db, config, &mut rng_b);
        let from_rebuilt = plan.resume(&mut ctx_b, &rebuilt).unwrap();
        assert_eq!(from_captured.relation, from_rebuilt.relation);
        assert_eq!(from_captured.errors, from_rebuilt.errors);
        assert_eq!(ctx_a.stats, ctx_b.stats);
        assert_eq!(ctx_a.database, ctx_b.database);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());

        // Missing live slots are rejected, as are wrongly sized vectors and
        // done sets that deviate from the stateful prefix.
        assert!(plan
            .assemble_snapshot(
                plan.prefix_done_flags(),
                vec![None; plan.nodes().len()],
                captured.database().clone(),
                captured.var_counter(),
                captured.stats(),
                captured.spaces().fork(),
            )
            .is_err());
        assert!(plan
            .assemble_snapshot(
                plan.prefix_done_flags(),
                Vec::new(),
                captured.database().clone(),
                captured.var_counter(),
                captured.stats(),
                captured.spaces().fork(),
            )
            .is_err());
        let mut bad_done = plan.prefix_done_flags();
        for (id, node) in plan.nodes().iter().enumerate() {
            if bad_done[id] && node.operator.class() != OpClass::Pure {
                bad_done[id] = false;
                break;
            }
        }
        let mut slots: Vec<Option<EvaluatedRelation>> = vec![None; plan.nodes().len()];
        for (id, value) in captured.live_slots() {
            slots[id] = Some(value.clone());
        }
        assert!(plan
            .assemble_snapshot(
                bad_done,
                slots,
                captured.database().clone(),
                captured.var_counter(),
                captured.stats(),
                captured.spaces().fork(),
            )
            .is_err());
    }

    #[test]
    fn deterministic_snapshot_serves_the_root_result() {
        let db = TupleIndependentDb::default().database();
        let config = EvalConfig::exact();
        let plan = lowered("conf(project[A](T))", &db, config);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ctx = ctx_for(&db, config, &mut rng);
        let (cold, snapshot) = plan.execute_capturing(&mut ctx).unwrap();
        assert!(snapshot.is_complete());
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ctx = ctx_for(&db, config, &mut rng);
        let warm = plan.resume(&mut ctx, &snapshot).unwrap();
        assert_eq!(cold.relation, warm.relation);
    }

    #[test]
    fn sequential_execution_restores_shard_width_on_error() {
        // repair-key over an uncertain input fails at execution time; the
        // sequential schedule's single-batch override must be rolled back on
        // that error path instead of leaking `shards = 1` into subsequent
        // evaluations on the same context.
        let mut db = UDatabase::new();
        db.add_variable(Var::new("c"), [(Value::Int(0), 0.5), (Value::Int(1), 0.5)])
            .unwrap();
        let mut r = URelation::empty(pdb::schema!["A", "W"]);
        r.insert(
            Condition::new([(Var::new("c"), Value::Int(0))]).unwrap(),
            pdb::tuple![1, 1],
        )
        .unwrap();
        db.set_relation("R", r, false);
        let config = EvalConfig::exact().with_shards(6);
        let plan = lowered("repairkey[A @ W](R)", &db, config);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut ctx = ctx_for(&db, config, &mut rng);
        assert!(plan.execute_sequential(&mut ctx).is_err());
        assert_eq!(ctx.config.shards, 6, "override leaked past the error");
        // The context stays usable at its configured width.
        let poss = lowered("poss(R)", &db, config);
        assert!(poss.execute_sequential(&mut ctx).is_ok());
        assert_eq!(ctx.config.shards, 6);
    }

    #[test]
    fn wave_executor_matches_sequential_on_branchy_plans() {
        let db = TupleIndependentDb {
            num_tuples: 150,
            domain_size: 5,
            tuple_probability: None,
            seed: 8,
        }
        .database();
        // Two independent branches joined: the wave executor overlaps them.
        let text = "join(project[A, B](select[A >= 1](T)), rename[B -> C](project[A, B](T)))";
        for shards in [1usize, 3, 8] {
            let config = EvalConfig::exact().with_shards(shards);
            let engine = UEngine::new(config);
            let query = algebra::parse_query(text).unwrap();
            let catalog = crate::adaptive_query::catalog_of(&db).unwrap();
            let plan = LogicalPlan::lower_validated(&query, &catalog).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let wave = engine.evaluate_plan(&db, &plan, &mut rng).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let sequential = engine
                .evaluate_plan_sequential(&db, &plan, &mut rng)
                .unwrap();
            assert_eq!(wave.result.relation, sequential.result.relation);
            assert_eq!(wave.stats, sequential.stats);
        }
    }
}
