//! Whole-query approximation by iteration doubling (Theorem 6.7).
//!
//! "Start with a small value of l, say 1.  Evaluate the query using that l
//! value.  Record error probabilities for each tuple while proceeding.  If
//! the error of a tuple in the output exceeds δ, double l and restart.
//! Repeat until the desired error bound is achieved.  This is guaranteed to
//! happen in polynomial time, at the latest when l ≥ l₀."

use crate::error::{EngineError, Result};
use crate::error_bound::{theorem_6_7_iterations, QueryShape};
use crate::exec::{ApproxSelectMode, ConfidenceMode, EvalConfig, EvalOutput, UEngine};
use algebra::{structural_params, Catalog, LogicalPlan, Query};
use rand::Rng;
use urel::UDatabase;

/// Result of the adaptive evaluation: the final output plus a trace of the
/// attempted iteration counts and the output error bound each achieved.
#[derive(Clone, Debug)]
pub struct AdaptiveOutput {
    /// The final evaluation output.
    pub output: EvalOutput,
    /// The iteration count `l` the final evaluation used.
    pub iterations_used: usize,
    /// One `(l, max output error)` entry per attempt, in order.
    pub attempts: Vec<(usize, f64)>,
    /// The `l₀` fallback budget computed from Theorem 6.7.
    pub l0: usize,
}

/// Builds the catalog describing `database` for static analysis.
pub fn catalog_of(database: &UDatabase) -> Result<Catalog> {
    let mut catalog = Catalog::new();
    for name in database.relation_names() {
        let schema = database.schema_of(&name)?;
        catalog.add(name.clone(), schema, database.is_complete(&name));
    }
    Ok(catalog)
}

/// The number of active-domain elements of the database: distinct values
/// appearing in any relation (at least 1, so the Proposition 6.6 bound stays
/// well defined).
pub fn active_domain_size(database: &UDatabase) -> Result<usize> {
    let mut values = std::collections::BTreeSet::new();
    for name in database.relation_names() {
        let rel = database.relation(&name)?;
        for row in rel.iter() {
            for v in row.tuple.values() {
                values.insert(v.clone());
            }
        }
    }
    Ok(values.len().max(1))
}

/// Evaluates a positive UA[σ̂] query with overall per-tuple error at most
/// `delta` (for tuples without singularities in their provenance), following
/// the doubling strategy of Theorem 6.7.
///
/// `epsilon0` is the smallest relative interval the σ̂ operators refine to;
/// the per-operator ε₀/δ parameters in the query are ignored in favour of the
/// driver's own (this mirrors the theorem statement, which fixes ε₀ and the
/// query and takes δ as the input).
pub fn evaluate_adaptive<R: Rng + ?Sized>(
    database: &UDatabase,
    query: &Query,
    epsilon0: f64,
    delta: f64,
    rng: &mut R,
) -> Result<AdaptiveOutput> {
    let catalog = catalog_of(database)?;
    let params = structural_params(query, &catalog)?;
    let n = active_domain_size(database)?;
    let shape = QueryShape::new(params.k.max(1), params.approx_select_depth.max(1), n)?;
    let l0 = theorem_6_7_iterations(shape, epsilon0, delta)?;

    // Lower (and validate) once; every attempt re-lowers only the physical
    // plan, with a doubled iteration budget.
    let plan = LogicalPlan::lower_validated(query, &catalog)?;
    let mut attempts = Vec::new();
    let mut l = 1usize;
    loop {
        let engine = UEngine::new(EvalConfig {
            approx_select: ApproxSelectMode::FixedIterations(l),
            confidence: ConfidenceMode::Exact,
            ..EvalConfig::default()
        });
        let output = engine.evaluate_plan(database, &plan, rng)?;
        let max_error = output.result.max_error();
        attempts.push((l, max_error));
        if max_error <= delta {
            return Ok(AdaptiveOutput {
                output,
                iterations_used: l,
                attempts,
                l0,
            });
        }
        if l >= l0 {
            // Theorem 6.7 guarantees convergence by l₀ for tuples without
            // singularities; reaching this point means some output tuple sits
            // on (or too close to) a decision boundary.
            return Err(EngineError::DidNotConverge {
                delta,
                achieved: max_error,
            });
        }
        l = (l * 2).min(l0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{parse_query, CmpOp, ConfTerm, Expr, Predicate};
    use pdb::{relation, schema, tuple};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use urel::UDatabase;

    /// A small sensor-style database: each reading is kept with the given
    /// weight under repair-key, and the query keeps sensor ids whose
    /// readings' confidence clears a threshold.
    fn sensor_db() -> UDatabase {
        UDatabase::from_complete_relations([(
            "Readings",
            relation![schema!["Sensor", "Temp", "Weight"];
                [1, 20.0, 8.0], [1, 35.0, 2.0],
                [2, 21.0, 5.0], [2, 36.0, 5.0],
                [3, 22.0, 1.0], [3, 37.0, 9.0]],
        )])
    }

    fn high_temp_query(threshold: f64) -> Query {
        // Keep sensors whose probability of a high reading (≥ 30) is at
        // least `threshold`.
        Query::table("Readings")
            .repair_key(&["Sensor"], "Weight")
            .select(Predicate::cmp(
                Expr::attr("Temp"),
                CmpOp::Ge,
                Expr::konst(30.0),
            ))
            .approx_select(
                vec![ConfTerm::new("P1", ["Sensor"])],
                Predicate::ge(Expr::attr("P1"), Expr::konst(threshold)),
                0.05,
                0.05,
            )
    }

    #[test]
    fn catalog_and_domain_helpers() {
        let db = sensor_db();
        let catalog = catalog_of(&db).unwrap();
        assert!(catalog.is_complete("Readings").unwrap());
        let n = active_domain_size(&db).unwrap();
        assert!(n >= 9);
        assert!(active_domain_size(&UDatabase::new()).unwrap() >= 1);
    }

    #[test]
    fn adaptive_driver_reaches_the_target_on_clear_inputs() {
        // Sensor 1: P(high) = 0.2, sensor 2: 0.5, sensor 3: 0.9 — with a
        // threshold of 0.4 the margins are clear except sensor 2, so use a
        // threshold away from all of them.
        let db = sensor_db();
        let query = high_temp_query(0.7);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let out = evaluate_adaptive(&db, &query, 0.05, 0.1, &mut rng).unwrap();
        assert!(out.output.result.max_error() <= 0.1);
        assert!(out.iterations_used >= 1);
        assert!(!out.attempts.is_empty());
        assert!(out.l0 >= out.iterations_used);
        // Only sensor 3 (0.9 ≥ 0.7) should be in the result.
        let tuples = out.output.result.relation.possible_tuples();
        assert!(tuples.contains(&tuple![3]));
        assert!(!tuples.contains(&tuple![1]));
    }

    #[test]
    fn singular_inputs_are_reported_instead_of_looping_forever() {
        // Sensor 2's probability of a high reading is exactly 0.5, which is a
        // singularity of the threshold-0.5 predicate: the driver must give up
        // with DidNotConverge rather than loop.  A generous δ and coarse ε₀
        // keep l₀ small so the test stays fast.
        let db = sensor_db();
        let query = high_temp_query(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let result = evaluate_adaptive(&db, &query, 0.25, 0.2, &mut rng);
        match result {
            Err(EngineError::DidNotConverge { achieved, .. }) => assert!(achieved > 0.2),
            Ok(out) => {
                // Randomness may occasionally let the bound squeak through if
                // the estimate lands far from 0.5; in that case the error
                // bound must still be honoured.
                assert!(out.output.result.max_error() <= 0.2);
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn queries_without_approx_select_converge_immediately() {
        let db = sensor_db();
        let query = parse_query("project[Sensor](Readings)").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = evaluate_adaptive(&db, &query, 0.05, 0.05, &mut rng).unwrap();
        assert_eq!(out.output.result.relation.possible_tuples().len(), 3);
        assert_eq!(out.output.result.max_error(), 0.0);
        assert_eq!(out.attempts.len(), 1);
    }
}
