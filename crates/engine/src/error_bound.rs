//! The closed-form whole-query error bounds of Proposition 6.6 and the
//! iteration budget of Theorem 6.7.

use crate::error::{EngineError, Result};
use confidence::chernoff;

/// Structural parameters of a positive UA[σ̂] query used by the bound of
/// Proposition 6.6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryShape {
    /// Upper bound `k` on both the maximum arity of subquery results and the
    /// number of confidence terms in any single approximate selection.
    pub k: usize,
    /// Nesting depth `d` of approximate selection operators.
    pub d: usize,
    /// Number of active-domain elements `n` in the database.
    pub n: usize,
}

impl QueryShape {
    /// Creates a shape descriptor, requiring non-degenerate parameters.
    pub fn new(k: usize, d: usize, n: usize) -> Result<Self> {
        if k == 0 || n == 0 {
            return Err(EngineError::Invariant(
                "query shape needs k >= 1 and n >= 1".into(),
            ));
        }
        Ok(QueryShape { k, d, n })
    }

    /// `n^{k·d}` computed in log-space and clamped to `f64::MAX`, since the
    /// bound is only ever compared against probabilities.
    pub fn domain_factor(&self) -> f64 {
        let exponent = (self.k * self.d) as f64;
        let log = exponent * (self.n as f64).ln();
        if log > f64::MAX.ln() {
            f64::MAX
        } else {
            log.exp()
        }
    }
}

/// Proposition 6.6: for a tuple without singularities in its provenance,
/// `Pr[t ∈ Q ⇎ t ∈ Q∼] ≤ k·d·n^{k·d}·δ′(ε₀, l)`.
pub fn proposition_6_6_bound(shape: QueryShape, epsilon0: f64, iterations: usize) -> Result<f64> {
    let delta_prime = chernoff::delta_prime(epsilon0, iterations)?;
    Ok((shape.k as f64 * shape.d as f64 * shape.domain_factor() * delta_prime).min(1.0))
}

/// Theorem 6.7: the iteration count
/// `l₀ = ⌈3·ln(2·k·d·n^{k·d}/δ)/ε₀²⌉` at which the Proposition 6.6 bound
/// drops below δ; the adaptive driver never needs to go beyond it.
pub fn theorem_6_7_iterations(shape: QueryShape, epsilon0: f64, delta: f64) -> Result<usize> {
    if !(epsilon0 > 0.0 && epsilon0 < 1.0) {
        return Err(EngineError::Invariant(format!(
            "epsilon0 = {epsilon0} must be in (0, 1)"
        )));
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(EngineError::Invariant(format!(
            "delta = {delta} must be in (0, 1)"
        )));
    }
    if shape.d == 0 {
        // No approximate selections: nothing to iterate.
        return Ok(0);
    }
    // ln(2·k·d·n^{k·d}/δ) computed in log-space to avoid overflow.
    let log_arg = (2.0 * shape.k as f64 * shape.d as f64 / delta).ln()
        + (shape.k * shape.d) as f64 * (shape.n as f64).ln();
    Ok((3.0 * log_arg / (epsilon0 * epsilon0)).ceil() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        assert!(QueryShape::new(0, 1, 10).is_err());
        assert!(QueryShape::new(2, 1, 0).is_err());
        let s = QueryShape::new(2, 1, 10).unwrap();
        assert!((s.domain_factor() - 100.0).abs() < 1e-9);
        // d = 0 means no σ̂ at all; the domain factor is 1.
        let s = QueryShape::new(2, 0, 10).unwrap();
        assert_eq!(s.domain_factor(), 1.0);
        // Huge exponents saturate instead of overflowing.
        let s = QueryShape::new(64, 64, 1_000_000).unwrap();
        assert_eq!(s.domain_factor(), f64::MAX);
    }

    #[test]
    fn bound_decreases_with_iterations_and_meets_delta_at_l0() {
        let shape = QueryShape::new(2, 2, 20).unwrap();
        let l0 = theorem_6_7_iterations(shape, 0.05, 0.05).unwrap();
        let b1 = proposition_6_6_bound(shape, 0.05, l0 / 2).unwrap();
        let bound_at_l0 = proposition_6_6_bound(shape, 0.05, l0).unwrap();
        assert!(bound_at_l0 < b1);
        assert!(b1 <= 1.0);
        assert!(bound_at_l0 <= 0.05 + 1e-9, "bound at l0 = {bound_at_l0}");
        // One fewer order of magnitude of iterations does not suffice.
        let bound_small = proposition_6_6_bound(shape, 0.05, l0 / 10).unwrap();
        assert!(bound_small > 0.05);
    }

    #[test]
    fn iteration_budget_grows_with_depth_and_domain() {
        let small = theorem_6_7_iterations(QueryShape::new(2, 1, 10).unwrap(), 0.1, 0.05).unwrap();
        let deeper = theorem_6_7_iterations(QueryShape::new(2, 3, 10).unwrap(), 0.1, 0.05).unwrap();
        let wider =
            theorem_6_7_iterations(QueryShape::new(2, 1, 1000).unwrap(), 0.1, 0.05).unwrap();
        assert!(deeper > small);
        assert!(wider > small);
        // No σ̂ ⇒ no iterations.
        assert_eq!(
            theorem_6_7_iterations(QueryShape::new(2, 0, 10).unwrap(), 0.1, 0.05).unwrap(),
            0
        );
    }

    #[test]
    fn parameter_validation() {
        let shape = QueryShape::new(2, 1, 10).unwrap();
        assert!(theorem_6_7_iterations(shape, 0.0, 0.05).is_err());
        assert!(theorem_6_7_iterations(shape, 0.1, 0.0).is_err());
        assert!(theorem_6_7_iterations(shape, 1.0, 0.5).is_err());
        assert!(proposition_6_6_bound(shape, 0.0, 10).is_err());
    }
}
