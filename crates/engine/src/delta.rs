//! Incremental (delta) re-evaluation of pure relational operators.
//!
//! Given an operator's *old* output, its inputs' *new* values and the exact
//! row edits ([`urel::RelationDelta`]-style inserted/deleted sets) of each
//! input, these rules produce the operator's new output **bit-for-bit equal
//! to a full recompute** — the invariant that lets the serving layer patch
//! pooled sub-plan results in place after a relation update instead of
//! demoting and recomputing them (`ServingEngine::apply_deltas`).
//!
//! Cost model, per rule:
//!
//! * selection / renaming / extension map row edits **pointwise** — these
//!   operators are injective on rows, so an edited input row corresponds to
//!   exactly one output row; cost `O(|Δ|)`.
//! * projection (and `poss`) are *not* injective: inserting images is
//!   pointwise, but a deleted row's image survives while any other input
//!   row still maps onto it.  Deletions therefore rescan the new input for
//!   remaining support, with early exit once every candidate image is
//!   accounted for (`O(|Δ|)` when deleted images are re-inserted, up to one
//!   input scan otherwise).
//! * union removes a deleted row only when the *other* side no longer
//!   contains it (set semantics); cost `O(|Δ| log n)`.
//! * natural join recomputes exactly the join keys the delta touches: rows
//!   with unaffected keys are kept from the old output (one bulk clone plus
//!   targeted removals), and the new inputs restricted to affected keys are
//!   re-joined.  Linear key-projection scans over the inputs and old output
//!   remain (there is no retained key index), but all *join work* —
//!   condition merges, row construction, set insertion — is confined to the
//!   delta's key fan-out.
//!
//! Operators without a profitable rule (cartesian product — every output
//! pairs with every input row — and difference) decline by returning `None`
//! from [`PhysicalOperator::execute_delta`](crate::physical::PhysicalOperator::execute_delta),
//! which makes the serving layer fall back to demote-and-recompute for that
//! sub-plan.

use crate::error::Result;
use algebra::{Predicate, ProjItem};
use pdb::{Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use urel::{Condition, URelation, URow};

/// One input of an incremental re-evaluation: the input's value *after* the
/// update plus the exact row edits relative to its value before it.
pub struct DeltaInput<'a> {
    /// The input's new (post-update) value.
    pub new: &'a URelation,
    /// Rows added relative to the pre-update value.
    pub inserted: &'a BTreeSet<URow>,
    /// Rows removed relative to the pre-update value.
    pub deleted: &'a BTreeSet<URow>,
}

impl DeltaInput<'_> {
    /// True if this input did not change.
    pub fn is_unchanged(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }
}

/// Incremental `σ_φ`: selection is injective on rows, so deletions and
/// insertions map pointwise through the predicate.
pub fn select_delta(
    old_output: &URelation,
    input: &DeltaInput<'_>,
    predicate: &Predicate,
) -> Result<URelation> {
    let schema = input.new.schema();
    let mut out = old_output.clone();
    for row in input.deleted {
        if predicate.eval(schema, &row.tuple)? {
            out.remove_row(row);
        }
    }
    for row in input.inserted {
        if predicate.eval(schema, &row.tuple)? {
            out.insert(row.condition.clone(), row.tuple.clone())?;
        }
    }
    Ok(out)
}

/// Incremental `ρ`: renaming keeps every row unchanged (only the schema
/// differs), so edits map through verbatim.
pub fn rename_delta(old_output: &URelation, input: &DeltaInput<'_>) -> Result<URelation> {
    let mut out = old_output.clone();
    for row in input.deleted {
        out.remove_row(row);
    }
    for row in input.inserted {
        out.insert(row.condition.clone(), row.tuple.clone())?;
    }
    Ok(out)
}

/// Incremental extension: the input tuple is a recoverable prefix of the
/// output tuple, so extension is injective and edits map pointwise.
pub fn extend_delta(
    old_output: &URelation,
    input: &DeltaInput<'_>,
    items: &[ProjItem],
) -> Result<URelation> {
    let schema = input.new.schema();
    let extended = |row: &URow| -> Result<URow> {
        let mut values: Vec<Value> = row.tuple.clone().into_values();
        for item in items {
            values.push(item.expr.eval(schema, &row.tuple)?);
        }
        Ok(URow {
            condition: row.condition.clone(),
            tuple: Tuple::new(values),
        })
    };
    let mut out = old_output.clone();
    for row in input.deleted {
        out.remove_row(&extended(row)?);
    }
    for row in input.inserted {
        let e = extended(row)?;
        out.insert(e.condition, e.tuple)?;
    }
    Ok(out)
}

/// Shared machinery of the non-injective pointwise operators (projection,
/// `poss`): insertions map pointwise; a deleted row's image is removed only
/// when no surviving input row still maps onto it, checked by a support
/// rescan with early exit.
fn mapped_delta(
    old_output: &URelation,
    input: &DeltaInput<'_>,
    map: impl Fn(&URow) -> Result<URow>,
) -> Result<URelation> {
    let mut out = old_output.clone();
    let mut candidates: BTreeSet<URow> = BTreeSet::new();
    for row in input.deleted {
        candidates.insert(map(row)?);
    }
    for row in input.inserted {
        let image = map(row)?;
        candidates.remove(&image);
        out.insert(image.condition, image.tuple)?;
    }
    if !candidates.is_empty() {
        // Rescan for support: any image still produced by the new input
        // survives.  Early exit once every candidate is either supported or
        // the input is exhausted.
        for row in input.new.iter() {
            candidates.remove(&map(row)?);
            if candidates.is_empty() {
                break;
            }
        }
        for unsupported in &candidates {
            out.remove_row(unsupported);
        }
    }
    Ok(out)
}

/// Incremental generalised projection `π`.
pub fn project_delta(
    old_output: &URelation,
    input: &DeltaInput<'_>,
    items: &[ProjItem],
) -> Result<URelation> {
    let schema = input.new.schema();
    mapped_delta(old_output, input, |row| {
        let mut values: Vec<Value> = Vec::with_capacity(items.len());
        for item in items {
            values.push(item.expr.eval(schema, &row.tuple)?);
        }
        Ok(URow {
            condition: row.condition.clone(),
            tuple: Tuple::new(values),
        })
    })
}

/// Incremental `poss`: the image of a row is its data tuple under the empty
/// condition, with the same support structure as a projection.
pub fn poss_delta(old_output: &URelation, input: &DeltaInput<'_>) -> Result<URelation> {
    mapped_delta(old_output, input, |row| {
        Ok(URow {
            condition: Condition::always(),
            tuple: row.tuple.clone(),
        })
    })
}

/// Incremental `∪`: a deleted row leaves the union only when the other
/// side's new value no longer contains it.
pub fn union_delta(
    old_output: &URelation,
    left: &DeltaInput<'_>,
    right: &DeltaInput<'_>,
) -> Result<URelation> {
    let mut out = old_output.clone();
    for row in left.deleted {
        if !right.new.contains_row(row) {
            out.remove_row(row);
        }
    }
    for row in right.deleted {
        if !left.new.contains_row(row) {
            out.remove_row(row);
        }
    }
    for row in left.inserted.iter().chain(right.inserted.iter()) {
        out.insert(row.condition.clone(), row.tuple.clone())?;
    }
    Ok(out)
}

/// Incremental `⋈`: every output row carries the join key of the input pair
/// that produced it, so rows with keys the delta never touches are exactly
/// unchanged.  The rule keeps those from the old output and re-joins the new
/// inputs *restricted to the affected keys* — deletions included, since an
/// output row can be supported by several input pairs and the per-key
/// recompute re-derives exactly the surviving support.
///
/// Returns `None` when the sides share no attributes (the join degenerates
/// to a cartesian product, where every output row is affected by every
/// edit and an in-place patch cannot beat a recompute).
pub fn natural_join_delta(
    old_output: &URelation,
    left: &DeltaInput<'_>,
    right: &DeltaInput<'_>,
) -> Result<Option<URelation>> {
    let shared: Vec<String> = left
        .new
        .schema()
        .attrs()
        .iter()
        .filter(|a| right.new.schema().contains(a))
        .cloned()
        .collect();
    if shared.is_empty() {
        return Ok(None);
    }
    let left_idx = left
        .new
        .schema()
        .indices_of(&shared)
        .map_err(crate::error::EngineError::Pdb)?;
    let right_idx = right
        .new
        .schema()
        .indices_of(&shared)
        .map_err(crate::error::EngineError::Pdb)?;
    let right_rest: Vec<String> = right.new.schema().minus(&shared);
    let right_rest_idx = right
        .new
        .schema()
        .indices_of(&right_rest)
        .map_err(crate::error::EngineError::Pdb)?;

    let mut affected: BTreeSet<Tuple> = BTreeSet::new();
    for row in left.inserted.iter().chain(left.deleted.iter()) {
        affected.insert(row.tuple.project(&left_idx));
    }
    for row in right.inserted.iter().chain(right.deleted.iter()) {
        affected.insert(row.tuple.project(&right_idx));
    }
    if affected.is_empty() {
        return Ok(Some(old_output.clone()));
    }

    // Drop every old output row with an affected key (the output schema is
    // `left attrs ++ right rest`, so the left key indices address the join
    // key of an output row too).  One bulk clone plus targeted removals —
    // not a row-by-row rebuild of the unaffected majority.
    let stale: Vec<URow> = old_output
        .iter()
        .filter(|row| affected.contains(&row.tuple.project(&left_idx)))
        .cloned()
        .collect();
    let mut out = old_output.clone();
    for row in &stale {
        out.remove_row(row);
    }

    // Re-join the new inputs restricted to the affected keys.
    let mut right_map: BTreeMap<Tuple, Vec<&URow>> = BTreeMap::new();
    for row in right.new.iter() {
        let key = row.tuple.project(&right_idx);
        if affected.contains(&key) {
            right_map.entry(key).or_default().push(row);
        }
    }
    for l in left.new.iter() {
        let key = l.tuple.project(&left_idx);
        if !affected.contains(&key) {
            continue;
        }
        let Some(matches) = right_map.get(&key) else {
            continue;
        };
        for r in matches {
            let Some(cond) = l.condition.merge(&r.condition) else {
                continue;
            };
            out.insert(cond, l.tuple.concat(&r.tuple.project(&right_rest_idx)))?;
        }
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use algebra::Expr;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use urel::Var;

    /// A random relation over `schema` with rows `(A ∈ 0..keys, B ∈ 0..4)`
    /// under conditions drawn from a tiny variable pool (including the empty
    /// condition, so completeness paths are exercised too).
    fn random_relation(rng: &mut ChaCha8Rng, attrs: &[&str], keys: i64, rows: usize) -> URelation {
        let mut rel =
            URelation::empty(pdb::Schema::new(attrs.iter().map(|a| a.to_string())).unwrap());
        for _ in 0..rows {
            let tuple = Tuple::new(
                (0..attrs.len())
                    .map(|i| Value::Int(rng.gen_range(0..keys + i as i64)))
                    .collect::<Vec<_>>(),
            );
            let condition = match rng.gen_range(0..3u8) {
                0 => Condition::always(),
                v => Condition::new([(Var::new(format!("v{v}")), Value::Int(rng.gen_range(0..2)))])
                    .unwrap(),
            };
            rel.insert(condition, tuple).unwrap();
        }
        rel
    }

    /// A random edit of `base`: delete up to `edits` rows, insert up to
    /// `edits` fresh ones.  Returns (new value, inserted, deleted).
    fn random_edit(
        rng: &mut ChaCha8Rng,
        base: &URelation,
        keys: i64,
        edits: usize,
    ) -> (URelation, BTreeSet<URow>, BTreeSet<URow>) {
        let rows: Vec<URow> = base.iter().cloned().collect();
        let mut new = base.clone();
        for _ in 0..rng.gen_range(0..=edits) {
            if rows.is_empty() {
                break;
            }
            let victim = &rows[rng.gen_range(0..rows.len())];
            new.remove_row(victim);
        }
        for _ in 0..rng.gen_range(0..=edits) {
            let arity = base.schema().arity();
            let tuple = Tuple::new(
                (0..arity)
                    .map(|_| Value::Int(rng.gen_range(0..keys + 2)))
                    .collect::<Vec<_>>(),
            );
            let _ = new.insert(Condition::always(), tuple);
        }
        let delta = base.diff(&new).unwrap();
        (new, delta.inserted().clone(), delta.deleted().clone())
    }

    #[test]
    fn incremental_rules_match_full_recomputation() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let predicate = Predicate::ge(Expr::attr("A"), Expr::konst(2));
        let proj = [ProjItem::attr("A")];
        let ext = [ProjItem::computed(
            Expr::attr("A") * Expr::konst(2),
            "Doubled",
        )];
        for round in 0..40 {
            let old_l = random_relation(&mut rng, &["A", "B"], 4, 12);
            let old_r = random_relation(&mut rng, &["A", "C"], 4, 10);
            let (new_l, ins_l, del_l) = random_edit(&mut rng, &old_l, 4, 3);
            let (new_r, ins_r, del_r) = random_edit(&mut rng, &old_r, 4, 3);
            let dl = DeltaInput {
                new: &new_l,
                inserted: &ins_l,
                deleted: &del_l,
            };
            let dr = DeltaInput {
                new: &new_r,
                inserted: &ins_r,
                deleted: &del_r,
            };
            assert_eq!(dl.is_unchanged(), ins_l.is_empty() && del_l.is_empty());

            // Selection.
            let old_out = ops::select(&old_l, &predicate).unwrap();
            assert_eq!(
                select_delta(&old_out, &dl, &predicate).unwrap(),
                ops::select(&new_l, &predicate).unwrap(),
                "select, round {round}"
            );
            // Projection (non-injective: drops B).
            let old_out = ops::project(&old_l, &proj).unwrap();
            assert_eq!(
                project_delta(&old_out, &dl, &proj).unwrap(),
                ops::project(&new_l, &proj).unwrap(),
                "project, round {round}"
            );
            // Extension.
            let old_out = ops::extend(&old_l, &ext).unwrap();
            assert_eq!(
                extend_delta(&old_out, &dl, &ext).unwrap(),
                ops::extend(&new_l, &ext).unwrap(),
                "extend, round {round}"
            );
            // Renaming.
            let old_out = ops::rename(&old_l, "B", "B2").unwrap();
            assert_eq!(
                rename_delta(&old_out, &dl).unwrap(),
                ops::rename(&new_l, "B", "B2").unwrap(),
                "rename, round {round}"
            );
            // Poss.
            let old_out = URelation::from_complete(&old_l.possible_tuples());
            assert_eq!(
                poss_delta(&old_out, &dl).unwrap(),
                URelation::from_complete(&new_l.possible_tuples()),
                "poss, round {round}"
            );
            // Union (same-schema sides).
            let (new_l2, ins_l2, del_l2) = random_edit(&mut rng, &old_r, 4, 3);
            let dl2 = DeltaInput {
                new: &new_l2,
                inserted: &ins_l2,
                deleted: &del_l2,
            };
            let old_out = ops::union(&old_r, &old_r).unwrap();
            assert_eq!(
                union_delta(&old_out, &dr, &dl2).unwrap(),
                ops::union(&new_r, &new_l2).unwrap(),
                "union, round {round}"
            );
            // Natural join on the shared attribute A (conditions merge, and
            // conflicting conditions drop rows — both paths exercised).
            let old_out = ops::natural_join(&old_l, &old_r).unwrap();
            assert_eq!(
                natural_join_delta(&old_out, &dl, &dr).unwrap().unwrap(),
                ops::natural_join(&new_l, &new_r).unwrap(),
                "join, round {round}"
            );
        }
    }

    #[test]
    fn join_without_shared_attributes_declines() {
        let l = random_relation(&mut ChaCha8Rng::seed_from_u64(1), &["A"], 3, 4);
        let r = random_relation(&mut ChaCha8Rng::seed_from_u64(2), &["B"], 3, 4);
        let empty = BTreeSet::new();
        let dl = DeltaInput {
            new: &l,
            inserted: &empty,
            deleted: &empty,
        };
        let dr = DeltaInput {
            new: &r,
            inserted: &empty,
            deleted: &empty,
        };
        let old_out = ops::natural_join(&l, &r).unwrap();
        assert!(natural_join_delta(&old_out, &dl, &dr).unwrap().is_none());
    }

    #[test]
    fn unchanged_inputs_keep_the_old_output() {
        let l = random_relation(&mut ChaCha8Rng::seed_from_u64(3), &["A", "B"], 3, 8);
        let r = random_relation(&mut ChaCha8Rng::seed_from_u64(4), &["A", "C"], 3, 8);
        let empty = BTreeSet::new();
        let dl = DeltaInput {
            new: &l,
            inserted: &empty,
            deleted: &empty,
        };
        let dr = DeltaInput {
            new: &r,
            inserted: &empty,
            deleted: &empty,
        };
        let old_out = ops::natural_join(&l, &r).unwrap();
        assert_eq!(
            natural_join_delta(&old_out, &dl, &dr).unwrap().unwrap(),
            old_out
        );
    }
}
