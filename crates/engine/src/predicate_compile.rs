//! Compiling the selection condition of an approximate selection into a
//! predicate over approximable values.
//!
//! The condition of `σ̂_{φ(conf[A⃗₁], …, conf[A⃗_k])}` is written against the
//! placeholder attributes `P₁, …, P_k`; the Section 5 machinery wants a
//! predicate over indexed values `x₀, …, x_{k−1}`.  Atomic comparisons are
//! compiled to [`LinearIneq`] when their difference is a linear combination
//! of the placeholders (so that Theorem 5.2's closed form applies) and to
//! single-occurrence [`AlgebraicIneq`] otherwise (Theorem 5.5).

use crate::error::{EngineError, Result};
use algebra::{CmpOp, Expr, Predicate};
use approx::{AlgExpr, AlgebraicIneq, ApproxPredicate, LinearIneq};

/// Compiles a placeholder predicate into an [`ApproxPredicate`].
///
/// `placeholders[i]` is the attribute name that maps to value index `i`.
pub fn compile_predicate(
    predicate: &Predicate,
    placeholders: &[String],
) -> Result<ApproxPredicate> {
    Ok(match predicate {
        Predicate::True => ApproxPredicate::True,
        Predicate::False => ApproxPredicate::False,
        Predicate::And(a, b) => {
            compile_predicate(a, placeholders)?.and(compile_predicate(b, placeholders)?)
        }
        Predicate::Or(a, b) => {
            compile_predicate(a, placeholders)?.or(compile_predicate(b, placeholders)?)
        }
        Predicate::Not(a) => compile_predicate(a, placeholders)?.not(),
        Predicate::Cmp(lhs, op, rhs) => compile_comparison(lhs, *op, rhs, placeholders)?,
    })
}

/// Compiles a single comparison.  Comparisons are rewritten into the `≥ 0`
/// form of Section 5; strict comparisons differ only on the measure-zero
/// boundary, which does not affect the error analysis, so `<`/`>` compile to
/// the negation of the corresponding non-strict form.
fn compile_comparison(
    lhs: &Expr,
    op: CmpOp,
    rhs: &Expr,
    placeholders: &[String],
) -> Result<ApproxPredicate> {
    let ge = |a: &Expr, b: &Expr| -> Result<ApproxPredicate> {
        // a − b ≥ 0.
        atom_from_difference(a, b, placeholders)
    };
    Ok(match op {
        CmpOp::Ge => ge(lhs, rhs)?,
        CmpOp::Le => ge(rhs, lhs)?,
        CmpOp::Gt => ge(rhs, lhs)?.not(),
        CmpOp::Lt => ge(lhs, rhs)?.not(),
        CmpOp::Eq => ge(lhs, rhs)?.and(ge(rhs, lhs)?),
        CmpOp::Ne => ge(lhs, rhs)?.and(ge(rhs, lhs)?).not(),
    })
}

fn atom_from_difference(
    lhs: &Expr,
    rhs: &Expr,
    placeholders: &[String],
) -> Result<ApproxPredicate> {
    // Try the linear form first: Σ a_i·x_i + c ≥ 0  ⇔  Σ a_i·x_i ≥ −c.
    if let (Some(mut l), Some(r)) = (linearize(lhs, placeholders), linearize(rhs, placeholders)) {
        for (a, b) in l.coeffs.iter_mut().zip(&r.coeffs) {
            *a -= b;
        }
        l.constant -= r.constant;
        return Ok(ApproxPredicate::linear(LinearIneq::new(
            l.coeffs,
            -l.constant,
        )));
    }
    // Fall back to the algebraic form of Theorem 5.5.
    let expr = to_alg_expr(lhs, placeholders)? - to_alg_expr(rhs, placeholders)?;
    let ineq = AlgebraicIneq::new(expr).map_err(EngineError::Approx)?;
    Ok(ApproxPredicate::algebraic(ineq))
}

/// A linear combination `Σ coeffs[i]·x_i + constant`.
struct LinearForm {
    coeffs: Vec<f64>,
    constant: f64,
}

/// Attempts to view an expression as a linear combination of the
/// placeholders; returns `None` if it is not linear (product or quotient of
/// two non-constant subexpressions).
fn linearize(expr: &Expr, placeholders: &[String]) -> Option<LinearForm> {
    let k = placeholders.len();
    let zero = || LinearForm {
        coeffs: vec![0.0; k],
        constant: 0.0,
    };
    match expr {
        Expr::Const(v) => {
            let c = v.as_f64()?;
            let mut f = zero();
            f.constant = c;
            Some(f)
        }
        Expr::Attr(name) => {
            let i = placeholders.iter().position(|p| p == name)?;
            let mut f = zero();
            f.coeffs[i] = 1.0;
            Some(f)
        }
        Expr::Neg(a) => {
            let mut f = linearize(a, placeholders)?;
            for c in &mut f.coeffs {
                *c = -*c;
            }
            f.constant = -f.constant;
            Some(f)
        }
        Expr::Add(a, b) | Expr::Sub(a, b) => {
            let fa = linearize(a, placeholders)?;
            let fb = linearize(b, placeholders)?;
            let sign = if matches!(expr, Expr::Add(_, _)) {
                1.0
            } else {
                -1.0
            };
            Some(LinearForm {
                coeffs: fa
                    .coeffs
                    .iter()
                    .zip(&fb.coeffs)
                    .map(|(x, y)| x + sign * y)
                    .collect(),
                constant: fa.constant + sign * fb.constant,
            })
        }
        Expr::Mul(a, b) => {
            let fa = linearize(a, placeholders)?;
            let fb = linearize(b, placeholders)?;
            let a_const = fa.coeffs.iter().all(|&c| c == 0.0);
            let b_const = fb.coeffs.iter().all(|&c| c == 0.0);
            match (a_const, b_const) {
                (true, _) => Some(LinearForm {
                    coeffs: fb.coeffs.iter().map(|c| c * fa.constant).collect(),
                    constant: fa.constant * fb.constant,
                }),
                (_, true) => Some(LinearForm {
                    coeffs: fa.coeffs.iter().map(|c| c * fb.constant).collect(),
                    constant: fa.constant * fb.constant,
                }),
                _ => None,
            }
        }
        Expr::Div(a, b) => {
            let fa = linearize(a, placeholders)?;
            let fb = linearize(b, placeholders)?;
            if fb.coeffs.iter().all(|&c| c == 0.0) && fb.constant != 0.0 {
                Some(LinearForm {
                    coeffs: fa.coeffs.iter().map(|c| c / fb.constant).collect(),
                    constant: fa.constant / fb.constant,
                })
            } else {
                None
            }
        }
    }
}

/// Converts an expression over placeholder attributes into an [`AlgExpr`]
/// over value indices.
fn to_alg_expr(expr: &Expr, placeholders: &[String]) -> Result<AlgExpr> {
    Ok(match expr {
        Expr::Const(v) => AlgExpr::konst(v.as_f64().ok_or_else(|| {
            EngineError::Algebra(algebra::AlgebraError::TypeError(format!(
                "non-numeric constant `{v}` in an approximate selection condition"
            )))
        })?),
        Expr::Attr(name) => {
            let i = placeholders.iter().position(|p| p == name).ok_or_else(|| {
                EngineError::Algebra(algebra::AlgebraError::UnknownAttribute(name.clone()))
            })?;
            AlgExpr::var(i)
        }
        Expr::Neg(a) => -to_alg_expr(a, placeholders)?,
        Expr::Add(a, b) => to_alg_expr(a, placeholders)? + to_alg_expr(b, placeholders)?,
        Expr::Sub(a, b) => to_alg_expr(a, placeholders)? - to_alg_expr(b, placeholders)?,
        Expr::Mul(a, b) => to_alg_expr(a, placeholders)? * to_alg_expr(b, placeholders)?,
        Expr::Div(a, b) => to_alg_expr(a, placeholders)? / to_alg_expr(b, placeholders)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::parse_predicate;

    fn placeholders(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn threshold_compiles_to_linear() {
        let p = parse_predicate("P1 >= 0.5").unwrap();
        let compiled = compile_predicate(&p, &placeholders(&["P1"])).unwrap();
        match &compiled {
            ApproxPredicate::Atom(approx::Atom::Linear(l)) => {
                assert_eq!(l.coeffs, vec![1.0]);
                assert_eq!(l.bound, 0.5);
            }
            other => panic!("expected a linear atom, got {other:?}"),
        }
        assert!(compiled.eval(&[0.6]).unwrap());
        assert!(!compiled.eval(&[0.4]).unwrap());
    }

    #[test]
    fn linear_combination_compiles_to_linear() {
        let p = parse_predicate("P1 - 2 * P2 + 0.1 >= 0.3").unwrap();
        let compiled = compile_predicate(&p, &placeholders(&["P1", "P2"])).unwrap();
        match &compiled {
            ApproxPredicate::Atom(approx::Atom::Linear(l)) => {
                assert_eq!(l.coeffs, vec![1.0, -2.0]);
                assert!((l.bound - 0.2).abs() < 1e-12);
            }
            other => panic!("expected a linear atom, got {other:?}"),
        }
    }

    #[test]
    fn ratio_compiles_to_algebraic() {
        // Example 6.1: P1/P2 ≤ 0.5 compiles to 0.5 − P1/P2 ≥ 0 (algebraic,
        // single occurrence).
        let p = parse_predicate("P1 / P2 <= 0.5").unwrap();
        let compiled = compile_predicate(&p, &placeholders(&["P1", "P2"])).unwrap();
        assert!(matches!(
            compiled,
            ApproxPredicate::Atom(approx::Atom::Algebraic(_))
        ));
        assert!(compiled.eval(&[0.2, 0.6]).unwrap());
        assert!(!compiled.eval(&[0.5, 0.6]).unwrap());
    }

    #[test]
    fn strict_and_equality_forms() {
        let placeholders = placeholders(&["P1", "P2"]);
        let lt = compile_predicate(&parse_predicate("P1 < 0.5").unwrap(), &placeholders).unwrap();
        assert!(lt.eval(&[0.4, 0.0]).unwrap());
        assert!(!lt.eval(&[0.6, 0.0]).unwrap());
        let gt = compile_predicate(&parse_predicate("P1 > P2").unwrap(), &placeholders).unwrap();
        assert!(gt.eval(&[0.7, 0.2]).unwrap());
        assert!(!gt.eval(&[0.2, 0.7]).unwrap());
        let eq = compile_predicate(&parse_predicate("P1 = P2").unwrap(), &placeholders).unwrap();
        assert!(eq.eval(&[0.3, 0.3]).unwrap());
        assert!(!eq.eval(&[0.3, 0.4]).unwrap());
        let ne = compile_predicate(&parse_predicate("P1 != P2").unwrap(), &placeholders).unwrap();
        assert!(ne.eval(&[0.3, 0.4]).unwrap());
    }

    #[test]
    fn boolean_structure_is_preserved() {
        let p = parse_predicate("P1 >= 0.5 and not P2 >= 0.9 or false").unwrap();
        let compiled = compile_predicate(&p, &placeholders(&["P1", "P2"])).unwrap();
        assert!(compiled.eval(&[0.6, 0.1]).unwrap());
        assert!(!compiled.eval(&[0.6, 0.95]).unwrap());
        assert!(!compiled.eval(&[0.4, 0.1]).unwrap());
        let t = compile_predicate(&Predicate::True, &placeholders(&[])).unwrap();
        assert_eq!(t, ApproxPredicate::True);
    }

    #[test]
    fn repeated_variable_in_nonlinear_atom_is_rejected() {
        // P1·P1 ≥ 0.5 is neither linear nor single-occurrence.
        let p = parse_predicate("P1 * P1 >= 0.5").unwrap();
        let err = compile_predicate(&p, &placeholders(&["P1"]));
        assert!(err.is_err());
        // But P1·P1 appearing linearly via constants is fine: 2·P1 ≥ 0.5.
        let p = parse_predicate("2 * P1 >= 0.5").unwrap();
        assert!(compile_predicate(&p, &placeholders(&["P1"])).is_ok());
    }

    #[test]
    fn unknown_placeholder_is_rejected() {
        let p = parse_predicate("P9 / P1 >= 0.5").unwrap();
        assert!(compile_predicate(&p, &placeholders(&["P1"])).is_err());
        // Non-numeric constants are rejected too.
        let p = parse_predicate("P1 >= 'abc'").unwrap();
        assert!(compile_predicate(&p, &placeholders(&["P1"])).is_err());
    }
}
