//! Bridging the named random variables of a U-relational database to the
//! index-based probability space the `confidence` crate estimates over,
//! with two serving-grade caches layered on top:
//!
//! * a **lineage/event cache inside [`CompiledSpace`]**: the batch of DNF
//!   events of a whole relation ([`RelationEvents`]) is extracted once,
//!   **compiled into flat bit-parallel lineage programs**
//!   ([`confidence::LineagePrograms`]) and memoised by relation content, so
//!   repeated evaluations of a cached plan pay for estimation only — never
//!   for re-walking rows, re-translating conditions, or re-compiling event
//!   trees (the programs, and the exact probabilities the exact estimator
//!   memoises inside them, are the serving layer's warm estimator state);
//! * a **[`SpaceCache`]** memoising compilation of W-table states, so the
//!   confidence-bearing operators of one pipeline (and warm re-executions of
//!   a prepared query) share one compiled space instead of recompiling per
//!   operator.

use crate::error::{EngineError, Result};
use crate::sync::{LockRank, OrderedMutex};
use confidence::{Assignment, DnfEvent, LineagePrograms, ProbabilitySpace, VarId};
use pdb::{Tuple, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use urel::{Condition, URelation, Var, WTable};

/// Upper bound on distinct relations memoised per compiled space; reaching
/// it clears the cache (steady-state serving re-fills the handful of hot
/// entries immediately).
const LINEAGE_CACHE_CAP: usize = 1024;

/// A compiled view of a W-table: the probability space plus the name/value →
/// index mappings needed to translate conditions into assignments, plus a
/// content-addressed cache of per-relation lineage batches.
pub struct CompiledSpace {
    space: ProbabilitySpace,
    var_ids: HashMap<Var, VarId>,
    alt_ids: HashMap<(Var, Value), usize>,
    /// Relation content digest → extracted event batch.  Content-addressed,
    /// so the cache stays correct no matter who shares this compiled space;
    /// keying by digest instead of a relation clone keeps the cache from
    /// retaining copies of large relations.
    lineage: OrderedMutex<HashMap<RelationDigest, Arc<RelationEvents>>>,
    /// Number of lineage-cache hits: warm requests that reused an already
    /// extracted-and-compiled batch (so they paid estimation only).
    lineage_hits: std::sync::atomic::AtomicU64,
}

/// A 128-bit-plus-length content fingerprint of a relation: two
/// independently seeded 64-bit hashes over all rows plus the row count.  A
/// collision would require two distinct relations agreeing on both hashes
/// *and* their size — vanishingly unlikely, and the probes never store the
/// relation itself.
type RelationDigest = (u64, u64, usize);

fn relation_digest(relation: &URelation) -> RelationDigest {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h1 = DefaultHasher::new();
    relation.hash(&mut h1);
    let mut h2 = DefaultHasher::new();
    0xA5A5_5A5A_F00D_CAFE_u64.hash(&mut h2);
    relation.hash(&mut h2);
    (h1.finish(), h2.finish(), relation.len())
}

impl fmt::Debug for CompiledSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledSpace")
            .field("space", &self.space)
            .field("cached_relations", &self.lineage_len())
            .finish()
    }
}

impl Clone for CompiledSpace {
    fn clone(&self) -> Self {
        CompiledSpace {
            space: self.space.clone(),
            var_ids: self.var_ids.clone(),
            alt_ids: self.alt_ids.clone(),
            // The clone starts with an empty cache; entries are cheap to
            // rebuild and keeping them shared would need another Arc layer.
            lineage: OrderedMutex::new(LockRank::LineageCache, "space.lineage", HashMap::new()),
            lineage_hits: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

/// The lineage batch of one relation: every distinct data tuple paired with
/// its translated DNF event — already compiled into flat bit-parallel
/// programs — in canonical tuple order.
#[derive(Clone, Debug)]
pub struct RelationEvents {
    tuples: Vec<Tuple>,
    programs: Arc<LineagePrograms>,
    index: BTreeMap<Tuple, usize>,
}

impl RelationEvents {
    /// The distinct tuples, in the order of
    /// [`URelation::possible_tuples`].
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The events, parallel to [`tuples`](RelationEvents::tuples).
    pub fn events(&self) -> &[DnfEvent] {
        self.programs.events()
    }

    /// The compiled lineage programs of the batch — the input of the
    /// bit-parallel `estimate_compiled*` estimator paths, cached alongside
    /// the events so a warm request never recompiles.
    pub fn programs(&self) -> &Arc<LineagePrograms> {
        &self.programs
    }

    /// The batch index of one tuple (`None` if the tuple is not in the
    /// relation; its event is then the impossible event).
    pub fn index_of(&self, t: &Tuple) -> Option<usize> {
        self.index.get(t).copied()
    }

    /// The event of one tuple (`None` if the tuple is not in the relation;
    /// its event is then the impossible event).
    pub fn event_of(&self, t: &Tuple) -> Option<&DnfEvent> {
        self.index_of(t).map(|i| &self.programs.events()[i])
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation had no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl CompiledSpace {
    /// Compiles a W-table.
    pub fn compile(wtable: &WTable) -> Result<CompiledSpace> {
        let mut space = ProbabilitySpace::new();
        let mut var_ids = HashMap::new();
        let mut alt_ids = HashMap::new();
        for (var, dist) in wtable.iter() {
            let probs: Vec<f64> = dist.iter().map(|(_, p)| *p).collect();
            let id = space.add_variable(probs)?;
            var_ids.insert(var.clone(), id);
            for (alt, (value, _)) in dist.iter().enumerate() {
                alt_ids.insert((var.clone(), value.clone()), alt);
            }
        }
        Ok(CompiledSpace {
            space,
            var_ids,
            alt_ids,
            lineage: OrderedMutex::new(LockRank::LineageCache, "space.lineage", HashMap::new()),
            lineage_hits: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The index-based probability space.
    pub fn space(&self) -> &ProbabilitySpace {
        &self.space
    }

    /// The whole lineage batch of a relation — [`URelation::tuple_events`]
    /// plus condition translation plus compilation into bit-parallel lineage
    /// programs — memoised by relation content, so a warm re-execution of a
    /// cached plan never re-extracts, re-translates, or re-compiles.
    pub fn relation_events(&self, relation: &URelation) -> Result<Arc<RelationEvents>> {
        let digest = relation_digest(relation);
        if let Some(hit) = self.lineage.lock().get(&digest) {
            self.lineage_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(hit.clone());
        }
        let batch = relation.tuple_events();
        let mut tuples = Vec::with_capacity(batch.len());
        let mut events = Vec::with_capacity(batch.len());
        let mut index = BTreeMap::new();
        for (i, (t, conditions)) in batch.into_iter().enumerate() {
            events.push(self.event(&conditions)?);
            index.insert(t.clone(), i);
            tuples.push(t);
        }
        let programs = Arc::new(
            LineagePrograms::compile(events, &self.space).map_err(EngineError::Confidence)?,
        );
        let entry = Arc::new(RelationEvents {
            tuples,
            programs,
            index,
        });
        let mut guard = self.lineage.lock();
        // A shared space can outlive many evaluations (serving); bound the
        // cache so varying post-sampling relations cannot grow it forever.
        if guard.len() >= LINEAGE_CACHE_CAP {
            guard.clear();
        }
        guard.insert(digest, entry.clone());
        Ok(entry)
    }

    /// Number of relations whose lineage batch is currently cached.
    pub fn lineage_len(&self) -> usize {
        self.lineage.lock().len()
    }

    /// Number of lineage-cache hits so far: requests served from an already
    /// extracted-and-compiled batch.  A warm serving resume of a confidence
    /// query must hit here — paying sampling only — rather than re-extract
    /// or re-compile.
    pub fn lineage_hits(&self) -> u64 {
        self.lineage_hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Translates a condition (partial function over named variables) into an
    /// index-based assignment.
    pub fn assignment(&self, condition: &Condition) -> Result<Assignment> {
        let mut pairs = Vec::with_capacity(condition.len());
        for (var, value) in condition.iter() {
            let var_id = *self.var_ids.get(var).ok_or_else(|| {
                EngineError::Urel(urel::UrelError::UnknownVariable(var.name().to_owned()))
            })?;
            let alt = *self
                .alt_ids
                .get(&(var.clone(), value.clone()))
                .ok_or_else(|| {
                    EngineError::Urel(urel::UrelError::UnknownDomainValue {
                        var: var.name().to_owned(),
                        value: value.to_string(),
                    })
                })?;
            pairs.push((var_id, alt));
        }
        Assignment::new(pairs).map_err(Into::into)
    }

    /// Translates a DNF of conditions (the event under which a tuple belongs
    /// to a relation) into an index-based [`DnfEvent`].
    pub fn event(&self, conditions: &[Condition]) -> Result<DnfEvent> {
        let mut terms = Vec::with_capacity(conditions.len());
        for c in conditions {
            terms.push(self.assignment(c)?);
        }
        Ok(DnfEvent::new(terms))
    }
}

/// A cache of compiled W-table states, shared by every confidence-bearing
/// operator of one evaluation (and, through the serving layer's prepared
/// snapshots, by warm re-executions of the same query).
///
/// States are keyed by the variable count.  The W-table of one evaluation
/// lineage only ever *grows* (repair-key introduces variables, nothing
/// removes them) and executes deterministically, so within one evaluation —
/// or across evaluations that fork from the same snapshot via
/// [`SpaceCache::fork`] — equal counts imply equal tables.  The cache must
/// not be shared across unrelated databases; the engine creates one per
/// evaluation and the serving layer one per prepared query.
#[derive(Clone, Debug)]
pub struct SpaceCache {
    inner: Arc<OrderedMutex<HashMap<usize, Arc<CompiledSpace>>>>,
}

impl Default for SpaceCache {
    fn default() -> Self {
        SpaceCache {
            inner: Arc::new(OrderedMutex::new(
                LockRank::SpaceCache,
                "space.cache",
                HashMap::new(),
            )),
        }
    }
}

impl SpaceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SpaceCache::default()
    }

    /// The compiled space for the W-table's current state, compiling at most
    /// once per state.
    pub fn compiled(&self, wtable: &WTable) -> Result<Arc<CompiledSpace>> {
        let key = wtable.num_variables();
        if let Some(hit) = self.inner.lock().get(&key) {
            return Ok(hit.clone());
        }
        let compiled = Arc::new(CompiledSpace::compile(wtable)?);
        self.inner.lock().insert(key, compiled.clone());
        Ok(compiled)
    }

    /// A detached copy: shares the already-compiled spaces (and their
    /// content-addressed lineage caches, which are safe to share) but gets
    /// its own map, so states compiled after the fork never leak between
    /// evaluation branches whose W-tables diverge at equal counts.
    pub fn fork(&self) -> SpaceCache {
        let snapshot = self.inner.lock().clone();
        SpaceCache {
            inner: Arc::new(OrderedMutex::new(
                LockRank::SpaceCache,
                "space.cache",
                snapshot,
            )),
        }
    }

    /// Number of cached W-table states.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confidence::exact;
    use pdb::Value;

    fn coin_wtable() -> WTable {
        let mut w = WTable::new();
        w.add_variable(
            Var::new("c"),
            [
                (Value::str("fair"), 2.0 / 3.0),
                (Value::str("2headed"), 1.0 / 3.0),
            ],
        )
        .unwrap();
        w.add_variable(
            Var::new("t1"),
            [(Value::str("H"), 0.5), (Value::str("T"), 0.5)],
        )
        .unwrap();
        w.add_variable(
            Var::new("t2"),
            [(Value::str("H"), 0.5), (Value::str("T"), 0.5)],
        )
        .unwrap();
        w
    }

    #[test]
    fn compiles_and_translates_conditions() {
        let w = coin_wtable();
        let cs = CompiledSpace::compile(&w).unwrap();
        assert_eq!(cs.space().num_variables(), 3);
        let cond = Condition::new([
            (Var::new("c"), Value::str("fair")),
            (Var::new("t1"), Value::str("H")),
        ])
        .unwrap();
        let a = cs.assignment(&cond).unwrap();
        assert_eq!(a.len(), 2);
        assert!(
            (a.weight(cs.space()).unwrap() - cond.weight(&w).unwrap()).abs() < 1e-12,
            "weights must agree between representations"
        );
    }

    #[test]
    fn event_probability_matches_example_2_2() {
        let w = coin_wtable();
        let cs = CompiledSpace::compile(&w).unwrap();
        let both_heads_fair = Condition::new([
            (Var::new("c"), Value::str("fair")),
            (Var::new("t1"), Value::str("H")),
            (Var::new("t2"), Value::str("H")),
        ])
        .unwrap();
        let two_headed = Condition::new([(Var::new("c"), Value::str("2headed"))]).unwrap();
        let event = cs.event(&[both_heads_fair, two_headed]).unwrap();
        let p = exact::probability(&event, cs.space()).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relation_events_are_memoised_by_content() {
        use pdb::{schema, tuple};
        let w = coin_wtable();
        let cs = CompiledSpace::compile(&w).unwrap();
        let mut rel = URelation::empty(schema!["CoinType"]);
        rel.insert(
            Condition::new([(Var::new("c"), Value::str("fair"))]).unwrap(),
            tuple!["fair"],
        )
        .unwrap();
        rel.insert(
            Condition::new([(Var::new("t1"), Value::str("H"))]).unwrap(),
            tuple!["fair"],
        )
        .unwrap();
        rel.insert(
            Condition::new([(Var::new("c"), Value::str("2headed"))]).unwrap(),
            tuple!["2headed"],
        )
        .unwrap();

        let a = cs.relation_events(&rel).unwrap();
        assert_eq!(cs.lineage_len(), 1);
        assert_eq!(cs.lineage_hits(), 0);
        // A content-equal clone hits the cache — including the compiled
        // programs, which are built exactly once per content digest.
        let b = cs.relation_events(&rel.clone()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(a.programs(), b.programs()));
        assert_eq!(a.programs().len(), a.len());
        assert_eq!(cs.lineage_len(), 1);
        assert_eq!(cs.lineage_hits(), 1);

        // The batch matches the per-tuple extraction.
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        for (t, conditions) in rel.tuple_events() {
            let expected = cs.event(&conditions).unwrap();
            assert_eq!(a.event_of(&t), Some(&expected));
        }
        assert_eq!(a.tuples().len(), a.events().len());
        assert!(a.event_of(&tuple!["3sided"]).is_none());

        // Clones of the space start with an empty cache but equal mappings.
        let cloned = cs.clone();
        assert_eq!(cloned.lineage_len(), 0);
        assert_eq!(cloned.space().num_variables(), cs.space().num_variables());
    }

    #[test]
    fn space_cache_compiles_once_per_state_and_forks_detached() {
        let mut w = coin_wtable();
        let cache = SpaceCache::new();
        assert!(cache.is_empty());
        let a = cache.compiled(&w).unwrap();
        let b = cache.compiled(&w).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);

        let fork = cache.fork();
        // The fork shares already-compiled states…
        assert!(Arc::ptr_eq(&a, &fork.compiled(&w).unwrap()));
        // …but states compiled after the fork stay private.
        w.add_bool_variable(Var::new("extra"), 0.5).unwrap();
        fork.compiled(&w).unwrap();
        assert_eq!(fork.len(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn unknown_variables_and_values_error() {
        let w = coin_wtable();
        let cs = CompiledSpace::compile(&w).unwrap();
        let unknown_var = Condition::new([(Var::new("ghost"), Value::Int(1))]).unwrap();
        assert!(cs.assignment(&unknown_var).is_err());
        let unknown_value = Condition::new([(Var::new("c"), Value::str("3headed"))]).unwrap();
        assert!(cs.assignment(&unknown_value).is_err());
        assert!(cs.event(&[unknown_value]).is_err());
    }
}
