//! Bridging the named random variables of a U-relational database to the
//! index-based probability space the `confidence` crate estimates over.

use crate::error::{EngineError, Result};
use confidence::{Assignment, DnfEvent, ProbabilitySpace, VarId};
use pdb::Value;
use std::collections::HashMap;
use urel::{Condition, Var, WTable};

/// A compiled view of a W-table: the probability space plus the name/value →
/// index mappings needed to translate conditions into assignments.
#[derive(Clone, Debug)]
pub struct CompiledSpace {
    space: ProbabilitySpace,
    var_ids: HashMap<Var, VarId>,
    alt_ids: HashMap<(Var, Value), usize>,
}

impl CompiledSpace {
    /// Compiles a W-table.
    pub fn compile(wtable: &WTable) -> Result<CompiledSpace> {
        let mut space = ProbabilitySpace::new();
        let mut var_ids = HashMap::new();
        let mut alt_ids = HashMap::new();
        for (var, dist) in wtable.iter() {
            let probs: Vec<f64> = dist.iter().map(|(_, p)| *p).collect();
            let id = space.add_variable(probs)?;
            var_ids.insert(var.clone(), id);
            for (alt, (value, _)) in dist.iter().enumerate() {
                alt_ids.insert((var.clone(), value.clone()), alt);
            }
        }
        Ok(CompiledSpace {
            space,
            var_ids,
            alt_ids,
        })
    }

    /// The index-based probability space.
    pub fn space(&self) -> &ProbabilitySpace {
        &self.space
    }

    /// Translates a condition (partial function over named variables) into an
    /// index-based assignment.
    pub fn assignment(&self, condition: &Condition) -> Result<Assignment> {
        let mut pairs = Vec::with_capacity(condition.len());
        for (var, value) in condition.iter() {
            let var_id = *self.var_ids.get(var).ok_or_else(|| {
                EngineError::Urel(urel::UrelError::UnknownVariable(var.name().to_owned()))
            })?;
            let alt = *self
                .alt_ids
                .get(&(var.clone(), value.clone()))
                .ok_or_else(|| {
                    EngineError::Urel(urel::UrelError::UnknownDomainValue {
                        var: var.name().to_owned(),
                        value: value.to_string(),
                    })
                })?;
            pairs.push((var_id, alt));
        }
        Assignment::new(pairs).map_err(Into::into)
    }

    /// Translates a DNF of conditions (the event under which a tuple belongs
    /// to a relation) into an index-based [`DnfEvent`].
    pub fn event(&self, conditions: &[Condition]) -> Result<DnfEvent> {
        let mut terms = Vec::with_capacity(conditions.len());
        for c in conditions {
            terms.push(self.assignment(c)?);
        }
        Ok(DnfEvent::new(terms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confidence::exact;
    use pdb::Value;

    fn coin_wtable() -> WTable {
        let mut w = WTable::new();
        w.add_variable(
            Var::new("c"),
            [
                (Value::str("fair"), 2.0 / 3.0),
                (Value::str("2headed"), 1.0 / 3.0),
            ],
        )
        .unwrap();
        w.add_variable(
            Var::new("t1"),
            [(Value::str("H"), 0.5), (Value::str("T"), 0.5)],
        )
        .unwrap();
        w.add_variable(
            Var::new("t2"),
            [(Value::str("H"), 0.5), (Value::str("T"), 0.5)],
        )
        .unwrap();
        w
    }

    #[test]
    fn compiles_and_translates_conditions() {
        let w = coin_wtable();
        let cs = CompiledSpace::compile(&w).unwrap();
        assert_eq!(cs.space().num_variables(), 3);
        let cond = Condition::new([
            (Var::new("c"), Value::str("fair")),
            (Var::new("t1"), Value::str("H")),
        ])
        .unwrap();
        let a = cs.assignment(&cond).unwrap();
        assert_eq!(a.len(), 2);
        assert!(
            (a.weight(cs.space()).unwrap() - cond.weight(&w).unwrap()).abs() < 1e-12,
            "weights must agree between representations"
        );
    }

    #[test]
    fn event_probability_matches_example_2_2() {
        let w = coin_wtable();
        let cs = CompiledSpace::compile(&w).unwrap();
        let both_heads_fair = Condition::new([
            (Var::new("c"), Value::str("fair")),
            (Var::new("t1"), Value::str("H")),
            (Var::new("t2"), Value::str("H")),
        ])
        .unwrap();
        let two_headed = Condition::new([(Var::new("c"), Value::str("2headed"))]).unwrap();
        let event = cs.event(&[both_heads_fair, two_headed]).unwrap();
        let p = exact::probability(&event, cs.space()).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_variables_and_values_error() {
        let w = coin_wtable();
        let cs = CompiledSpace::compile(&w).unwrap();
        let unknown_var = Condition::new([(Var::new("ghost"), Value::Int(1))]).unwrap();
        assert!(cs.assignment(&unknown_var).is_err());
        let unknown_value = Condition::new([(Var::new("c"), Value::str("3headed"))]).unwrap();
        assert!(cs.assignment(&unknown_value).is_err());
        assert!(cs.event(&[unknown_value]).is_err());
    }
}
