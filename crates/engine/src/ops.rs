//! The parsimonious translation of positive relational algebra onto
//! U-relations (Section 3): every operation manipulates `(condition, tuple)`
//! rows directly, merging conditions where the classical operation would
//! combine tuples.

use crate::error::{EngineError, Result};
use algebra::{Predicate, ProjItem};
use pdb::{Schema, Tuple, Value};
use urel::{ColumnarChunk, URelation};

/// Merges per-chunk operator outputs; set semantics make the merged relation
/// identical to the single-batch result, whatever the chunking.
pub(crate) fn merge_chunks(outs: Vec<URelation>) -> URelation {
    let mut it = outs.into_iter();
    let mut merged = it.next().expect("partition yields at least one chunk");
    for o in it {
        merged.absorb(o);
    }
    merged
}

/// `σ_φ`: keeps rows whose data tuple satisfies the predicate.
pub fn select(rel: &URelation, predicate: &Predicate) -> Result<URelation> {
    predicate.check(rel.schema())?;
    let mut out = URelation::empty(rel.schema().clone());
    for row in rel.iter() {
        if predicate.eval(rel.schema(), &row.tuple)? {
            out.insert(row.condition.clone(), row.tuple.clone())?;
        }
    }
    Ok(out)
}

/// Generalised projection `π_items`: each output attribute is computed from
/// the input tuple; conditions are carried over unchanged.
pub fn project(rel: &URelation, items: &[ProjItem]) -> Result<URelation> {
    let out_schema = Schema::new(items.iter().map(|i| i.name.clone())).map_err(EngineError::Pdb)?;
    let mut out = URelation::empty(out_schema);
    for row in rel.iter() {
        let mut values: Vec<Value> = Vec::with_capacity(items.len());
        for item in items {
            values.push(item.expr.eval(rel.schema(), &row.tuple)?);
        }
        out.insert(row.condition.clone(), Tuple::new(values))?;
    }
    Ok(out)
}

/// Extension: keeps all input attributes and appends the computed items.
pub fn extend(rel: &URelation, items: &[ProjItem]) -> Result<URelation> {
    let mut names: Vec<String> = rel.schema().attrs().to_vec();
    names.extend(items.iter().map(|i| i.name.clone()));
    let out_schema = Schema::new(names).map_err(EngineError::Pdb)?;
    let mut out = URelation::empty(out_schema);
    for row in rel.iter() {
        let mut values: Vec<Value> = row.tuple.clone().into_values();
        for item in items {
            values.push(item.expr.eval(rel.schema(), &row.tuple)?);
        }
        out.insert(row.condition.clone(), Tuple::new(values))?;
    }
    Ok(out)
}

/// Columnar `σ_φ` over one chunk: identical output to [`select`] on the
/// chunk's rows.  Conditions stay in the chunk's flattened arenas and the
/// data tuple is gathered from the per-attribute arenas only for rows the
/// predicate keeps — the common single-attribute predicate touches one
/// contiguous column per probe.
pub fn select_columnar(chunk: &ColumnarChunk, predicate: &Predicate) -> Result<URelation> {
    predicate.check(chunk.schema())?;
    let mut out = URelation::empty(chunk.schema().clone());
    for i in 0..chunk.len() {
        let tuple = chunk.tuple_at(i);
        if predicate.eval(chunk.schema(), &tuple)? {
            out.insert(chunk.condition_at(i), tuple)?;
        }
    }
    Ok(out)
}

/// Columnar generalised projection over one chunk: identical output to
/// [`project`] on the chunk's rows.
pub fn project_columnar(chunk: &ColumnarChunk, items: &[ProjItem]) -> Result<URelation> {
    let out_schema = Schema::new(items.iter().map(|i| i.name.clone())).map_err(EngineError::Pdb)?;
    let mut out = URelation::empty(out_schema);
    for i in 0..chunk.len() {
        let tuple = chunk.tuple_at(i);
        let mut values: Vec<Value> = Vec::with_capacity(items.len());
        for item in items {
            values.push(item.expr.eval(chunk.schema(), &tuple)?);
        }
        out.insert(chunk.condition_at(i), Tuple::new(values))?;
    }
    Ok(out)
}

/// Columnar extension over one chunk: identical output to [`extend`] on the
/// chunk's rows.
pub fn extend_columnar(chunk: &ColumnarChunk, items: &[ProjItem]) -> Result<URelation> {
    let mut names: Vec<String> = chunk.schema().attrs().to_vec();
    names.extend(items.iter().map(|i| i.name.clone()));
    let out_schema = Schema::new(names).map_err(EngineError::Pdb)?;
    let mut out = URelation::empty(out_schema);
    for i in 0..chunk.len() {
        let tuple = chunk.tuple_at(i);
        let mut values: Vec<Value> = tuple.clone().into_values();
        for item in items {
            values.push(item.expr.eval(chunk.schema(), &tuple)?);
        }
        out.insert(chunk.condition_at(i), Tuple::new(values))?;
    }
    Ok(out)
}

/// Columnar `×` of one left-side chunk against the whole right side:
/// identical output to [`product`] restricted to the chunk's rows.
pub fn product_columnar(chunk: &ColumnarChunk, right: &URelation) -> Result<URelation> {
    let out_schema = chunk
        .schema()
        .concat(right.schema(), "rhs")
        .map_err(EngineError::Pdb)?;
    let mut out = URelation::empty(out_schema);
    for i in 0..chunk.len() {
        let lcond = chunk.condition_at(i);
        let ltuple = chunk.tuple_at(i);
        for r in right.iter() {
            let Some(cond) = lcond.merge(&r.condition) else {
                continue;
            };
            out.insert(cond, ltuple.concat(&r.tuple))?;
        }
    }
    Ok(out)
}

/// `ρ_{from→to}`: renames an attribute.
pub fn rename(rel: &URelation, from: &str, to: &str) -> Result<URelation> {
    let out_schema = rel.schema().rename(from, to).map_err(EngineError::Pdb)?;
    let mut out = URelation::empty(out_schema);
    for row in rel.iter() {
        out.insert(row.condition.clone(), row.tuple.clone())?;
    }
    Ok(out)
}

/// `×`: pairs of rows with consistent conditions; their conditions are merged
/// (the `UR.D ∪ US.D → D` of the Section 3 translation).
pub fn product(left: &URelation, right: &URelation) -> Result<URelation> {
    let out_schema = left
        .schema()
        .concat(right.schema(), "rhs")
        .map_err(EngineError::Pdb)?;
    let mut out = URelation::empty(out_schema);
    for l in left.iter() {
        for r in right.iter() {
            let Some(cond) = l.condition.merge(&r.condition) else {
                continue;
            };
            out.insert(cond, l.tuple.concat(&r.tuple))?;
        }
    }
    Ok(out)
}

/// `⋈`: natural join on shared attribute names, merging conditions.
pub fn natural_join(left: &URelation, right: &URelation) -> Result<URelation> {
    let shared: Vec<String> = left
        .schema()
        .attrs()
        .iter()
        .filter(|a| right.schema().contains(a))
        .cloned()
        .collect();
    let left_idx = left
        .schema()
        .indices_of(&shared)
        .map_err(EngineError::Pdb)?;
    let right_idx = right
        .schema()
        .indices_of(&shared)
        .map_err(EngineError::Pdb)?;
    let right_rest: Vec<String> = right.schema().minus(&shared);
    let right_rest_idx = right
        .schema()
        .indices_of(&right_rest)
        .map_err(EngineError::Pdb)?;

    let mut names: Vec<String> = left.schema().attrs().to_vec();
    names.extend(right_rest.iter().cloned());
    let out_schema = Schema::new(names).map_err(EngineError::Pdb)?;

    let mut out = URelation::empty(out_schema);
    for l in left.iter() {
        let lkey = l.tuple.project(&left_idx);
        for r in right.iter() {
            if r.tuple.project(&right_idx) != lkey {
                continue;
            }
            let Some(cond) = l.condition.merge(&r.condition) else {
                continue;
            };
            out.insert(cond, l.tuple.concat(&r.tuple.project(&right_rest_idx)))?;
        }
    }
    Ok(out)
}

/// Chunked `⋈`: identical output to [`natural_join`], organised for sharded
/// execution — the right side is indexed by join key *once*, the left side is
/// split into `shards` partitions, and each partition probes the shared
/// index (concurrently, when worker threads are available).  Because rows
/// live in sets, merging the per-chunk outputs reproduces the single-batch
/// result bit for bit; the index also turns the per-row cost from a full
/// right-side scan into a key lookup, so the chunked join wins even
/// single-threaded.
pub fn natural_join_sharded(
    left: &URelation,
    right: &URelation,
    shards: usize,
) -> Result<URelation> {
    natural_join_spilling(left, right, shards, 0)
}

/// The chunked join underneath [`natural_join_sharded`], with an optional
/// spill budget.  The left side is split into byte-budgeted *columnar*
/// chunks, so each probe projects its join key straight out of the chunk's
/// contiguous per-attribute arenas and the full output row is materialised
/// only on a key match.  With `spill_budget > 0` the chunk count also grows
/// to keep each chunk's input near the budget, and per-chunk outputs heavier
/// than the budget are written to digest-verified temporary segments and
/// merged back by streaming decode (`engine::storage`) — bounding resident
/// memory while producing the exact same relation.
pub fn natural_join_spilling(
    left: &URelation,
    right: &URelation,
    shards: usize,
    spill_budget: usize,
) -> Result<URelation> {
    use rayon::prelude::*;
    use std::collections::HashMap;

    let shared: Vec<String> = left
        .schema()
        .attrs()
        .iter()
        .filter(|a| right.schema().contains(a))
        .cloned()
        .collect();
    let left_idx = left
        .schema()
        .indices_of(&shared)
        .map_err(EngineError::Pdb)?;
    let right_idx = right
        .schema()
        .indices_of(&shared)
        .map_err(EngineError::Pdb)?;
    let right_rest: Vec<String> = right.schema().minus(&shared);
    let right_rest_idx = right
        .schema()
        .indices_of(&right_rest)
        .map_err(EngineError::Pdb)?;

    let mut names: Vec<String> = left.schema().attrs().to_vec();
    names.extend(right_rest.iter().cloned());
    let out_schema = Schema::new(names).map_err(EngineError::Pdb)?;

    // One shared key index over the right side; probed read-only by every
    // chunk.  The projected rest-tuples are precomputed alongside.
    let mut index: HashMap<Tuple, Vec<(&urel::Condition, Tuple)>> = HashMap::new();
    for r in right.iter() {
        index
            .entry(r.tuple.project(&right_idx))
            .or_default()
            .push((&r.condition, r.tuple.project(&right_rest_idx)));
    }

    let chunks = left.partition_columnar(chunk_count(left, shards, spill_budget));
    let outs: Vec<URelation> = chunks
        .par_iter()
        .map(|chunk| {
            let mut out = URelation::empty(out_schema.clone());
            for i in 0..chunk.len() {
                // Gather the key from the column arenas; rows without a
                // match never materialise a tuple or condition at all.
                let key: Tuple = left_idx
                    .iter()
                    .map(|&a| chunk.column(a)[i].clone())
                    .collect();
                let Some(matches) = index.get(&key) else {
                    continue;
                };
                let lcond = chunk.condition_at(i);
                let ltuple = chunk.tuple_at(i);
                for &(r_cond, ref r_rest) in matches {
                    let Some(cond) = lcond.merge(r_cond) else {
                        continue;
                    };
                    out.insert(cond, ltuple.concat(r_rest))?;
                }
            }
            Ok(out)
        })
        .collect::<Result<_>>()?;
    crate::storage::merge_spilling(outs, spill_budget)
}

/// How many chunks to split an operator input into: the sharding gate's
/// count, raised so no chunk's *input* weighs much more than the spill
/// budget (chunk outputs near the input's weight then spill individually).
pub(crate) fn chunk_count(input: &URelation, shards: usize, spill_budget: usize) -> usize {
    let by_budget = if spill_budget > 0 && !input.is_empty() {
        input.approx_bytes().div_ceil(spill_budget)
    } else {
        1
    };
    shards.max(1).max(by_budget)
}

/// `∪`: union of the row sets (schemas must have equal arity; the left
/// operand's attribute names win, as columns are positional).
pub fn union(left: &URelation, right: &URelation) -> Result<URelation> {
    if left.schema().arity() != right.schema().arity() {
        return Err(EngineError::Pdb(pdb::PdbError::SchemaMismatch(format!(
            "{} vs {}",
            left.schema(),
            right.schema()
        ))));
    }
    let mut out = URelation::empty(left.schema().clone());
    for row in left.iter().chain(right.iter()) {
        out.insert(row.condition.clone(), row.tuple.clone())?;
    }
    Ok(out)
}

/// `−c`: set difference of two *complete* relations (Proposition 3.3 keeps
/// this inside the tractable fragment).  Both inputs must carry only empty
/// conditions.
pub fn difference_complete(left: &URelation, right: &URelation) -> Result<URelation> {
    if !left.is_complete_representation() || !right.is_complete_representation() {
        return Err(EngineError::NotComplete(
            "difference (−c) requires complete inputs".into(),
        ));
    }
    if left.schema().arity() != right.schema().arity() {
        return Err(EngineError::Pdb(pdb::PdbError::SchemaMismatch(format!(
            "{} vs {}",
            left.schema(),
            right.schema()
        ))));
    }
    let right_tuples = right.possible_tuples();
    let mut out = URelation::empty(left.schema().clone());
    for row in left.iter() {
        if !right_tuples.contains(&row.tuple) {
            out.insert(row.condition.clone(), row.tuple.clone())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use algebra::{CmpOp, Expr};
    use pdb::{relation, schema, tuple};
    use urel::{Condition, Var};

    fn cond(var: &str, val: &str) -> Condition {
        Condition::new([(Var::new(var), Value::str(val))]).unwrap()
    }

    /// The uncertain relation R of Figure 1(a).
    fn ur() -> URelation {
        let mut u = URelation::empty(schema!["CoinType"]);
        u.insert(cond("c", "fair"), tuple!["fair"]).unwrap();
        u.insert(cond("c", "2headed"), tuple!["2headed"]).unwrap();
        u
    }

    /// A complete Faces relation as a U-relation.
    fn faces() -> URelation {
        URelation::from_complete(&relation![schema!["CoinType", "Face", "FProb"];
            ["fair", "H", 0.5], ["fair", "T", 0.5], ["2headed", "H", 1.0]])
    }

    #[test]
    fn select_filters_on_data_only() {
        let s = select(
            &ur(),
            &Predicate::eq(Expr::attr("CoinType"), Expr::konst("fair")),
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next().unwrap().condition, cond("c", "fair"));
        // Unknown attribute in the predicate is caught.
        assert!(select(&ur(), &Predicate::eq(Expr::attr("X"), Expr::konst(1))).is_err());
    }

    #[test]
    fn project_keeps_conditions_and_dedups() {
        let p = project(&ur(), &[ProjItem::attr("CoinType")]).unwrap();
        assert_eq!(p.len(), 2);
        // Projecting onto the empty schema keeps one row per distinct
        // condition.
        let empty = project(&ur(), &[]).unwrap();
        assert_eq!(empty.schema().arity(), 0);
        assert_eq!(empty.len(), 2);
    }

    #[test]
    fn extend_appends_computed_columns() {
        let f = faces();
        let e = extend(
            &f,
            &[ProjItem::computed(
                Expr::attr("FProb") * Expr::konst(2.0),
                "Doubled",
            )],
        )
        .unwrap();
        assert_eq!(e.schema().arity(), 4);
        assert!(e.possible_tuples().contains(&tuple!["fair", "H", 0.5, 1.0]));
    }

    #[test]
    fn rename_preserves_rows() {
        let r = rename(&ur(), "CoinType", "Kind").unwrap();
        assert_eq!(r.schema().attrs(), &["Kind".to_string()]);
        assert_eq!(r.len(), 2);
        assert!(rename(&ur(), "Nope", "X").is_err());
    }

    #[test]
    fn join_merges_conditions_and_drops_conflicts() {
        // Joining R with itself on CoinType keeps consistent pairs only.
        let j = natural_join(&ur(), &ur()).unwrap();
        assert_eq!(j.len(), 2);
        // Joining R with a renamed copy (no shared attributes → product)
        // produces only the consistent combinations: (fair, fair) and
        // (2headed, 2headed), since the conditions share variable c.
        let renamed = rename(&ur(), "CoinType", "Other").unwrap();
        let p = natural_join(&ur(), &renamed).unwrap();
        assert_eq!(p.len(), 2);
        for row in p.iter() {
            assert_eq!(row.tuple[0], row.tuple[1]);
        }
    }

    #[test]
    fn product_prefixes_duplicate_attributes() {
        let p = product(&ur(), &faces()).unwrap();
        assert!(p.schema().contains("rhs.CoinType"));
        // 2 uncertain rows × 3 complete rows, no condition conflicts.
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn join_with_complete_relation() {
        let j = natural_join(&ur(), &faces()).unwrap();
        // fair joins 2 faces, 2headed joins 1.
        assert_eq!(j.len(), 3);
        for row in j.iter() {
            assert_eq!(row.condition.len(), 1);
        }
    }

    #[test]
    fn sharded_join_matches_reference_for_every_chunk_count() {
        // A larger uncertain relation joined with a complete lookup table.
        let mut readings = URelation::empty(schema!["Sensor", "Temp"]);
        for i in 0..50 {
            readings
                .insert(cond("v", &format!("a{i}")), tuple![i % 7, 10 + (i % 13)])
                .unwrap();
        }
        let lookup = URelation::from_complete(&relation![schema!["Sensor", "Zone"];
            [0, "north"], [1, "north"], [2, "south"], [3, "south"], [4, "east"], [5, "east"]]);
        let reference = natural_join(&readings, &lookup).unwrap();
        for shards in [1usize, 2, 3, 4, 8, 64] {
            let sharded = natural_join_sharded(&readings, &lookup, shards).unwrap();
            assert_eq!(sharded, reference, "shards = {shards}");
        }
        // Self-join with conflicting conditions drops rows identically.
        let reference = natural_join(&ur(), &ur()).unwrap();
        assert_eq!(natural_join_sharded(&ur(), &ur(), 4).unwrap(), reference);
        // Empty sides.
        let empty = URelation::empty(schema!["Sensor", "Temp"]);
        assert_eq!(
            natural_join_sharded(&empty, &lookup, 4).unwrap(),
            natural_join(&empty, &lookup).unwrap()
        );
    }

    #[test]
    fn columnar_kernels_match_row_kernels_bit_for_bit() {
        let f = faces();
        for chunks in [1usize, 2, 3] {
            for chunk in f.partition_columnar(chunks) {
                let rows = chunk.to_relation();
                let pred = Predicate::cmp(Expr::attr("FProb"), CmpOp::Ge, Expr::konst(0.5));
                assert_eq!(
                    select_columnar(&chunk, &pred).unwrap(),
                    select(&rows, &pred).unwrap()
                );
                let items = [
                    ProjItem::attr("CoinType"),
                    ProjItem::computed(Expr::attr("FProb") * Expr::konst(2.0), "Doubled"),
                ];
                assert_eq!(
                    project_columnar(&chunk, &items).unwrap(),
                    project(&rows, &items).unwrap()
                );
                assert_eq!(
                    extend_columnar(&chunk, &items[1..]).unwrap(),
                    extend(&rows, &items[1..]).unwrap()
                );
                assert_eq!(
                    product_columnar(&chunk, &ur()).unwrap(),
                    product(&rows, &ur()).unwrap()
                );
            }
        }
        // Error paths classify identically (bad attribute reference).
        let chunk = ColumnarChunk::from_relation(&f);
        assert!(select_columnar(&chunk, &Predicate::eq(Expr::attr("X"), Expr::konst(1))).is_err());
    }

    #[test]
    fn spilling_join_matches_reference_under_tiny_budgets() {
        let mut readings = URelation::empty(schema!["Sensor", "Temp"]);
        for i in 0..60 {
            readings
                .insert(cond("v", &format!("a{i}")), tuple![i % 7, 10 + (i % 13)])
                .unwrap();
        }
        let lookup = URelation::from_complete(&relation![schema!["Sensor", "Zone"];
            [0, "north"], [1, "north"], [2, "south"], [3, "south"], [4, "east"], [5, "east"]]);
        let reference = natural_join(&readings, &lookup).unwrap();
        for budget in [64usize, 512, 1 << 20] {
            for shards in [1usize, 4] {
                assert_eq!(
                    natural_join_spilling(&readings, &lookup, shards, budget).unwrap(),
                    reference,
                    "shards = {shards}, budget = {budget}"
                );
            }
        }
        // Budget-driven chunking kicks in even at one shard.
        assert!(chunk_count(&readings, 1, 64) > 1);
        assert_eq!(chunk_count(&readings, 4, 0), 4);
        assert_eq!(chunk_count(&URelation::empty(schema!["A"]), 1, 64), 1);
    }

    #[test]
    fn union_and_difference() {
        let u = union(&ur(), &ur()).unwrap();
        assert_eq!(u.len(), 2); // identical rows dedup
        let a = URelation::from_complete(&relation![schema!["A"]; [1], [2]]);
        let b = URelation::from_complete(&relation![schema!["A"]; [2], [3]]);
        let d = difference_complete(&a, &b).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.possible_tuples().contains(&tuple![1]));
        // Uncertain inputs are rejected.
        let bad = difference_complete(&ur(), &ur());
        assert!(matches!(bad, Err(EngineError::NotComplete(_))));
        // Arity mismatches are rejected.
        let c = URelation::from_complete(&relation![schema!["A", "B"]; [1, 2]]);
        assert!(union(&a, &c).is_err());
        assert!(difference_complete(&a, &c).is_err());
    }

    #[test]
    fn selection_with_comparison_on_numbers() {
        let f = faces();
        let s = select(
            &f,
            &Predicate::cmp(Expr::attr("FProb"), CmpOp::Ge, Expr::konst(0.9)),
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.possible_tuples().contains(&tuple!["2headed", "H", 1.0]));
    }
}
