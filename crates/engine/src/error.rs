//! Error type for the query evaluation engine.

use std::fmt;

/// Errors raised while evaluating UA queries.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// Error from the possible-worlds data model.
    Pdb(pdb::PdbError),
    /// Error from the U-relational representation layer.
    Urel(urel::UrelError),
    /// Error from the query language / static analysis.
    Algebra(algebra::AlgebraError),
    /// Error from confidence computation.
    Confidence(confidence::ConfidenceError),
    /// Error from predicate approximation.
    Approx(approx::ApproxError),
    /// An operation needed a complete relation but got an uncertain one.
    NotComplete(String),
    /// An operation is not supported by this engine (e.g. unrestricted
    /// difference over uncertain inputs, which is outside positive UA).
    Unsupported(String),
    /// The adaptive evaluation loop of Theorem 6.7 failed to reach the error
    /// target within its iteration budget.
    DidNotConverge {
        /// Target error bound.
        delta: f64,
        /// The best (smallest) output error bound achieved.
        achieved: f64,
    },
    /// A request's deadline passed before the engine finished (or started)
    /// executing it — while queued at admission, or between pipeline stages.
    DeadlineExceeded {
        /// Where in the serving pipeline the deadline was detected.
        stage: &'static str,
    },
    /// A gate's queue deadline ([`crate::ServingLimits::max_queue_wait`])
    /// elapsed before a permit freed up: the engine shed the request early
    /// instead of burning its whole budget waiting in line.
    Overloaded {
        /// Which gate shed the request.
        stage: &'static str,
    },
    /// An evaluation panicked; the panicking run's pooled state was
    /// quarantined and the engine remains serviceable.
    Panicked {
        /// Where in the serving pipeline the panic was caught.
        stage: &'static str,
    },
    /// A fault injected by an armed failpoint (`engine::faults`); only
    /// produced by builds with the `failpoints` feature.
    Injected {
        /// The failpoint site that injected the fault.
        site: &'static str,
    },
    /// A storage-layer segment failed verification — bad magic, version or
    /// length mismatch, digest mismatch, or an undecodable payload.  The
    /// bytes on disk cannot be trusted, so they are rejected rather than
    /// served; a restore that hits this on a core segment falls back to a
    /// cold start.
    Storage(String),
    /// Generic invariant violation.
    Invariant(String),
}

impl EngineError {
    /// Whether retrying the same request may succeed.
    ///
    /// Transient errors are environmental: injected faults, shed load,
    /// quarantined panics, and sampling runs that missed their convergence
    /// target (a fresh seed may converge).  Everything else — semantic
    /// errors, invariant violations, and `DeadlineExceeded` (the budget is
    /// spent; retrying cannot un-spend it) — is permanent.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            EngineError::Injected { .. }
                | EngineError::Overloaded { .. }
                | EngineError::Panicked { .. }
                | EngineError::DidNotConverge { .. }
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Pdb(e) => write!(f, "{e}"),
            EngineError::Urel(e) => write!(f, "{e}"),
            EngineError::Algebra(e) => write!(f, "{e}"),
            EngineError::Confidence(e) => write!(f, "{e}"),
            EngineError::Approx(e) => write!(f, "{e}"),
            EngineError::NotComplete(r) => {
                write!(f, "relation `{r}` must be complete for this operation")
            }
            EngineError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            EngineError::DidNotConverge { delta, achieved } => write!(
                f,
                "adaptive evaluation did not reach the error target {delta} (achieved {achieved})"
            ),
            EngineError::DeadlineExceeded { stage } => {
                write!(f, "request deadline exceeded ({stage})")
            }
            EngineError::Overloaded { stage } => {
                write!(f, "engine overloaded: queue deadline exceeded ({stage})")
            }
            EngineError::Panicked { stage } => {
                write!(f, "evaluation panicked ({stage}); pooled state quarantined")
            }
            EngineError::Injected { site } => {
                write!(f, "fault injected at failpoint `{site}`")
            }
            EngineError::Storage(m) => write!(f, "storage corruption: {m}"),
            EngineError::Invariant(m) => write!(f, "invariant violation: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<pdb::PdbError> for EngineError {
    fn from(e: pdb::PdbError) -> Self {
        EngineError::Pdb(e)
    }
}
impl From<urel::UrelError> for EngineError {
    fn from(e: urel::UrelError) -> Self {
        EngineError::Urel(e)
    }
}
impl From<algebra::AlgebraError> for EngineError {
    fn from(e: algebra::AlgebraError) -> Self {
        EngineError::Algebra(e)
    }
}
impl From<confidence::ConfidenceError> for EngineError {
    fn from(e: confidence::ConfidenceError) -> Self {
        EngineError::Confidence(e)
    }
}
impl From<approx::ApproxError> for EngineError {
    fn from(e: approx::ApproxError) -> Self {
        EngineError::Approx(e)
    }
}

/// Result alias for the `engine` crate.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = pdb::PdbError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains("`R`"));
        let e: EngineError = algebra::AlgebraError::DivisionByZero.into();
        assert!(e.to_string().contains("division"));
        let e: EngineError = confidence::ConfidenceError::EmptyEvent.into();
        assert!(e.to_string().contains("terms"));
        let e: EngineError = approx::ApproxError::DivisionByZero.into();
        assert!(e.to_string().contains("division"));
        let e: EngineError = urel::UrelError::UnknownVariable("x".into()).into();
        assert!(e.to_string().contains("`x`"));
        assert!(EngineError::DidNotConverge {
            delta: 0.05,
            achieved: 0.2
        }
        .to_string()
        .contains("0.05"));
    }

    #[test]
    fn transient_taxonomy() {
        assert!(EngineError::Injected { site: "prepare" }.is_transient());
        assert!(EngineError::Overloaded { stage: "admission" }.is_transient());
        assert!(EngineError::Panicked { stage: "cold" }.is_transient());
        assert!(EngineError::DidNotConverge {
            delta: 0.05,
            achieved: 0.2
        }
        .is_transient());
        // The deadline is a spent budget: retrying cannot help.
        assert!(!EngineError::DeadlineExceeded { stage: "estimate" }.is_transient());
        assert!(!EngineError::Unsupported("x".into()).is_transient());
        assert!(!EngineError::Invariant("x".into()).is_transient());
        assert!(!EngineError::NotComplete("R".into()).is_transient());
        // Corrupt bytes do not heal on retry.
        assert!(!EngineError::Storage("digest mismatch".into()).is_transient());
        assert!(EngineError::Storage("digest mismatch".into())
            .to_string()
            .contains("storage corruption"));
        let e = EngineError::Overloaded { stage: "admission" };
        assert!(e.to_string().contains("overloaded"));
        let e = EngineError::Panicked { stage: "cold" };
        assert!(e.to_string().contains("quarantined"));
        let e = EngineError::Injected { site: "absorb" };
        assert!(e.to_string().contains("absorb"));
    }
}
