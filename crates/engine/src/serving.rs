//! The serving layer: workload-level query evaluation at steady-state
//! estimation cost.
//!
//! A [`ServingEngine`] binds a [`UEngine`](crate::UEngine) configuration to
//! one database and serves query *text*.  Four caches stack up:
//!
//! 1. a [`PlanCache`] keyed by normalized query text — a repeated query is
//!    never re-parsed, re-validated or re-lowered;
//! 2. a prepared [`PhysicalPlan`] per plan — lowering against the engine
//!    configuration happens once, together with the query's *prefix
//!    profile* (sub-plan digests, relation footprints, the deterministic
//!    prefix and its stateful spine);
//! 3. a cross-query **snapshot pool**: the deterministic prefix of every
//!    prepared query (relational operators, repair-key, exact confidence,
//!    lineage extraction, W-table compilation) is executed once and its
//!    results stored *per sub-plan*, content-addressed by
//!    [`SubplanDigest`] — so a hot join shared by
//!    many prepared queries is executed once and resumed by all of them,
//!    and the first evaluation of a new query whose prefix another query
//!    already warmed never runs cold;
//! 4. inside each pooled prefix, the memoised [`SpaceCache`] /
//!    lineage-batch caches of the `space` module, shared by every resume —
//!    including the **compiled lineage programs**
//!    ([`confidence::LineagePrograms`]) the bit-parallel Monte Carlo
//!    estimators sample through and the exact probabilities the exact
//!    estimator memoises inside them, so a warm `aconf` request pays
//!    sampling only (and a warm `conf`/`cert` request pays lookups only):
//!    event trees are never re-walked or re-compiled per request.
//!
//! Snapshot identity is "sub-plan × relation footprint", not "query":
//! pool entries are keyed by the *stateful spine* of the prefix (the ordered
//! repair-key / exact-confidence nodes, which determine every context
//! effect — introduced variables, statistics, compiled spaces), and each
//! stored sub-plan result records the set of base relations it scans.
//! [`ServingEngine::update_relations`] exploits both: a content update to
//! relation `R` invalidates only the pooled sub-plan results whose footprint
//! contains `R` (and whole entries only when `R` feeds their stateful
//! spine), patches the surviving prefixes' database copies, and leaves every
//! other prepared query at warm-path cost.
//! [`ServingEngine::apply_deltas`] narrows invalidation further, to *row*
//! granularity: a [`urel::RelationDelta`] (insert/delete row sets against a
//! digest-pinned base) patches the footprint-intersecting pooled sub-plan
//! results **in place** through the incremental operator rules of
//! [`crate::delta`], so the re-warm cost is proportional to the delta
//! rather than to the sub-plans it touches; slots the rules cannot cover
//! (and deltas large relative to their base) fall back to the
//! demote-and-recompute path.  [`ServingEngine::set_database`] remains the
//! full-swap path that drops everything (required for schema changes).
//!
//! Warm results are bit-identical to what a cold evaluation with the same
//! RNG state would produce: the snapshot restores slots, database, variable
//! counter and statistics exactly as the sequential schedule would have left
//! them at the sampling frontier, and sampling operators derive all
//! randomness from the caller's RNG as usual.  Sub-plan sharing preserves
//! this because entries are only shared between prefixes with identical
//! stateful spines — the per-index sub-RNG discipline of the estimation
//! layer is never disturbed by where the prefix values came from.
//!
//! # Concurrency
//!
//! Every serving method takes `&self`: any number of sessions — see
//! [`ServingEngine::session`] — evaluate concurrently over one shared
//! engine.  The plan cache, the prepared map and the snapshot pool are
//! **read-mostly**: lookups clone `Arc`-held entries under short read locks,
//! all heavy work (parsing, lowering, prefix assembly, execution, estimation)
//! runs with *no* engine lock held, and every mutation path —
//! [`update_relations`](ServingEngine::update_relations) /
//! [`apply_deltas`](ServingEngine::apply_deltas) invalidation, pool absorbs
//! — rewrites shared entries **copy-on-write** (`Arc::make_mut`), so an
//! in-flight reader keeps the immutable entry it resolved.
//!
//! Admission control bounds how many requests execute at once
//! ([`ServingLimits::max_in_flight`]), and a separate, tighter gate bounds
//! *cold* prepares ([`ServingLimits::max_cold_in_flight`]).  A cold request
//! acquires its cold permit **before** the admission permit, so a burst of
//! never-seen queries queues behind the cold gate without occupying
//! admission slots — warm traffic keeps flowing.  A request admitted as
//! warm whose pool entry vanishes before resolution (an invalidation just
//! dropped a hot prefix) re-enters through the cold gate — releasing its
//! admission slot first, to keep the cold-before-admission permit order —
//! so even an invalidation stampede stays bounded by the cold gate.
//! Per-request ε/δ and deadline budgets ride on [`Request`]; a deadline is
//! checked while queued and again before execution, failing fast with
//! [`EngineError::DeadlineExceeded`].
//!
//! Determinism survives concurrency because warm ≡ cold: a request's answer
//! depends only on its text, the database content, and its own RNG state —
//! never on which warm state other sessions happened to leave in the pool.
//! Races over pool contents can change *cost* (a resolve may miss state a
//! concurrent request is still absorbing), not *answers*.  Commits enforce
//! this against in-flight evaluations with a database **epoch**: every
//! content commit bumps it (under the state write lock, before invalidating
//! the pool), every capturing evaluation records it when it reads its
//! inputs, and an absorb whose recorded epoch is no longer current drops
//! its snapshot instead of pooling it
//! ([`ServingStats::stale_absorbs_dropped`]) — results computed from
//! pre-commit content can never re-enter the pool behind the invalidation
//! pass.  A second epoch guards the catalog: `prepare` re-checks it before
//! installing a prepared query, so a plan lowered against a catalog that
//! [`set_database`](ServingEngine::set_database) replaced mid-prepare is
//! re-lowered rather than served.
//!
//! # Checkpoints
//!
//! [`ServingEngine::checkpoint`] persists the served state as a directory of
//! digest-verified segment files (see `engine::storage` for the framing):
//! the W-table, the relation catalog, one segment per relation, and one
//! *warm* segment per poolable deterministic-prefix snapshot, all recorded —
//! length and digest pair — in a `MANIFEST` segment written last.
//! [`ServingEngine::restore`] rebuilds a server from such a directory and
//! re-seeds the snapshot pool from the warm segments, so the restarted
//! process answers its first requests at warm cost without re-preparing.
//! Restores verify everything before serving any of it: a missing, truncated
//! or bit-flipped segment fails the whole restore with a classified
//! [`EngineError::Storage`] — the caller falls back to a cold start — and a
//! restored-warm evaluation is bit-identical to a cold evaluation over the
//! same database at the same RNG state (warm segments that do not match the
//! restoring configuration are skipped, never coerced).
//!
//! ```
//! use engine::{EvalConfig, ServingEngine};
//! use pdb::{relation, schema};
//! use rand::SeedableRng;
//! use urel::UDatabase;
//!
//! let db = UDatabase::from_complete_relations([
//!     ("Coins", relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]]),
//! ]);
//! let serving = ServingEngine::new(EvalConfig::exact(), db).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let q = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
//! let cold = serving.evaluate(q, &mut rng).unwrap();
//! let warm = serving.evaluate(q, &mut rng).unwrap();   // served from the pool
//! assert_eq!(cold.result.relation, warm.result.relation);
//! assert_eq!(serving.stats().warm_evaluations, 1);
//! ```

use crate::adaptive_query::catalog_of;
use crate::delta::DeltaInput;
use crate::error::{EngineError, Result};
use crate::exec::{ConfidenceMode, EvalConfig, EvalOutput, EvalStats, EvaluatedRelation};
use crate::physical::{ExecContext, ExecSnapshot, OpClass, PhysicalNode, PhysicalPlan};
use crate::space::SpaceCache;
use crate::sync::{HeldRank, LockRank, OrderedCondvar, OrderedMutex, OrderedRwLock};
use algebra::{Catalog, LogicalPlan, PlanCache, SubplanDigest};
use confidence::EventBounds;
use pdb::Tuple;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use urel::{RelationDelta, UDatabase, URelation, URow};

/// Upper bound on prepared queries a server retains (each holds a lowered
/// physical plan and a prefix profile; prefix state lives in the pool).
const PREPARED_CAP: usize = 1024;

/// Upper bound on pooled prefix entries; each holds a database clone plus
/// the live sub-plan results of one stateful spine.  Reaching it clears the
/// pool — steady-state serving re-warms the hot entries on the next
/// requests.
const POOL_CAP: usize = 256;

/// Counters describing how the serving caches are performing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Evaluations that executed the deterministic prefix from scratch (and
    /// populated the snapshot pool).
    pub cold_evaluations: u64,
    /// Evaluations resumed from the snapshot pool (estimation-only cost,
    /// plus recomputation of any sub-plans an update invalidated).
    pub warm_evaluations: u64,
    /// Plan-cache hits (lookups answered without parsing + lowering).
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
    /// First evaluations of a query served warm because another prepared
    /// query had already pooled the shared prefix (a subset of
    /// `warm_evaluations`).
    pub shared_prefix_hits: u64,
    /// Pool entries dropped by [`ServingEngine::update_relations`] because a
    /// changed relation fed their stateful spine.
    pub snapshots_invalidated: u64,
    /// Individual pooled sub-plan results dropped by
    /// [`ServingEngine::update_relations`] footprint intersection (inside
    /// surviving entries).
    pub subplans_invalidated: u64,
    /// Pure sub-plans recomputed during warm resumes because their pooled
    /// result was missing (invalidated by an update, or never produced by
    /// the query that pooled the prefix).  Each recomputed result is
    /// absorbed back into the pool, so a given sub-plan is recomputed at
    /// most once per invalidation.
    pub subplans_recomputed: u64,
    /// Relations whose content actually changed across all
    /// [`ServingEngine::update_relations`] and
    /// [`ServingEngine::apply_deltas`] calls (no-op replacements are
    /// detected by content digest and skipped).
    pub relation_updates: u64,
    /// Pooled sub-plan results *patched in place* by
    /// [`ServingEngine::apply_deltas`] through the incremental operator
    /// rules of [`crate::delta`] — their entries stayed warm without any
    /// recomputation.
    pub subplans_patched: u64,
    /// Pooled sub-plan results [`ServingEngine::apply_deltas`] had to demote
    /// (drop for recomputation on the next warm resume) because no
    /// incremental rule applied: the delta was large relative to its base,
    /// the operator has no rule (product, difference), or a result the
    /// patch needed was already missing.
    pub subplans_demoted: u64,
    /// Captured snapshots dropped instead of pooled because a database
    /// commit landed while the capturing evaluation was in flight — the
    /// results were computed from a database version the pool's
    /// invalidation pass has already moved past.  Pure cost, never a
    /// correctness event: the evaluation's own answer is still served, and
    /// the next request of that prefix re-warms from current content.
    pub stale_absorbs_dropped: u64,
    /// Transient-error retries issued by [`ServingSession`] retry loops
    /// (see [`RetryPolicy`]).
    pub retries: u64,
    /// Pool entries dropped because an evaluation using them panicked: the
    /// panicking run's prefix entry is quarantined (removed) while the
    /// engine stays serviceable; the next request of that prefix re-warms
    /// it from scratch.
    pub entries_quarantined: u64,
    /// Requests answered in degraded mode — guaranteed `[lower, upper]`
    /// confidence bounds instead of an (ε, δ) estimate — because their
    /// deadline expired mid-sampling or the cold gate was saturated (see
    /// [`ServingEngine::evaluate_degradable`]).
    pub degraded_answers: u64,
    /// Approximate-confidence events answered *exactly* by the compiled
    /// d-DNNF backend (seed-independent, zero samples drawn) because the
    /// cost model priced compilation below the Chernoff sampling bill (see
    /// [`EvalConfig::exact_backend_node_budget`]).
    pub exact_compiled_answers: u64,
    /// Approximate-confidence events answered by Karp–Luby sampling —
    /// the complement of `exact_compiled_answers` among non-trivial
    /// estimated events.
    pub sampled_answers: u64,
    /// Estimated events served from the shared block scheduler's
    /// previously drawn tallies instead of re-running the sampler (see
    /// [`EvalConfig::shared_sampling`]).
    pub shared_block_hits: u64,
}

/// Everything the pool needs to know about one prepared query's
/// deterministic prefix, computed once at preparation time.
struct PrefixProfile {
    /// Pool key: hash of the lowering configuration plus the ordered
    /// sub-plan digests of the stateful spine.  Equal keys imply equal
    /// context effects (database variables, counter, statistics, compiled
    /// spaces) for prefixes executed over the same database.
    fingerprint: (u64, u64),
    /// Per-node content digests ([`LogicalPlan::subplan_digests`]).
    digests: Vec<SubplanDigest>,
    /// Per-node relation footprints ([`LogicalPlan::subplan_footprints`]).
    footprints: Vec<Arc<BTreeSet<String>>>,
    /// The deterministic prefix ([`PhysicalPlan::prefix_done_flags`]).
    done: Vec<bool>,
    /// Operator classes, parallel to the nodes.
    classes: Vec<OpClass>,
    /// Union footprint of the stateful spine: an update touching it makes
    /// the pooled effects stale, so the whole entry must go.
    stateful_footprint: BTreeSet<String>,
}

impl PrefixProfile {
    fn new(plan: &LogicalPlan, physical: &PhysicalPlan, config: &EvalConfig) -> PrefixProfile {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let digests = plan.subplan_digests();
        let footprints: Vec<Arc<BTreeSet<String>>> = plan
            .subplan_footprints()
            .into_iter()
            .map(Arc::new)
            .collect();
        let done = physical.prefix_done_flags();
        let classes: Vec<OpClass> = physical
            .nodes()
            .iter()
            .map(|n| n.operator.class())
            .collect();
        let spine = physical.stateful_prefix();
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        0x9E37_79B9_7F4A_7C15_u64.hash(&mut h2);
        format!("{config:?}").hash(&mut h1);
        format!("{config:?}").hash(&mut h2);
        let mut stateful_footprint = BTreeSet::new();
        for &id in &spine {
            digests[id].hash(&mut h1);
            digests[id].hash(&mut h2);
            stateful_footprint.extend(footprints[id].iter().cloned());
        }
        PrefixProfile {
            fingerprint: (h1.finish(), h2.finish()),
            digests,
            footprints,
            done,
            classes,
            stateful_footprint,
        }
    }
}

/// One prepared query: its lowered physical plan, the logical plan it came
/// from, its prefix profile, and how often it has been evaluated.  Prepared
/// entries are `Arc`-shared across sessions; the evaluation counter is the
/// only mutable part.
struct PreparedQuery {
    physical: Arc<PhysicalPlan>,
    profile: Arc<PrefixProfile>,
    evaluations: AtomicU64,
}

/// One pooled sub-plan result: the evaluated relation plus the base
/// relations its sub-plan scans (the invalidation unit).  The value is
/// `Arc`-held so copy-on-write clones of a pool entry stay shallow.
#[derive(Clone)]
struct PooledSlot {
    value: Arc<EvaluatedRelation>,
    footprint: Arc<BTreeSet<String>>,
}

/// One relation-content change as the snapshot pool consumes it: the final
/// new content, plus the net row delta when it is small enough to patch
/// pooled results in place (`None` forces demote-and-recompute for every
/// intersecting slot, exactly like [`ServingEngine::update_relations`]).
struct DeltaUpdate {
    name: String,
    new: URelation,
    patch: Option<RelationDelta>,
}

/// Whether patching pooled sub-plan results in place is worthwhile for a
/// net delta of `magnitude` row edits against a base of `base_rows`: tiny
/// deltas always are, and beyond that the bookkeeping of the incremental
/// rules should stay well below a recompute of the base.  Past the bound
/// the engine falls back to demote-and-recompute.
fn patch_worthwhile(magnitude: usize, base_rows: usize) -> bool {
    magnitude <= 8 || magnitude * 2 <= base_rows
}

/// A pool lookup that succeeded: the snapshot to resume, how many pure
/// sub-plans had to be demoted for recomputation, and whether the entry was
/// created by a *different* query (genuine cross-query sharing).
struct ResolvedPrefix {
    snapshot: ExecSnapshot,
    demoted: u64,
    shared: bool,
}

/// The shared prefix of every prepared query with one stateful spine: the
/// context effects of executing that spine, plus the content-addressed live
/// results of the prefix sub-plans (of *all* queries that share the spine).
struct PoolEntry {
    /// Normalized key of the query whose cold execution created the entry;
    /// used to tell genuine cross-query sharing apart from a query finding
    /// its own pooled prefix again (e.g. after prepared-cache eviction).
    creator: Arc<str>,
    database: UDatabase,
    var_counter: usize,
    stats: EvalStats,
    spaces: SpaceCache,
    slots: HashMap<SubplanDigest, PooledSlot>,
    stateful_footprint: BTreeSet<String>,
}

impl Clone for PoolEntry {
    /// The copy-on-write clone `Arc::make_mut` runs when a mutation hits an
    /// entry a concurrent reader still holds.  Slot values are `Arc`-shared
    /// (shallow); the space cache is *forked* — compiled spaces stay shared,
    /// but states compiled after the split never leak between the copies.
    fn clone(&self) -> PoolEntry {
        PoolEntry {
            creator: self.creator.clone(),
            database: self.database.clone(),
            var_counter: self.var_counter,
            stats: self.stats,
            spaces: self.spaces.fork(),
            slots: self.slots.clone(),
            stateful_footprint: self.stateful_footprint.clone(),
        }
    }
}

/// The cross-query snapshot pool.  Entries are `Arc`-held: readers resolve
/// against an entry clone taken under a short read lock, mutators rewrite
/// entries copy-on-write.
#[derive(Default)]
struct SnapshotPool {
    entries: HashMap<(u64, u64), Arc<PoolEntry>>,
}

fn intersects(a: &BTreeSet<String>, b: &BTreeSet<String>) -> bool {
    if a.len() > b.len() {
        return intersects(b, a);
    }
    a.iter().any(|x| b.contains(x))
}

impl SnapshotPool {
    /// The `Arc`-held entry for a prefix fingerprint, if pooled.  Callers
    /// clone the `Arc` under the pool's read lock and resolve against it
    /// with [`resolve_prefix`] *after* dropping the lock — snapshot assembly
    /// (a database clone plus slot clones) never blocks the pool.
    fn entry(&self, fingerprint: &(u64, u64)) -> Option<Arc<PoolEntry>> {
        self.entries.get(fingerprint).cloned()
    }
}

/// Attempts to rebuild a resumable snapshot for `profile` from one pool
/// entry.
///
/// Pure prefix nodes whose pooled result is missing (never computed for
/// this entry, or dropped by an update) are demoted to *undone* and will
/// be recomputed from the entry's (patched) database during the resume —
/// their inputs become needed in turn, to a fixpoint.  A missing
/// *stateful* result cannot be recomputed without re-running the spine,
/// so it turns the lookup into a miss.
fn resolve_prefix(
    entry: &PoolEntry,
    profile: &PrefixProfile,
    physical: &PhysicalPlan,
    requester: &Arc<str>,
) -> Result<Option<ResolvedPrefix>> {
    let n = profile.digests.len();
    let available: Vec<bool> = (0..n)
        .map(|i| entry.slots.contains_key(&profile.digests[i]))
        .collect();
    let mut done = profile.done.clone();
    let mut demoted = 0u64;
    loop {
        let needed = needed_flags(physical, &done);
        let Some(missing) = (0..n).find(|&i| done[i] && needed[i] && !available[i]) else {
            break;
        };
        if profile.classes[missing] != OpClass::Pure {
            return Ok(None);
        }
        done[missing] = false;
        demoted += 1;
    }
    let needed = needed_flags(physical, &done);
    let mut slots: Vec<Option<EvaluatedRelation>> = (0..n).map(|_| None).collect();
    for i in 0..n {
        if done[i] && needed[i] {
            let slot = entry
                .slots
                .get(&profile.digests[i])
                .expect("fixpoint demoted every missing needed slot");
            slots[i] = Some(slot.value.as_ref().clone());
        }
    }
    let snapshot = physical.assemble_snapshot(
        done,
        slots,
        entry.database.clone(),
        entry.var_counter,
        entry.stats,
        entry.spaces.fork(),
    )?;
    Ok(Some(ResolvedPrefix {
        snapshot,
        demoted,
        shared: entry.creator.as_ref() != requester.as_ref(),
    }))
}

impl SnapshotPool {
    /// Stores the live sub-plan results of a freshly captured prefix
    /// snapshot, creating the spine's entry if this is the first query to
    /// execute it.  Results already present are kept (they are equal by
    /// construction: same spine, same database).
    fn absorb(&mut self, profile: &PrefixProfile, snapshot: &ExecSnapshot, creator: &Arc<str>) {
        if self.entries.len() >= POOL_CAP && !self.entries.contains_key(&profile.fingerprint) {
            self.entries.clear();
        }
        let entry = self.entries.entry(profile.fingerprint).or_insert_with(|| {
            Arc::new(PoolEntry {
                creator: creator.clone(),
                database: snapshot.database().clone(),
                var_counter: snapshot.var_counter(),
                stats: snapshot.stats(),
                spaces: snapshot.spaces().fork(),
                slots: HashMap::new(),
                stateful_footprint: profile.stateful_footprint.clone(),
            })
        });
        // Copy-on-write: a fresh entry is mutated in place (`make_mut` is a
        // no-op on a unique Arc); an entry a concurrent reader holds is
        // cloned shallowly first, leaving the reader's view intact.
        let entry = Arc::make_mut(entry);
        for (id, value) in snapshot.live_slots() {
            entry
                .slots
                .entry(profile.digests[id])
                .or_insert_with(|| PooledSlot {
                    value: Arc::new(value.clone()),
                    footprint: profile.footprints[id].clone(),
                });
        }
    }

    /// Applies a relation-content update: drops entries whose stateful spine
    /// scanned a changed relation, drops intersecting sub-plan results
    /// inside surviving entries, and patches the survivors' database copies
    /// so resumed suffixes (and recomputed pure sub-plans) see the new
    /// content.  Returns `(entries_dropped, slots_dropped)`.
    fn invalidate(
        &mut self,
        changed: &BTreeSet<String>,
        updates: &[(String, URelation)],
    ) -> (u64, u64) {
        let mut entries_dropped = 0;
        let mut slots_dropped = 0;
        self.entries.retain(|_, entry| {
            if intersects(&entry.stateful_footprint, changed) {
                entries_dropped += 1;
                return false;
            }
            let entry = Arc::make_mut(entry);
            entry.slots.retain(|_, slot| {
                let keep = !intersects(&slot.footprint, changed);
                if !keep {
                    slots_dropped += 1;
                }
                keep
            });
            for (name, rel) in updates {
                let complete = entry.database.is_complete(name);
                entry
                    .database
                    .set_relation(name.clone(), rel.clone(), complete);
            }
            true
        });
        (entries_dropped, slots_dropped)
    }

    /// The delta counterpart of [`invalidate`](SnapshotPool::invalidate):
    /// entries whose stateful spine scans a changed relation still drop
    /// (their context effects are stale), but inside surviving entries the
    /// footprint-intersecting sub-plan results are *patched in place* by the
    /// incremental operator rules of [`crate::delta`] wherever one applies,
    /// and only demoted (dropped, recomputed lazily on the next warm
    /// resume) where none does.  Returns
    /// `(entries_dropped, slots_patched, slots_demoted)`.
    fn patch(
        &mut self,
        changed: &BTreeSet<String>,
        updates: &[DeltaUpdate],
        plans: &[(Arc<PhysicalPlan>, Arc<PrefixProfile>)],
    ) -> (u64, u64, u64) {
        let mut entries_dropped = 0;
        let mut slots_patched = 0;
        let mut slots_demoted = 0;
        self.entries.retain(|fingerprint, entry| {
            if intersects(&entry.stateful_footprint, changed) {
                entries_dropped += 1;
                return false;
            }
            let entry = Arc::make_mut(entry);
            // Patch the entry's database copy first: demoted sub-plans
            // recompute from it, and resumed suffixes scan it.
            for u in updates {
                let complete = entry.database.is_complete(&u.name);
                entry
                    .database
                    .set_relation(u.name.clone(), u.new.clone(), complete);
            }
            let (patched, demoted) = patch_entry_slots(entry, fingerprint, changed, updates, plans);
            slots_patched += patched;
            slots_demoted += demoted;
            true
        });
        (entries_dropped, slots_patched, slots_demoted)
    }
}

/// The result of delta maintenance for one pooled sub-plan.
enum SlotOutcome {
    /// The slot's relation was rewritten in place; the stored row sets are
    /// the edit of the *output* (inserted, deleted), which consumers take
    /// as their input delta.
    Patched(BTreeSet<URow>, BTreeSet<URow>),
    /// No incremental rule applied; the slot was dropped and the next warm
    /// resume recomputes it (and, transitively, anything consuming it).
    Demoted,
}

/// The canonical row edit turning `old` into `new`: one merge walk over the
/// two sorted row sets, with no content hashing — the hot inner step of
/// delta propagation, run once per patched sub-plan.
fn row_diff(old: &URelation, new: &URelation) -> (BTreeSet<URow>, BTreeSet<URow>) {
    let mut inserted = BTreeSet::new();
    let mut deleted = BTreeSet::new();
    let mut old_rows = old.iter().peekable();
    let mut new_rows = new.iter().peekable();
    loop {
        match (old_rows.peek(), new_rows.peek()) {
            (Some(o), Some(n)) => match o.cmp(n) {
                std::cmp::Ordering::Less => {
                    deleted.insert((*o).clone());
                    old_rows.next();
                }
                std::cmp::Ordering::Greater => {
                    inserted.insert((*n).clone());
                    new_rows.next();
                }
                std::cmp::Ordering::Equal => {
                    old_rows.next();
                    new_rows.next();
                }
            },
            (Some(_), None) => {
                deleted.extend(old_rows.cloned());
                break;
            }
            (None, Some(_)) => {
                inserted.extend(new_rows.cloned());
                break;
            }
            (None, None) => break,
        }
    }
    (inserted, deleted)
}

/// Patches (or demotes) every footprint-intersecting sub-plan result of one
/// surviving pool entry, driving the incremental rules along the prepared
/// plans that share the entry's stateful spine.  Nodes are visited in
/// topological order, so each node's input deltas are resolved before the
/// node itself; sub-plans shared by several prepared queries are
/// content-addressed and therefore processed once.
fn patch_entry_slots(
    entry: &mut PoolEntry,
    fingerprint: &(u64, u64),
    changed: &BTreeSet<String>,
    updates: &[DeltaUpdate],
    plans: &[(Arc<PhysicalPlan>, Arc<PrefixProfile>)],
) -> (u64, u64) {
    let mut outcomes: HashMap<SubplanDigest, SlotOutcome> = HashMap::new();
    let mut patched = 0u64;
    let mut demoted = 0u64;
    let no_rows: BTreeSet<URow> = BTreeSet::new();
    for (physical, profile) in plans {
        if profile.fingerprint != *fingerprint {
            continue;
        }
        for (id, node) in physical.nodes().iter().enumerate() {
            if !profile.done[id] || !intersects(&profile.footprints[id], changed) {
                continue;
            }
            let digest = profile.digests[id];
            if outcomes.contains_key(&digest) {
                continue;
            }
            match try_patch_slot(entry, node, id, profile, updates, &outcomes, &no_rows) {
                Some((new, inserted, deleted)) => {
                    let slot = entry
                        .slots
                        .get_mut(&digest)
                        .expect("try_patch_slot read this slot");
                    Arc::make_mut(&mut slot.value).relation = new;
                    patched += 1;
                    outcomes.insert(digest, SlotOutcome::Patched(inserted, deleted));
                }
                None => {
                    if entry.slots.remove(&digest).is_some() {
                        demoted += 1;
                    }
                    outcomes.insert(digest, SlotOutcome::Demoted);
                }
            }
        }
    }
    // Intersecting slots no prepared plan covers (their query was evicted
    // from the prepared map) cannot be patched: demote them, exactly as
    // `update_relations` would.
    entry.slots.retain(|digest, slot| {
        let keep = outcomes.contains_key(digest) || !intersects(&slot.footprint, changed);
        if !keep {
            demoted += 1;
        }
        keep
    });
    (patched, demoted)
}

/// Attempts to patch one sub-plan result in place, returning the new
/// relation and its output row edit (inserted, deleted), or `None` when the
/// slot must be demoted instead.  Every `None` is safe by construction:
/// demotion falls back to the recompute-on-resume path whose correctness
/// the pool already guarantees.
fn try_patch_slot(
    entry: &PoolEntry,
    node: &PhysicalNode,
    id: usize,
    profile: &PrefixProfile,
    updates: &[DeltaUpdate],
    outcomes: &HashMap<SubplanDigest, SlotOutcome>,
    no_rows: &BTreeSet<URow>,
) -> Option<(URelation, BTreeSet<URow>, BTreeSet<URow>)> {
    // Failpoint: a dropped patch is a legal outcome of this function — the
    // slot demotes and the next warm resume recomputes it.
    if crate::faults::fire_cost_only("patch") {
        return None;
    }
    let slot = entry.slots.get(&profile.digests[id])?;
    if node.operator.class() != OpClass::Pure || !slot.value.errors.is_empty() {
        // Stateful nodes never reach here (their entry dropped), and pure
        // prefix results carry no error bounds; both checks are defensive.
        return None;
    }
    if node.inputs.is_empty() {
        // A scan of a changed relation: the relation's net delta *is* the
        // output delta.  `apply_to` digest-checks the stored value, so a
        // slot that somehow drifted out of sync demotes instead of
        // corrupting downstream patches.
        let name = profile.footprints[id].iter().next()?;
        let update = updates.iter().find(|u| &u.name == name)?;
        let patch = update.patch.as_ref()?;
        let new = patch.apply_to(&slot.value.relation).ok()?;
        return Some((new, patch.inserted().clone(), patch.deleted().clone()));
    }
    let mut inputs: Vec<DeltaInput<'_>> = Vec::with_capacity(node.inputs.len());
    for &i in &node.inputs {
        let value = &entry.slots.get(&profile.digests[i])?.value.relation;
        let (inserted, deleted) = match outcomes.get(&profile.digests[i]) {
            // Never visited: the input's footprint misses the change, so its
            // value is current and its delta empty.
            None => (no_rows, no_rows),
            Some(SlotOutcome::Patched(inserted, deleted)) => (inserted, deleted),
            Some(SlotOutcome::Demoted) => return None,
        };
        inputs.push(DeltaInput {
            new: value,
            inserted,
            deleted,
        });
    }
    let old = &slot.value.relation;
    let new = node.operator.execute_delta(old, &inputs).ok()??;
    let (inserted, deleted) = row_diff(old, &new);
    Some((new, inserted, deleted))
}

/// For every node: whether some undone node consumes it (or it is the done
/// root, whose value the end of the run still takes).
fn needed_flags(physical: &PhysicalPlan, done: &[bool]) -> Vec<bool> {
    let mut needed = vec![false; done.len()];
    for (id, node) in physical.nodes().iter().enumerate() {
        if done[id] {
            continue;
        }
        for &input in &node.inputs {
            needed[input] = true;
        }
    }
    if done[physical.root()] {
        needed[physical.root()] = true;
    }
    needed
}

/// Admission limits of a [`ServingEngine`]: how many requests may execute
/// concurrently, and how many of those may be cold prepares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServingLimits {
    /// Requests admitted to execute at once across all sessions.  Further
    /// requests queue (deadline-aware) until a slot frees.
    pub max_in_flight: usize,
    /// Upper bound on concurrently executing *cold* requests (first
    /// evaluation of a prefix nobody pooled: full prefix execution plus a
    /// database clone).  Cold requests take a cold permit **before** an
    /// admission slot, so a cold burst queues behind this gate without
    /// starving warm traffic of admission slots.  Clamped to
    /// `max_in_flight`.
    pub max_cold_in_flight: usize,
    /// Queue deadline, distinct from the request deadline: the longest a
    /// request may wait at either gate before the engine sheds it with
    /// [`EngineError::Overloaded`].  A saturated gate then fails fast —
    /// after `max_queue_wait` — instead of burning the whole request budget
    /// in line (and [`ServingEngine::evaluate_degradable`] turns the shed
    /// into a bounds answer).  `None` (the default) waits up to the request
    /// deadline as before.
    pub max_queue_wait: Option<Duration>,
}

impl Default for ServingLimits {
    /// Twice the hardware parallelism of admitted requests (estimation-bound
    /// warm requests overlap well), half of them allowed to be cold.
    fn default() -> Self {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let max_in_flight = (hw * 2).clamp(4, 64);
        ServingLimits {
            max_in_flight,
            max_cold_in_flight: (max_in_flight / 2).max(1),
            max_queue_wait: None,
        }
    }
}

/// One serving request: the query text plus optional per-request budgets.
///
/// `epsilon`/`delta` override the engine configuration's FPRAS accuracy
/// defaults for this request only (the request is prepared and pooled under
/// its effective configuration, so requests with different budgets never
/// share incompatible state).  `deadline` bounds how long the request may
/// wait for admission and is re-checked before execution starts.
#[derive(Clone, Copy, Debug)]
pub struct Request<'q> {
    text: &'q str,
    accuracy: Option<(f64, f64)>,
    deadline: Option<Instant>,
}

impl<'q> Request<'q> {
    /// A request for `text` with the engine's default budgets.
    pub fn new(text: &'q str) -> Request<'q> {
        Request {
            text,
            accuracy: None,
            deadline: None,
        }
    }

    /// Overrides the FPRAS accuracy budget (relative error ε, failure
    /// probability δ) for this request's `conf`-style operators.
    pub fn with_accuracy(mut self, epsilon: f64, delta: f64) -> Self {
        self.accuracy = Some((epsilon, delta));
        self
    }

    /// Sets a deadline: the request fails with
    /// [`EngineError::DeadlineExceeded`] instead of executing once the
    /// instant has passed.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The query text.
    pub fn text(&self) -> &str {
        self.text
    }

    /// The engine configuration this request is lowered against.
    fn effective_config(&self, base: EvalConfig) -> EvalConfig {
        match self.accuracy {
            None => base,
            Some((epsilon, delta)) => EvalConfig {
                confidence: ConfidenceMode::Fpras { epsilon, delta },
                ..base
            },
        }
    }
}

/// Why a request was answered with guaranteed bounds instead of an (ε, δ)
/// estimate (see [`ServingEngine::evaluate_degradable`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradedReason {
    /// The request's deadline expired while sampling was underway
    /// ([`EngineError::DeadlineExceeded`] in the `estimate` stage).
    DeadlineExpired,
    /// An admission gate stayed saturated past the engine's
    /// [`ServingLimits::max_queue_wait`] and the request was shed
    /// ([`EngineError::Overloaded`]).
    QueueSaturated,
}

/// A graceful bounds answer: per output tuple, an exact confidence interval
/// `[lower, upper]` that is guaranteed to contain the tuple's true
/// confidence.  Produced without drawing a single Monte Carlo sample — the
/// deterministic prefix runs to completion and the root `conf` is answered
/// by the interval bounds of [`confidence::event_bounds_with_limit`]
/// (first-order ∩ Bonferroni lower, Hunter–Worsley upper), widened by any
/// accumulated upstream approximation error.
#[derive(Clone, Debug)]
pub struct DegradedAnswer {
    /// Output tuples with their guaranteed confidence intervals.
    pub bounds: Vec<(Tuple, EventBounds)>,
    /// Why the engine degraded instead of estimating.
    pub reason: DegradedReason,
}

/// The outcome of a degradable evaluation: the full (ε, δ) answer when the
/// request completed within its budgets, or guaranteed confidence bounds
/// when it could not.
#[derive(Debug)]
pub enum ServingAnswer {
    /// The request completed normally.
    Full(EvalOutput),
    /// The request was degraded to guaranteed bounds.
    Degraded(DegradedAnswer),
}

/// Bounded exponential backoff with deterministic jitter, applied by
/// [`ServingSession`] evaluation loops to errors classified transient by
/// [`EngineError::is_transient`].
///
/// Backoff for attempt `n` is `base_backoff · 2ⁿ`, capped at `max_backoff`,
/// scaled by a jitter factor in `[0.5, 1.0]` derived (splitmix64) from
/// `jitter_seed`, the session's evaluation count and the attempt index —
/// reproducible runs schedule reproducible retries, while concurrent
/// sessions with different seeds desynchronize instead of thundering back
/// in lockstep.  A retry never oversleeps a request deadline: when the
/// backoff would land past it, the session gives up and returns the
/// transient error instead.
///
/// Retries preserve the engine's determinism contract: admission, prepare
/// and injected-fault failures happen *before* an evaluation draws from the
/// caller's RNG, so a retried success consumes exactly the RNG stream a
/// first-try success would have.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (`0` disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Three retries, 1 ms base, 20 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 0x5eed_f417,
        }
    }
}

impl RetryPolicy {
    /// No retries: every error surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The jittered backoff before retry number `attempt` (0-based), for a
    /// session whose evaluation counter is `salt`.
    fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        let r = splitmix64(self.jitter_seed ^ salt.rotate_left(17) ^ u64::from(attempt));
        // Top 53 bits → uniform in [0, 1), mapped to a factor in [0.5, 1.0].
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + unit * 0.5)
    }
}

/// SplitMix64 step (Steele et al.), the jitter generator of
/// [`RetryPolicy`]: one multiply-xorshift cascade per draw, no state.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A counting semaphore with deadline-aware acquisition (standing in for an
/// async admission queue: requests block, fairly woken, until a permit
/// frees).
#[derive(Debug)]
struct Gate {
    permits: OrderedMutex<usize>,
    freed: OrderedCondvar,
    /// Rank a held permit occupies on the holder's rank stack
    /// ([`LockRank::GateCold`] or [`LockRank::GateAdmission`]): both sit
    /// below the internal counter and below every engine lock, which is
    /// what machine-checks the cold-before-admission permit order.
    permit_rank: LockRank,
    permit_name: &'static str,
}

/// A held [`Gate`] permit; released on drop.
#[derive(Debug)]
struct GatePermit<'a> {
    gate: &'a Gate,
    _token: HeldRank,
}

impl Gate {
    fn new(
        capacity: usize,
        permit_rank: LockRank,
        permit_name: &'static str,
        counter_name: &'static str,
    ) -> Gate {
        Gate {
            permits: OrderedMutex::new(LockRank::GateInternal, counter_name, capacity.max(1)),
            freed: OrderedCondvar::new(),
            permit_rank,
            permit_name,
        }
    }

    /// Blocks until a permit is free, or until `deadline` passes (failing
    /// with [`EngineError::DeadlineExceeded`] tagged `stage`), or — when
    /// `max_wait` is set — until the request has queued for `max_wait`
    /// (failing with [`EngineError::Overloaded`]: the gate is saturated and
    /// the engine sheds the request early instead of burning the rest of
    /// its budget in line).
    fn acquire(
        &self,
        deadline: Option<Instant>,
        max_wait: Option<Duration>,
        stage: &'static str,
    ) -> Result<GatePermit<'_>> {
        let queue_deadline = max_wait.map(|w| Instant::now() + w);
        let mut permits = self.permits.lock();
        loop {
            if *permits > 0 {
                *permits -= 1;
                // The internal counter (GateInternal) outranks the permit
                // token about to be issued, so the counter guard must die
                // first — the held-rank stack only ever grows upward.
                drop(permits);
                return Ok(GatePermit {
                    gate: self,
                    _token: HeldRank::acquire(self.permit_rank, self.permit_name),
                });
            }
            let now = Instant::now();
            if let Some(deadline) = deadline {
                if now >= deadline {
                    return Err(EngineError::DeadlineExceeded { stage });
                }
            }
            if let Some(queue_deadline) = queue_deadline {
                if now >= queue_deadline {
                    return Err(EngineError::Overloaded { stage });
                }
            }
            let wake = match (deadline, queue_deadline) {
                (None, None) => None,
                (Some(d), None) => Some(d),
                (None, Some(q)) => Some(q),
                (Some(d), Some(q)) => Some(d.min(q)),
            };
            permits = match wake {
                None => self.freed.wait(permits),
                Some(wake) => self.freed.wait_timeout(permits, wake - now).0,
            };
        }
    }
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        // Fine rank-wise: the counter (GateInternal) outranks the permit
        // token this drop still holds (`_token` dies after this body).
        let mut permits = self.gate.permits.lock();
        *permits += 1;
        self.gate.freed.notify_one();
    }
}

/// The database and its derived catalog — swapped together, read together.
struct CatalogState {
    database: UDatabase,
    catalog: Catalog,
}

/// Serving counters, updated lock-free by concurrent sessions.
#[derive(Default)]
struct Counters {
    cold_evaluations: AtomicU64,
    warm_evaluations: AtomicU64,
    shared_prefix_hits: AtomicU64,
    snapshots_invalidated: AtomicU64,
    subplans_invalidated: AtomicU64,
    subplans_recomputed: AtomicU64,
    relation_updates: AtomicU64,
    subplans_patched: AtomicU64,
    subplans_demoted: AtomicU64,
    stale_absorbs_dropped: AtomicU64,
    retries: AtomicU64,
    entries_quarantined: AtomicU64,
    degraded_answers: AtomicU64,
    exact_compiled_answers: AtomicU64,
    sampled_answers: AtomicU64,
    shared_block_hits: AtomicU64,
}

/// A read guard over the served database (see [`ServingEngine::database`]).
pub struct DatabaseGuard<'a>(crate::sync::OrderedReadGuard<'a, CatalogState>);

impl std::ops::Deref for DatabaseGuard<'_> {
    type Target = UDatabase;
    fn deref(&self) -> &UDatabase {
        &self.0.database
    }
}

/// Key of one prepared query: the normalized text key plus a digest of the
/// effective lowering configuration (per-request accuracy overrides prepare
/// separately; the pool fingerprint hashes the same configuration, so their
/// pooled prefixes separate consistently).
type PreparedKey = (Arc<str>, u64);

fn config_digest(config: &EvalConfig) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    format!("{config:?}").hash(&mut h);
    h.finish()
}

/// A query server over one database: repeated queries cost estimation only,
/// prefixes are shared across queries, relation updates invalidate only
/// what they touch, and any number of sessions evaluate concurrently over
/// `&self` (see the module docs' concurrency section).
pub struct ServingEngine {
    config: EvalConfig,
    limits: ServingLimits,
    state: OrderedRwLock<CatalogState>,
    /// Monotonic database-content version.  Bumped under the state write
    /// lock *before* the matching pool invalidation runs, and compared by
    /// [`absorb_if_current`](ServingEngine::absorb_if_current) under the
    /// pool write lock: a snapshot captured from an epoch the pool has
    /// moved past is dropped instead of absorbed, so a commit landing
    /// between a session's database clone and its pool insert can never
    /// re-pool pre-update answers after invalidation already ran.
    db_epoch: AtomicU64,
    /// Monotonic catalog/schema version: bumped only by
    /// [`set_database`](ServingEngine::set_database) (content-only updates
    /// keep catalog identity).  [`prepare`](ServingEngine::prepare)
    /// re-checks it under the prepared write lock so a plan lowered against
    /// a replaced catalog is never installed.
    catalog_epoch: AtomicU64,
    plans: OrderedMutex<PlanCache>,
    prepared: OrderedRwLock<HashMap<PreparedKey, Arc<PreparedQuery>>>,
    pool: OrderedRwLock<SnapshotPool>,
    admission: Gate,
    cold_admission: Gate,
    counters: Counters,
    /// The cross-request shared block scheduler, consulted by estimation
    /// only when the effective configuration enables
    /// [`EvalConfig::shared_sampling`] (canonical content-derived streams
    /// make its tallies pure functions of their keys, so attaching it
    /// never changes an answer).
    sampler: Arc<crate::sched::SampleScheduler>,
}

impl ServingEngine {
    /// Creates a server for `database` with the given engine configuration
    /// and default admission limits.
    pub fn new(config: EvalConfig, database: UDatabase) -> Result<ServingEngine> {
        ServingEngine::with_limits(config, database, ServingLimits::default())
    }

    /// Creates a server with explicit admission limits.
    pub fn with_limits(
        config: EvalConfig,
        database: UDatabase,
        limits: ServingLimits,
    ) -> Result<ServingEngine> {
        let catalog = catalog_of(&database)?;
        let max_in_flight = limits.max_in_flight.max(1);
        let limits = ServingLimits {
            max_in_flight,
            max_cold_in_flight: limits.max_cold_in_flight.clamp(1, max_in_flight),
            max_queue_wait: limits.max_queue_wait,
        };
        Ok(ServingEngine {
            config,
            limits,
            state: OrderedRwLock::new(
                LockRank::State,
                "serving.state",
                CatalogState { database, catalog },
            ),
            db_epoch: AtomicU64::new(0),
            catalog_epoch: AtomicU64::new(0),
            plans: OrderedMutex::new(LockRank::Plans, "serving.plans", PlanCache::new()),
            prepared: OrderedRwLock::new(LockRank::Prepared, "serving.prepared", HashMap::new()),
            pool: OrderedRwLock::new(LockRank::Pool, "serving.pool", SnapshotPool::default()),
            admission: Gate::new(
                limits.max_in_flight,
                LockRank::GateAdmission,
                "gate.admission.permit",
                "gate.admission.counter",
            ),
            cold_admission: Gate::new(
                limits.max_cold_in_flight,
                LockRank::GateCold,
                "gate.cold.permit",
                "gate.cold.counter",
            ),
            counters: Counters::default(),
            sampler: Arc::new(crate::sched::SampleScheduler::new()),
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// The admission limits (normalized).
    pub fn limits(&self) -> ServingLimits {
        self.limits
    }

    /// A lightweight per-session handle over this engine; sessions evaluate
    /// concurrently, each with its own RNG (held by the caller).
    pub fn session(&self) -> ServingSession<'_> {
        ServingSession {
            engine: self,
            evaluations: 0,
            retry: RetryPolicy::default(),
        }
    }

    /// The database being served.  The returned guard holds a read lock:
    /// drop it before calling methods of this engine from the same thread
    /// while writers may be queued.
    pub fn database(&self) -> DatabaseGuard<'_> {
        DatabaseGuard(self.state.read())
    }

    /// Replaces the whole database and drops every cache: plans (they
    /// validate against the catalog, which may change schemas), prepared
    /// queries and the snapshot pool.  This is the schema-evolution path;
    /// content-only changes should use
    /// [`update_relations`](ServingEngine::update_relations), which keeps
    /// warm caches warm.
    pub fn set_database(&self, database: UDatabase) -> Result<()> {
        let catalog = catalog_of(&database)?;
        let mut state = self.state.write();
        // Epochs first: once either bump is visible, every racing prepare
        // retries and every racing absorb drops, so the cache clears below
        // cannot be undone by in-flight sessions.
        self.db_epoch.fetch_add(1, Ordering::Release);
        self.catalog_epoch.fetch_add(1, Ordering::Release);
        state.database = database;
        state.catalog = catalog;
        self.plans.lock().clear();
        self.prepared.write().clear();
        self.pool.write().entries.clear();
        Ok(())
    }

    /// Applies content updates to named base relations, invalidating only
    /// the cached state they touch.
    ///
    /// Every update must keep the relation's catalog identity: same schema,
    /// and a relation declared complete stays complete (schema evolution
    /// goes through [`set_database`](ServingEngine::set_database)).
    ///
    /// Batch semantics are **last-wins, validated atomically over the net
    /// content**: a name given several times collapses to its final
    /// replacement *before* validation, so a transient-invalid intermediate
    /// that the same batch overwrites cannot reject the update — only the
    /// content the batch would actually leave behind is checked, and either
    /// every update applies or none does.  Final contents whose digest
    /// equals the stored relation are no-ops and invalidate nothing.
    ///
    /// Invalidation is footprint-based: a pooled prefix entry dies only if a
    /// changed relation feeds its stateful spine (its repair-key variables
    /// or exact-confidence statistics would be stale); otherwise the entry
    /// survives, the sub-plan results that scanned a changed relation are
    /// dropped, and the entry's database copy is patched.  Prepared queries
    /// not scanning any changed relation keep their full warm path; queries
    /// whose pure sub-plans were dropped re-warm exactly those sub-plans on
    /// their next evaluation.  Warm answers after an update are
    /// bit-identical to a cold evaluation over the updated database at the
    /// same RNG state.
    ///
    /// This is the blunt full-replacement path: dropped sub-plan results are
    /// recomputed from scratch on the next resume regardless of how little
    /// actually changed.  When the change is small,
    /// [`apply_deltas`](ServingEngine::apply_deltas) re-warms at cost
    /// proportional to the delta instead.
    pub fn update_relations(
        &self,
        updates: impl IntoIterator<Item = (impl Into<String>, URelation)>,
    ) -> Result<()> {
        // The state write lock is held across validate + apply + pool
        // invalidation, so concurrent sessions see either the whole batch
        // or none of it.
        let mut state = self.state.write();
        // Collapse the batch to its net content first (last replacement per
        // name wins), then validate only that net content — atomically,
        // before anything is applied.
        let mut finals: BTreeMap<String, URelation> = BTreeMap::new();
        for (name, rel) in updates {
            finals.insert(name.into(), rel);
        }
        for (name, rel) in &finals {
            state.database.check_replacement(name, rel)?;
        }
        let changed: Vec<(String, URelation)> = finals
            .into_iter()
            .filter(|(name, rel)| {
                state
                    .database
                    .relation(name)
                    .map(|old| old.content_digest() != rel.content_digest())
                    .unwrap_or(true)
            })
            .collect();
        if changed.is_empty() {
            return Ok(());
        }
        let changed_names: BTreeSet<String> =
            changed.iter().map(|(name, _)| name.clone()).collect();
        // Bump the content epoch before the pool invalidation below: a
        // session that cloned the pre-update database can no longer absorb
        // its snapshot once this commit is visible.
        self.db_epoch.fetch_add(1, Ordering::Release);
        for (name, rel) in &changed {
            state
                .database
                .replace_relation(name, rel.clone())
                .expect("update validated above");
        }
        let (entries_dropped, slots_dropped) =
            self.pool.write().invalidate(&changed_names, &changed);
        self.counters
            .relation_updates
            .fetch_add(changed.len() as u64, Ordering::Relaxed);
        self.counters
            .snapshots_invalidated
            .fetch_add(entries_dropped, Ordering::Relaxed);
        self.counters
            .subplans_invalidated
            .fetch_add(slots_dropped, Ordering::Relaxed);
        Ok(())
    }

    /// Applies incremental row deltas to named base relations, re-warming
    /// pooled state at cost proportional to the delta.
    ///
    /// Validation mirrors [`update_relations`](ServingEngine::update_relations):
    /// the whole batch is checked before anything is applied (each delta's
    /// base digest must match the content it lands on — deltas to one name
    /// chain in batch order — and the patched relation must keep its catalog
    /// identity), and net no-ops invalidate nothing.
    ///
    /// Invalidation then runs at *row* granularity instead of sub-plan
    /// granularity: entries whose stateful spine scans a changed relation
    /// still drop (their repair-key variables or statistics would be stale),
    /// but in surviving entries every footprint-intersecting pure sub-plan
    /// result is patched in place by the incremental operator rules of
    /// [`crate::delta`] — selections, projections, unions and renames map
    /// the row edits pointwise, joins re-derive only the affected join keys
    /// — producing bit-for-bit the relation a recompute would.  Sub-plans
    /// with no incremental rule (products, difference), deltas large
    /// relative to their base relation
    /// (they would cost more to patch than to recompute), and slots whose
    /// required neighbours are missing fall back to the
    /// demote-and-recompute path of `update_relations`.
    /// [`ServingStats::subplans_patched`] / [`ServingStats::subplans_demoted`]
    /// record which path each slot took.
    ///
    /// Warm answers after a delta are bit-identical to a cold evaluation
    /// over the patched database at the same RNG state, exactly as for full
    /// replacements.
    pub fn apply_deltas(
        &self,
        deltas: impl IntoIterator<Item = (impl Into<String>, RelationDelta)>,
    ) -> Result<()> {
        // Like `update_relations`, the state write lock spans validate +
        // apply + pool maintenance.
        let mut state = self.state.write();
        // Validate the whole batch before applying any of it.  Deltas to
        // one name chain: each must apply against the content the previous
        // one produced (digest-checked), and the final content must pass
        // the same catalog checks as a full replacement.
        let mut finals: BTreeMap<String, (URelation, Vec<RelationDelta>)> = BTreeMap::new();
        for (name, delta) in deltas {
            let name = name.into();
            match finals.get_mut(&name) {
                Some((current, chain)) => {
                    let new = delta.apply_to(current)?;
                    state.database.check_replacement(&name, &new)?;
                    *current = new;
                    chain.push(delta);
                }
                None => {
                    let new = state.database.check_delta(&name, &delta)?;
                    finals.insert(name, (new, vec![delta]));
                }
            }
        }
        let changed: Vec<(String, URelation, Vec<RelationDelta>)> = finals
            .into_iter()
            // Net no-ops drop out.  Direct equality, not digests: a chain
            // that reverts itself compares equal after one short walk, and
            // a real change usually diverges within a few rows.
            .filter(|(name, (rel, _))| {
                state
                    .database
                    .relation(name)
                    .map(|old| old != rel)
                    .unwrap_or(true)
            })
            .map(|(name, (rel, chain))| (name, rel, chain))
            .collect();
        if changed.is_empty() {
            return Ok(());
        }
        let changed_names: BTreeSet<String> =
            changed.iter().map(|(name, _, _)| name.clone()).collect();
        // Same ordering as `update_relations`: epoch before pool patching,
        // so stale snapshots captured before this commit drop at absorb.
        self.db_epoch.fetch_add(1, Ordering::Release);
        // The net row delta per relation, kept only while patching beats
        // recomputing.  A single delta per name already *is* the net edit
        // (it was digest-validated against the stored content); only chains
        // re-derive it by diffing.
        let updates: Vec<DeltaUpdate> = changed
            .iter()
            .map(|(name, new, chain)| {
                let old = state.database.relation(name).expect("validated above");
                let patch = match chain.as_slice() {
                    [only] => Some(only.clone()),
                    _ => old.diff(new).ok(),
                }
                .filter(|d| patch_worthwhile(d.magnitude(), old.len()));
                DeltaUpdate {
                    name: name.clone(),
                    new: new.clone(),
                    patch,
                }
            })
            .collect();
        let changed_count = changed.len() as u64;
        for (name, rel, _) in changed {
            // The batch was fully validated above; apply without re-running
            // the catalog checks (moving the relation in, not cloning it),
            // preserving the completeness declaration.
            let complete = state.database.is_complete(&name);
            state.database.set_relation(name, rel, complete);
        }
        let plans: Vec<(Arc<PhysicalPlan>, Arc<PrefixProfile>)> = self
            .prepared
            .read()
            .values()
            .map(|p| (p.physical.clone(), p.profile.clone()))
            .collect();
        let (entries_dropped, patched, demoted) =
            self.pool.write().patch(&changed_names, &updates, &plans);
        self.counters
            .relation_updates
            .fetch_add(changed_count, Ordering::Relaxed);
        self.counters
            .snapshots_invalidated
            .fetch_add(entries_dropped, Ordering::Relaxed);
        self.counters
            .subplans_patched
            .fetch_add(patched, Ordering::Relaxed);
        self.counters
            .subplans_demoted
            .fetch_add(demoted, Ordering::Relaxed);
        Ok(())
    }

    /// Evaluates a UA query given as text.  The first evaluation of a query
    /// resumes from the cross-query snapshot pool when another prepared
    /// query already executed the same deterministic prefix; otherwise it
    /// runs cold and populates the pool.  Repeated evaluations resume at
    /// the sampling frontier.
    pub fn evaluate<R: Rng + ?Sized>(&self, text: &str, rng: &mut R) -> Result<EvalOutput> {
        self.evaluate_request(&Request::new(text), rng)
    }

    /// Evaluates a [`Request`] (query text plus optional per-request ε/δ and
    /// deadline budgets).
    pub fn evaluate_request<R: Rng + ?Sized>(
        &self,
        request: &Request<'_>,
        rng: &mut R,
    ) -> Result<EvalOutput> {
        let deadline = request.deadline;
        // A request that arrives with its deadline already spent fails with
        // a deterministic tag before any work (or queueing) happens.
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err(EngineError::DeadlineExceeded { stage: "prepare" });
            }
        }
        let config = request.effective_config(self.config);
        let (key, prepared) = self.prepare(request.text, config)?;
        crate::faults::fire("admission", deadline)?;
        let first_evaluation = prepared.evaluations.fetch_add(1, Ordering::Relaxed) == 0;
        let physical = prepared.physical.clone();
        let profile = prepared.profile.clone();

        // Fair admission.  Classify warm/cold by peeking the pool (presence
        // of the prefix entry); a cold request waits on the cold gate
        // *before* taking an admission slot, so a cold burst cannot occupy
        // the slots warm traffic needs.  The classification is best-effort
        // — authoritative resolution happens after admission.
        let looks_warm = self.pool.read().entry(&profile.fingerprint).is_some();
        let queue_wait = self.limits.max_queue_wait;
        let mut _cold_permit = if looks_warm {
            None
        } else {
            Some(
                self.cold_admission
                    .acquire(deadline, queue_wait, "cold admission")?,
            )
        };
        let mut _permit = self.admission.acquire(deadline, queue_wait, "admission")?;
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err(EngineError::DeadlineExceeded {
                    stage: "pre-execution",
                });
            }
        }

        let mut rng_ref: &mut R = rng;
        let dyn_rng: &mut dyn RngCore = &mut rng_ref;
        // The epoch is read *before* the entry lookup: the pool entry then
        // reflects this epoch or a later one, so if the guarded absorb below
        // sees the same epoch, no commit invalidated the pool in between.
        let epoch = self.db_epoch.load(Ordering::Acquire);
        // Resolve against an Arc clone of the entry: the pool lock is held
        // only for the lookup, never across snapshot assembly or execution.
        let entry = self.pool.read().entry(&profile.fingerprint);
        if let Some(entry) = entry {
            if let Some(resolved) = resolve_prefix(&entry, &profile, &physical, &key)? {
                self.counters
                    .warm_evaluations
                    .fetch_add(1, Ordering::Relaxed);
                if first_evaluation && resolved.shared {
                    self.counters
                        .shared_prefix_hits
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.counters
                    .subplans_recomputed
                    .fetch_add(resolved.demoted, Ordering::Relaxed);
                let mut ctx = ExecContext {
                    config,
                    // The snapshot restores its own database; seeding the
                    // context with an empty one avoids a wasted full clone.
                    database: UDatabase::new(),
                    stats: EvalStats::default(),
                    var_counter: 0,
                    rng: dyn_rng,
                    spaces: SpaceCache::new(),
                    deadline,
                    sampler: config.shared_sampling.then(|| Arc::clone(&self.sampler)),
                };
                // Quarantine region: a panicking resume (an operator bug, or
                // an injected fault) drops only this run's pool entry — the
                // engine stays serviceable and the next request of this
                // prefix re-warms it.
                let run = catch_unwind(AssertUnwindSafe(|| {
                    if resolved.demoted > 0 {
                        // Some pure sub-plans recompute during this resume;
                        // capture at the frontier again and pool their fresh
                        // results, so the next request (of any query sharing
                        // them) finds the prefix fully warm.
                        let (result, recaptured) =
                            physical.resume_capturing(&mut ctx, resolved.snapshot)?;
                        self.absorb_if_current(epoch, &profile, &recaptured, &key);
                        Ok(result)
                    } else {
                        physical.resume_owned(&mut ctx, resolved.snapshot)
                    }
                }));
                let result = match run {
                    Ok(result) => result?,
                    Err(_) => {
                        self.quarantine(&profile.fingerprint);
                        return Err(EngineError::Panicked { stage: "warm-eval" });
                    }
                };
                self.absorb_estimation_stats(&ctx.stats);
                return Ok(EvalOutput {
                    result,
                    database: ctx.database,
                    stats: ctx.stats,
                });
            }
        }

        // A warm-classified request lands here when the pool entry vanished
        // (or resolved as a miss) between the admission peek and resolution
        // — typically right after an invalidation dropped a hot prefix.  It
        // is a cold request now: route it through the cold gate so the
        // resulting stampede stays bounded by `max_cold_in_flight`.  The
        // admission slot is released first — permits are ordered
        // cold-before-admission everywhere, and waiting on the cold gate
        // while holding an admission slot could deadlock the two gates
        // against each other.
        if _cold_permit.is_none() {
            drop(_permit);
            _cold_permit = Some(self.cold_admission.acquire(
                deadline,
                queue_wait,
                "cold admission",
            )?);
            _permit = self.admission.acquire(deadline, queue_wait, "admission")?;
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(EngineError::DeadlineExceeded {
                        stage: "pre-execution",
                    });
                }
            }
        }
        self.counters
            .cold_evaluations
            .fetch_add(1, Ordering::Relaxed);
        // Clone the database and read the epoch under one state read lock:
        // commits hold the write lock, so the pair is consistent.
        let (database, epoch) = {
            let state = self.state.read();
            (
                state.database.clone(),
                self.db_epoch.load(Ordering::Acquire),
            )
        };
        let mut ctx = ExecContext {
            config,
            database,
            stats: EvalStats::default(),
            var_counter: 0,
            rng: dyn_rng,
            spaces: SpaceCache::new(),
            deadline,
            sampler: config.shared_sampling.then(|| Arc::clone(&self.sampler)),
        };
        // Quarantine region (see the warm path above).  The failpoint fires
        // *inside* it: an injected cold-eval panic must be caught here, and
        // it runs before the execution draws any caller randomness, so a
        // retried request still evaluates bit-identically to cold.
        let run = catch_unwind(AssertUnwindSafe(|| {
            crate::faults::fire("cold-eval", deadline)?;
            physical.execute_capturing(&mut ctx)
        }));
        let (result, snapshot) = match run {
            Ok(output) => output?,
            Err(_) => {
                self.quarantine(&profile.fingerprint);
                return Err(EngineError::Panicked { stage: "cold-eval" });
            }
        };
        self.absorb_if_current(epoch, &profile, &snapshot, &key);
        self.absorb_estimation_stats(&ctx.stats);
        Ok(EvalOutput {
            result,
            database: ctx.database,
            stats: ctx.stats,
        })
    }

    /// Rolls one evaluation's estimation-backend counters into the engine
    /// totals surfaced by [`stats`](ServingEngine::stats).
    fn absorb_estimation_stats(&self, stats: &EvalStats) {
        self.counters
            .exact_compiled_answers
            .fetch_add(stats.exact_compiled_answers, Ordering::Relaxed);
        self.counters
            .sampled_answers
            .fetch_add(stats.sampled_answers, Ordering::Relaxed);
        self.counters
            .shared_block_hits
            .fetch_add(stats.shared_block_hits, Ordering::Relaxed);
    }

    /// Evaluates a [`Request`], degrading to a guaranteed-bounds answer when
    /// the full evaluation cannot fit its budgets.
    ///
    /// The request first runs normally.  If it fails because its deadline
    /// expired *mid-sampling* ([`EngineError::DeadlineExceeded`] in the
    /// `estimate` stage) or because an admission gate was saturated past
    /// [`ServingLimits::max_queue_wait`] ([`EngineError::Overloaded`]), and
    /// the query is an approximate `conf` over a deterministic prefix
    /// ([`PhysicalPlan::bounds_root`]), the engine answers with
    /// [`DegradedAnswer`]: per output tuple, an exact interval
    /// `[lower, upper]` guaranteed to contain the tuple's true confidence,
    /// computed without drawing a single sample.  Every other error (and
    /// every budget failure of a query with no bounds form) propagates
    /// unchanged.
    ///
    /// The bounds path consumes no caller randomness, so a degraded answer
    /// leaves the session's RNG stream exactly where a shed request would
    /// have: determinism of later full answers is unaffected.
    pub fn evaluate_degradable<R: Rng + ?Sized>(
        &self,
        request: &Request<'_>,
        rng: &mut R,
    ) -> Result<ServingAnswer> {
        let err = match self.evaluate_request(request, rng) {
            Ok(full) => return Ok(ServingAnswer::Full(full)),
            Err(err) => err,
        };
        let reason = match &err {
            EngineError::DeadlineExceeded { stage: "estimate" } => DegradedReason::DeadlineExpired,
            EngineError::Overloaded { .. } => DegradedReason::QueueSaturated,
            _ => return Err(err),
        };
        match self.bounds_answer(request, reason) {
            Ok(answer) => {
                self.counters
                    .degraded_answers
                    .fetch_add(1, Ordering::Relaxed);
                Ok(ServingAnswer::Degraded(answer))
            }
            // The bounds form is unsupported (or itself failed): surface the
            // original budget error, not the fallback's.
            Err(_) => Err(err),
        }
    }

    /// The guaranteed-bounds fallback of
    /// [`evaluate_degradable`](ServingEngine::evaluate_degradable): runs the
    /// deterministic prefix and answers the root `conf` from exact interval
    /// bounds.  Deliberately bypasses the admission gates — it is the shed
    /// path's fallback, so re-queueing it behind the very gate that shed the
    /// request would defeat the point — and uses a fixed dummy RNG, which
    /// [`PhysicalPlan::execute_bounds`] never draws from.
    fn bounds_answer(
        &self,
        request: &Request<'_>,
        reason: DegradedReason,
    ) -> Result<DegradedAnswer> {
        let config = request.effective_config(self.config);
        let (_key, prepared) = self.prepare(request.text, config)?;
        let physical = prepared.physical.clone();
        let database = {
            let state = self.state.read();
            state.database.clone()
        };
        let mut dummy = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let mut ctx = ExecContext {
            config,
            database,
            stats: EvalStats::default(),
            var_counter: 0,
            rng: &mut dummy,
            spaces: SpaceCache::new(),
            deadline: None,
            sampler: None,
        };
        let bounds = physical.execute_bounds(&mut ctx, config.pairwise_bound_limit)?;
        Ok(DegradedAnswer { bounds, reason })
    }

    /// Removes a prefix entry after a panic inside an evaluation that used
    /// (or was about to populate) it, counting the removal.  The engine
    /// stays serviceable: the next request of the prefix re-warms it.
    fn quarantine(&self, fingerprint: &(u64, u64)) {
        let mut pool = self.pool.write();
        if pool.entries.remove(fingerprint).is_some() {
            self.counters
                .entries_quarantined
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pools a captured snapshot unless the database has moved on since the
    /// snapshot's inputs were read (at `epoch`).
    ///
    /// Commits bump [`db_epoch`](ServingEngine::db_epoch) under the state
    /// write lock *before* taking the pool write lock to invalidate, so
    /// checking the epoch under the pool write lock is exact: a matching
    /// epoch means any in-flight commit has not yet started invalidating —
    /// its pass will then run after this insert and maintain it like any
    /// other entry.  A mismatch means invalidation may already have run,
    /// and inserting would serve pre-commit answers to every later warm
    /// hit; the snapshot is dropped instead (the module-doc invariant:
    /// races change cost, never answers).
    fn absorb_if_current(
        &self,
        epoch: u64,
        profile: &PrefixProfile,
        snapshot: &ExecSnapshot,
        creator: &Arc<str>,
    ) {
        // Failpoint: skipping an absorb is a legal opportunistic miss — the
        // answer was already computed; only the pool stays cold.
        if crate::faults::fire_cost_only("absorb") {
            self.counters
                .stale_absorbs_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut pool = self.pool.write();
        if self.db_epoch.load(Ordering::Acquire) == epoch {
            pool.absorb(profile, snapshot, creator);
        } else {
            self.counters
                .stale_absorbs_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Plan-cache lookup plus prepared-entry lookup/creation for one request
    /// under its effective configuration.  Lowering runs outside every lock;
    /// when two sessions race to prepare the same query, the first insert
    /// wins and the loser's work is discarded.
    ///
    /// A racing [`set_database`](ServingEngine::set_database) is detected by
    /// the catalog epoch, re-checked under the prepared write lock before
    /// the entry is installed: the epoch is bumped (under the state write
    /// lock) before `set_database` clears any cache, so a passed check
    /// proves the clears have not started — they will then run after this
    /// insert and wipe it like any other entry — while a failed check means
    /// the plan was lowered against a replaced catalog and must be redone.
    /// The plan-cache pin happens under the same prepared write lock, so the
    /// clear cannot slip between the insert and the pin and leave a live
    /// prepared query whose plan is unpinned (or re-pin a key the cleared
    /// cache no longer holds).
    fn prepare(&self, text: &str, config: EvalConfig) -> Result<(Arc<str>, Arc<PreparedQuery>)> {
        crate::faults::fire("prepare", None)?;
        loop {
            let (catalog, epoch) = {
                let state = self.state.read();
                (
                    state.catalog.clone(),
                    self.catalog_epoch.load(Ordering::Acquire),
                )
            };
            let (key, plan) = self.plans.lock().get_or_lower(text, &catalog)?;
            let pkey: PreparedKey = (key.clone(), config_digest(&config));
            if let Some(hit) = self.prepared.read().get(&pkey).cloned() {
                return Ok((key, hit));
            }
            let physical = Arc::new(PhysicalPlan::lower(&plan, config)?);
            let profile = Arc::new(PrefixProfile::new(&plan, &physical, &config));
            let fresh = Arc::new(PreparedQuery {
                physical,
                profile,
                evaluations: AtomicU64::new(0),
            });
            let mut map = self.prepared.write();
            if self.catalog_epoch.load(Ordering::Acquire) != epoch {
                // The catalog this plan was lowered against was replaced
                // mid-prepare; retry against the new one (the state read
                // above blocks until the replacement finishes).
                drop(map);
                continue;
            }
            // Prepared queries are bounded; evicted ones re-prepare and
            // find their prefix still pooled.
            let evicted = map.len() >= PREPARED_CAP && !map.contains_key(&pkey);
            if evicted {
                map.clear();
            }
            let entry = map.entry(pkey).or_insert_with(|| fresh).clone();
            // The plans mutex nests inside the prepared write lock here and
            // nowhere else; every other path takes the plans mutex alone.
            let mut plans = self.plans.lock();
            if evicted {
                plans.unpin_all();
            }
            // Pin the prepared query's plan: plan-cache pressure from
            // one-off spellings must never evict a plan whose prepared
            // state is live.
            plans.pin(&key);
            drop(plans);
            drop(map);
            return Ok((key, entry));
        }
    }

    /// Cache counters (a consistent-enough snapshot: counters are updated
    /// lock-free by concurrent sessions).
    pub fn stats(&self) -> ServingStats {
        let (plan_cache_hits, plan_cache_misses) = {
            let plans = self.plans.lock();
            (plans.hits(), plans.misses())
        };
        ServingStats {
            cold_evaluations: self.counters.cold_evaluations.load(Ordering::Relaxed),
            warm_evaluations: self.counters.warm_evaluations.load(Ordering::Relaxed),
            plan_cache_hits,
            plan_cache_misses,
            shared_prefix_hits: self.counters.shared_prefix_hits.load(Ordering::Relaxed),
            snapshots_invalidated: self.counters.snapshots_invalidated.load(Ordering::Relaxed),
            subplans_invalidated: self.counters.subplans_invalidated.load(Ordering::Relaxed),
            subplans_recomputed: self.counters.subplans_recomputed.load(Ordering::Relaxed),
            relation_updates: self.counters.relation_updates.load(Ordering::Relaxed),
            subplans_patched: self.counters.subplans_patched.load(Ordering::Relaxed),
            subplans_demoted: self.counters.subplans_demoted.load(Ordering::Relaxed),
            stale_absorbs_dropped: self.counters.stale_absorbs_dropped.load(Ordering::Relaxed),
            retries: self.counters.retries.load(Ordering::Relaxed),
            entries_quarantined: self.counters.entries_quarantined.load(Ordering::Relaxed),
            degraded_answers: self.counters.degraded_answers.load(Ordering::Relaxed),
            exact_compiled_answers: self.counters.exact_compiled_answers.load(Ordering::Relaxed),
            sampled_answers: self.counters.sampled_answers.load(Ordering::Relaxed),
            shared_block_hits: self.counters.shared_block_hits.load(Ordering::Relaxed),
        }
    }

    /// Number of prepared queries.
    pub fn prepared_queries(&self) -> usize {
        self.prepared.read().len()
    }

    /// Number of pooled prefix entries (distinct stateful spines).  Smaller
    /// than [`prepared_queries`](ServingEngine::prepared_queries) when
    /// prepared queries share prefixes.
    pub fn pooled_prefixes(&self) -> usize {
        self.pool.read().entries.len()
    }

    /// Total number of sub-plan results currently pooled across all
    /// entries.
    pub fn pooled_subplans(&self) -> usize {
        self.pool
            .read()
            .entries
            .values()
            .map(|e| e.slots.len())
            .sum()
    }

    /// Writes a checkpoint of the served state into `dir` (created if
    /// missing): the W-table, the relation catalog, one digest-framed
    /// segment per relation, and one *warm* segment per poolable
    /// deterministic-prefix snapshot, all recorded in a `MANIFEST` segment
    /// written last — a crash mid-checkpoint leaves no complete manifest,
    /// which [`restore`](ServingEngine::restore) rejects as a whole.
    ///
    /// The database and the pool are cloned under the same lock order every
    /// commit uses (state before pool), so a checkpoint is a consistent cut:
    /// it never pairs a post-commit database with pre-commit warm state.
    /// Only pool entries created under the engine's own base configuration
    /// are persisted (per-request accuracy overrides prepare — and pool —
    /// separately; their entries are rebuilt on demand after a restore).
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| {
            EngineError::Storage(format!("creating checkpoint dir {}: {e}", dir.display()))
        })?;
        let (database, mut entries) = {
            let state = self.state.read();
            let pool = self.pool.read();
            let entries: Vec<((u64, u64), Arc<PoolEntry>)> =
                pool.entries.iter().map(|(k, v)| (*k, v.clone())).collect();
            (state.database.clone(), entries)
        };
        entries.sort_by_key(|(k, _)| *k);
        let mut manifest = Vec::new();

        let mut wtable = Vec::new();
        urel::segment::put_wtable(&mut wtable, database.wtable());
        manifest.push(crate::storage::write_segment_file(
            dir,
            "wtable.seg",
            &wtable,
        )?);

        let names = database.relation_names();
        let mut catalog = Vec::new();
        urel::segment::put_u32(&mut catalog, names.len() as u32);
        for name in &names {
            urel::segment::put_str(&mut catalog, name);
            urel::segment::put_u8(&mut catalog, u8::from(database.is_complete(name)));
        }
        manifest.push(crate::storage::write_segment_file(
            dir,
            "catalog.seg",
            &catalog,
        )?);
        for (i, name) in names.iter().enumerate() {
            let mut payload = Vec::new();
            urel::segment::put_relation(
                &mut payload,
                database.relation(name).expect("listed relation exists"),
            );
            let file = format!("rel-{i}.seg");
            manifest.push(crate::storage::write_segment_file(dir, &file, &payload)?);
        }

        let base_digest = config_digest(&self.config);
        let mut warm_index = 0usize;
        for (fingerprint, entry) in entries {
            // Re-prepare the entry's creator under the *base* configuration:
            // a matching fingerprint proves the entry was pooled under it
            // (override-config entries hash differently and are skipped).
            let Ok((_, prepared)) = self.prepare(&entry.creator, self.config) else {
                continue;
            };
            if prepared.profile.fingerprint != fingerprint {
                continue;
            }
            let mut slots: Vec<((u64, u64), BTreeSet<String>, EvaluatedRelation)> = entry
                .slots
                .iter()
                .map(|(digest, slot)| (*digest, (*slot.footprint).clone(), (*slot.value).clone()))
                .collect();
            slots.sort_by_key(|a| a.0);
            let warm = crate::storage::WarmEntry {
                creator: entry.creator.to_string(),
                config_digest: base_digest,
                var_counter: entry.var_counter as u64,
                stats: entry.stats,
                database: entry.database.clone(),
                stateful_footprint: entry.stateful_footprint.clone(),
                slots,
            };
            let mut payload = Vec::new();
            crate::storage::put_warm(&mut payload, &warm);
            let file = format!("warm-{warm_index}.seg");
            warm_index += 1;
            manifest.push(crate::storage::write_segment_file(dir, &file, &payload)?);
        }
        crate::storage::write_manifest(dir, &manifest)
    }

    /// Rebuilds a server from a checkpoint directory with default admission
    /// limits (see
    /// [`restore_with_limits`](ServingEngine::restore_with_limits)).
    pub fn restore(config: EvalConfig, dir: impl AsRef<Path>) -> Result<ServingEngine> {
        ServingEngine::restore_with_limits(config, dir, ServingLimits::default())
    }

    /// Rebuilds a server from a checkpoint directory written by
    /// [`checkpoint`](ServingEngine::checkpoint), re-seeding the snapshot
    /// pool from the warm segments so the first evaluations of the restored
    /// queries run at warm cost — bit-identical to what the original process
    /// would have answered at the same RNG state.
    ///
    /// Everything is verified before any of it is served: a missing,
    /// truncated or bit-flipped manifest or segment — including warm
    /// segments — fails the restore with [`EngineError::Storage`], and the
    /// caller falls back to constructing a cold engine.  Warm segments whose
    /// recorded configuration digest differs from `config` verify but are
    /// skipped (their prefixes re-warm on demand); they are never coerced
    /// into a pool they were not computed under.
    pub fn restore_with_limits(
        config: EvalConfig,
        dir: impl AsRef<Path>,
        limits: ServingLimits,
    ) -> Result<ServingEngine> {
        let dir = dir.as_ref();
        let manifest = crate::storage::read_manifest(dir)?;
        let missing = |name: &str| {
            EngineError::Storage(format!(
                "{}: manifest lists no {name} segment",
                dir.display()
            ))
        };
        let decode_err =
            |name: &str, e: urel::UrelError| EngineError::Storage(format!("{name}: {e}"));
        let row = |name: &str| -> Result<&crate::storage::ManifestEntry> {
            manifest
                .iter()
                .find(|e| e.name == name)
                .ok_or_else(|| missing(name))
        };

        let wtable_payload = crate::storage::read_verified(dir, row("wtable.seg")?)?;
        let mut cur = urel::segment::SegmentCursor::new(&wtable_payload);
        let wtable = cur.take_wtable().map_err(|e| decode_err("wtable.seg", e))?;
        if !cur.is_exhausted() {
            return Err(EngineError::Storage("wtable.seg: trailing bytes".into()));
        }

        let catalog_payload = crate::storage::read_verified(dir, row("catalog.seg")?)?;
        let mut cur = urel::segment::SegmentCursor::new(&catalog_payload);
        let decode_catalog = |cur: &mut urel::segment::SegmentCursor<'_>| {
            let count = cur.take_u32()? as usize;
            let mut names = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let name = cur.take_str()?;
                let complete = cur.take_u8()? != 0;
                names.push((name, complete));
            }
            Ok::<_, urel::UrelError>(names)
        };
        let names = decode_catalog(&mut cur).map_err(|e| decode_err("catalog.seg", e))?;
        if !cur.is_exhausted() {
            return Err(EngineError::Storage("catalog.seg: trailing bytes".into()));
        }

        let mut database = UDatabase::new();
        *database.wtable_mut() = wtable;
        for (i, (name, complete)) in names.iter().enumerate() {
            let file = format!("rel-{i}.seg");
            let payload = crate::storage::read_verified(dir, row(&file)?)?;
            let mut cur = urel::segment::SegmentCursor::new(&payload);
            let rel = cur.take_relation().map_err(|e| decode_err(&file, e))?;
            if !cur.is_exhausted() {
                return Err(EngineError::Storage(format!("{file}: trailing bytes")));
            }
            database.set_relation(name.clone(), rel, *complete);
        }
        database
            .validate()
            .map_err(|e| EngineError::Storage(format!("restored database: {e}")))?;

        let engine = ServingEngine::with_limits(config, database, limits)?;
        let base_digest = config_digest(&config);
        for entry in manifest.iter().filter(|e| e.name.starts_with("warm-")) {
            let payload = crate::storage::read_verified(dir, entry)?;
            let warm =
                crate::storage::take_warm(&payload).map_err(|e| decode_err(&entry.name, e))?;
            if warm.config_digest != base_digest {
                continue;
            }
            // Re-prepare the creator against the restored catalog: the
            // freshly computed profile supplies the pool fingerprint and the
            // stateful footprint, so the pool key always matches what this
            // process would compute — nothing keyed is trusted from disk.
            let Ok((key, prepared)) = engine.prepare(&warm.creator, config) else {
                continue;
            };
            let slots: HashMap<SubplanDigest, PooledSlot> = warm
                .slots
                .into_iter()
                .map(|(digest, footprint, value)| {
                    (
                        digest,
                        PooledSlot {
                            value: Arc::new(value),
                            footprint: Arc::new(footprint),
                        },
                    )
                })
                .collect();
            let pooled = PoolEntry {
                creator: key,
                database: warm.database,
                var_counter: warm.var_counter as usize,
                stats: warm.stats,
                spaces: SpaceCache::new(),
                slots,
                stateful_footprint: prepared.profile.stateful_footprint.clone(),
            };
            engine
                .pool
                .write()
                .entries
                .insert(prepared.profile.fingerprint, Arc::new(pooled));
        }
        Ok(engine)
    }
}

/// A per-session handle over a shared [`ServingEngine`].
///
/// Sessions are cheap (`engine.session()`), hold no engine state beyond the
/// borrow, and may run on their own threads: all sharing and synchronization
/// lives in the engine.  Each session keeps a local evaluation count; the
/// caller owns the session's RNG, preserving the engine's determinism
/// contract (a session's answers depend on its own RNG stream only).
pub struct ServingSession<'a> {
    engine: &'a ServingEngine,
    evaluations: u64,
    retry: RetryPolicy,
}

impl<'a> ServingSession<'a> {
    /// The shared engine this session serves from.
    pub fn engine(&self) -> &'a ServingEngine {
        self.engine
    }

    /// Number of evaluations this session has issued.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Replaces the session's [`RetryPolicy`] (the default retries transient
    /// errors a few times with jittered backoff; [`RetryPolicy::none`]
    /// surfaces every error immediately).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Evaluates a query with the engine's default budgets.
    pub fn evaluate<R: Rng + ?Sized>(&mut self, text: &str, rng: &mut R) -> Result<EvalOutput> {
        self.evaluate_request(&Request::new(text), rng)
    }

    /// Evaluates a [`Request`] with per-request budgets, retrying transient
    /// failures ([`EngineError::is_transient`]) under the session's
    /// [`RetryPolicy`].  A retry that would sleep past the request deadline
    /// is not attempted — the transient error surfaces instead.
    pub fn evaluate_request<R: Rng + ?Sized>(
        &mut self,
        request: &Request<'_>,
        rng: &mut R,
    ) -> Result<EvalOutput> {
        self.evaluations += 1;
        let salt = self.evaluations;
        let mut attempt = 0u32;
        loop {
            match self.engine.evaluate_request(request, rng) {
                Err(e) if e.is_transient() && attempt < self.retry.max_retries => {
                    match self.backoff_or_give_up(request, attempt, salt) {
                        Some(()) => attempt += 1,
                        None => return Err(e),
                    }
                }
                verdict => return verdict,
            }
        }
    }

    /// The degradable counterpart of
    /// [`evaluate_request`](ServingSession::evaluate_request): retries
    /// transient failures, then falls back to guaranteed bounds via
    /// [`ServingEngine::evaluate_degradable`] when budgets still cannot be
    /// met.
    pub fn evaluate_degradable<R: Rng + ?Sized>(
        &mut self,
        request: &Request<'_>,
        rng: &mut R,
    ) -> Result<ServingAnswer> {
        self.evaluations += 1;
        let salt = self.evaluations;
        let mut attempt = 0u32;
        loop {
            match self.engine.evaluate_degradable(request, rng) {
                Err(e) if e.is_transient() && attempt < self.retry.max_retries => {
                    match self.backoff_or_give_up(request, attempt, salt) {
                        Some(()) => attempt += 1,
                        None => return Err(e),
                    }
                }
                verdict => return verdict,
            }
        }
    }

    /// Sleeps the jittered backoff before retry `attempt` and counts the
    /// retry, or returns `None` when the sleep would overrun the request
    /// deadline (the caller then surfaces the transient error).
    fn backoff_or_give_up(&self, request: &Request<'_>, attempt: u32, salt: u64) -> Option<()> {
        let backoff = self.retry.backoff(attempt, salt);
        if let Some(deadline) = request.deadline {
            if Instant::now() + backoff >= deadline {
                return None;
            }
        }
        std::thread::sleep(backoff);
        self.engine.counters.retries.fetch_add(1, Ordering::Relaxed);
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::UEngine;
    use pdb::{relation, schema, tuple};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn coin_db() -> UDatabase {
        UDatabase::from_complete_relations([(
            "Coins",
            relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]],
        )])
    }

    fn checkpoint_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uadb-serving-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn restored_engines_serve_warm_and_match_cold_answers() {
        let text = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        serving.evaluate(text, &mut rng).unwrap();
        assert_eq!(serving.pooled_prefixes(), 1);

        let dir = checkpoint_dir("warm");
        serving.checkpoint(&dir).unwrap();
        let restored = ServingEngine::restore(EvalConfig::exact(), &dir).unwrap();
        // The warm segment re-seeded the pool before any evaluation ran.
        assert_eq!(restored.pooled_prefixes(), 1);
        assert!(restored.pooled_subplans() > 0);

        let mut warm_rng = ChaCha8Rng::seed_from_u64(23);
        let warm = restored.evaluate(text, &mut warm_rng).unwrap();
        let cold_engine = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut cold_rng = ChaCha8Rng::seed_from_u64(23);
        let cold = cold_engine.evaluate(text, &mut cold_rng).unwrap();
        assert_eq!(warm.result.relation, cold.result.relation);
        assert_eq!(warm.result.errors, cold.result.errors);
        assert_eq!(warm.stats, cold.stats);
        assert_eq!(warm.database, cold.database);
        use rand::RngCore as _;
        assert_eq!(
            warm_rng.next_u64(),
            cold_rng.next_u64(),
            "identical RNG consumption"
        );
        // The restored engine's first evaluation was warm, not cold.
        assert_eq!(restored.stats().warm_evaluations, 1);
        assert_eq!(restored.stats().cold_evaluations, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_or_partial_checkpoints_are_rejected_not_served() {
        let text = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        serving.evaluate(text, &mut rng).unwrap();
        let dir = checkpoint_dir("corrupt");
        serving.checkpoint(&dir).unwrap();

        // Flip one byte in every segment in turn: each flip must fail the
        // whole restore with a classified storage error.
        let mut names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert!(names.iter().any(|n| n.starts_with("warm-")));
        for name in &names {
            let path = dir.join(name);
            let pristine = std::fs::read(&path).unwrap();
            let mut bad = pristine.clone();
            let mid = bad.len() / 2;
            bad[mid] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            match ServingEngine::restore(EvalConfig::exact(), &dir) {
                Err(EngineError::Storage(_)) => {}
                other => panic!("corrupted {name} not rejected: {:?}", other.is_ok()),
            }
            std::fs::write(&path, &pristine).unwrap();
        }
        // Pristine again: restore succeeds.
        ServingEngine::restore(EvalConfig::exact(), &dir).unwrap();

        // A truncated directory (a listed segment deleted) is rejected too.
        std::fs::remove_file(dir.join("rel-0.seg")).unwrap();
        assert!(matches!(
            ServingEngine::restore(EvalConfig::exact(), &dir),
            Err(EngineError::Storage(_))
        ));
        // And so is a directory with no manifest (crash mid-checkpoint).
        std::fs::remove_file(dir.join(super::super::storage::MANIFEST)).unwrap();
        assert!(matches!(
            ServingEngine::restore(EvalConfig::exact(), &dir),
            Err(EngineError::Storage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restores_under_a_different_config_skip_warm_segments() {
        let text = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        serving.evaluate(text, &mut rng).unwrap();
        let dir = checkpoint_dir("config");
        serving.checkpoint(&dir).unwrap();

        // A different lowering configuration verifies the warm segment but
        // skips it: the pool starts empty and the first evaluation is cold —
        // and still correct.
        let other = EvalConfig::exact()
            .with_shards(1)
            .with_spill_budget_bytes(96);
        let restored = ServingEngine::restore(other, &dir).unwrap();
        assert_eq!(restored.pooled_prefixes(), 0);
        let mut rng_a = ChaCha8Rng::seed_from_u64(17);
        let out = restored.evaluate(text, &mut rng_a).unwrap();
        let reference = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng_b = ChaCha8Rng::seed_from_u64(17);
        let expect = reference.evaluate(text, &mut rng_b).unwrap();
        assert_eq!(out.result.relation, expect.result.relation);
        assert_eq!(restored.stats().cold_evaluations, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_evaluations_match_cold_and_engine_results() {
        let db = coin_db();
        let text = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::exact(), db.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let cold = serving.evaluate(text, &mut rng).unwrap();
        let warm = serving.evaluate(text, &mut rng).unwrap();
        assert_eq!(cold.result.relation, warm.result.relation);
        assert_eq!(cold.result.errors, warm.result.errors);
        assert_eq!(cold.stats, warm.stats);
        assert_eq!(cold.database, warm.database);

        // Agrees with the plain engine on a fresh RNG with the same seed
        // (the query is deterministic, so RNG state is irrelevant).
        let engine = UEngine::new(EvalConfig::exact());
        let query = algebra::parse_query(text).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let direct = engine.evaluate(&db, &query, &mut rng).unwrap();
        assert_eq!(direct.result.relation, warm.result.relation);

        let stats = serving.stats();
        assert_eq!(stats.cold_evaluations, 1);
        assert_eq!(stats.warm_evaluations, 1);
        assert_eq!(stats.plan_cache_misses, 1);
        assert_eq!(stats.plan_cache_hits, 1);
        assert_eq!(stats.shared_prefix_hits, 0);
        assert_eq!(serving.prepared_queries(), 1);
        assert_eq!(serving.pooled_prefixes(), 1);
    }

    #[test]
    fn warm_aconf_requests_reuse_compiled_estimator_state() {
        // The pooled prefix retains the SpaceCache, whose compiled spaces
        // hold the extracted-and-compiled lineage programs: every warm
        // resume of a sampling query must hit that cache (sampling only) —
        // never re-extract events or re-compile programs.
        let db = coin_db();
        let text = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::default(), db).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        serving.evaluate(text, &mut rng).unwrap();

        let entry = {
            let pool = serving.pool.read();
            pool.entries
                .values()
                .next()
                .cloned()
                .expect("pooled prefix")
        };
        let space = entry
            .spaces
            .compiled(entry.database.wtable())
            .expect("compiled space");
        let len_before = space.lineage_len();
        let hits_before = space.lineage_hits();
        assert!(len_before > 0, "the cold run must populate the cache");

        for _ in 0..3 {
            serving.evaluate(text, &mut rng).unwrap();
        }
        assert_eq!(
            space.lineage_len(),
            len_before,
            "warm requests must not extract or compile new batches"
        );
        assert_eq!(
            space.lineage_hits(),
            hits_before + 3,
            "every warm request must be served from the compiled cache"
        );
    }

    #[test]
    fn absorb_racing_an_update_is_dropped_not_pooled() {
        // The reviewed race, replayed deterministically: a cold session
        // clones the database under the state read lock, executes, and only
        // then absorbs into the pool.  If an update commits (and runs pool
        // invalidation) in between, the absorb must drop the snapshot —
        // pooling it would serve pre-update answers to every later warm hit.
        let serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let text = "poss(Coins)";
        let (key, prepared) = serving.prepare(text, EvalConfig::exact()).unwrap();

        // Step 1 of the cold path: clone the database, record the epoch.
        let (database, epoch) = {
            let state = serving.state.read();
            (
                state.database.clone(),
                serving.db_epoch.load(Ordering::Acquire),
            )
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut rng_ref: &mut ChaCha8Rng = &mut rng;
        let dyn_rng: &mut dyn RngCore = &mut rng_ref;
        let mut ctx = ExecContext {
            config: EvalConfig::exact(),
            database,
            stats: EvalStats::default(),
            var_counter: 0,
            rng: dyn_rng,
            spaces: SpaceCache::new(),
            deadline: None,
            sampler: None,
        };
        let (_, snapshot) = prepared.physical.execute_capturing(&mut ctx).unwrap();

        // Step 2: a concurrent update commits and invalidates the pool
        // before the session reaches its absorb.
        let updated =
            URelation::from_complete(&relation![schema!["CoinType", "Count"]; ["fair", 5]]);
        serving
            .update_relations([("Coins", updated.clone())])
            .unwrap();

        // Step 3: the late absorb must detect the epoch change and drop.
        serving.absorb_if_current(epoch, &prepared.profile, &snapshot, &key);
        assert_eq!(
            serving.pooled_prefixes(),
            0,
            "a snapshot captured before the update must not re-enter the pool"
        );
        assert_eq!(serving.stats().stale_absorbs_dropped, 1);

        // The next evaluation runs cold against the updated content and
        // re-warms the pool; a warm repeat matches it bit for bit.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cold = serving.evaluate(text, &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let warm = serving.evaluate(text, &mut rng).unwrap();
        assert_eq!(cold.result.relation, warm.result.relation);
        assert_eq!(
            cold.result.relation, updated,
            "post-update evaluations must serve the updated content"
        );
        assert_eq!(serving.stats().stale_absorbs_dropped, 1);
    }

    #[test]
    fn absorb_at_the_current_epoch_still_pools() {
        // Counterpart to the race test: with no intervening commit the
        // guarded absorb behaves exactly like the unguarded one did.
        let serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        serving.evaluate("poss(Coins)", &mut rng).unwrap();
        assert_eq!(serving.pooled_prefixes(), 1);
        assert_eq!(serving.stats().stale_absorbs_dropped, 0);
    }

    #[test]
    fn alternative_spellings_share_one_prepared_query() {
        let serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        serving.evaluate("poss(Coins)", &mut rng).unwrap();
        serving.evaluate("poss( Coins )", &mut rng).unwrap();
        assert_eq!(serving.prepared_queries(), 1);
        assert_eq!(serving.stats().warm_evaluations, 1);
    }

    #[test]
    fn sampling_queries_resume_at_the_frontier_deterministically() {
        let db = coin_db();
        let text = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::default(), db.clone()).unwrap();
        // Warm evaluation with RNG state S must equal a cold evaluation of
        // the plain engine with the same RNG state S.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _cold = serving.evaluate(text, &mut rng).unwrap();
        let mut warm_rng = ChaCha8Rng::seed_from_u64(1234);
        let warm = serving.evaluate(text, &mut warm_rng).unwrap();

        let engine = UEngine::new(EvalConfig::default());
        let query = algebra::parse_query(text).unwrap();
        let mut direct_rng = ChaCha8Rng::seed_from_u64(1234);
        let direct = engine.evaluate(&db, &query, &mut direct_rng).unwrap();
        assert_eq!(warm.result.relation, direct.result.relation);
        assert_eq!(warm.stats, direct.stats);
    }

    #[test]
    fn shared_sampling_reuses_drawn_blocks_without_changing_answers() {
        let db = coin_db();
        let text = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let config = EvalConfig::default().with_shared_sampling(true);
        let serving = ServingEngine::new(config, db).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first = serving.evaluate(text, &mut rng).unwrap();
        assert_eq!(
            serving.stats().shared_block_hits,
            0,
            "the first request draws every block itself"
        );
        // A second request with a *different* caller seed: canonical
        // content-derived streams make the answer a pure function of
        // (content, configuration, ε/δ), so it matches the first bit for
        // bit — and its tallies come from the scheduler, not a re-run.
        let mut rng2 = ChaCha8Rng::seed_from_u64(999);
        let second = serving.evaluate(text, &mut rng2).unwrap();
        assert_eq!(first.result.relation, second.result.relation);
        let stats = serving.stats();
        assert!(stats.shared_block_hits > 0, "stats: {stats:?}");
        assert!(stats.sampled_answers > 0, "stats: {stats:?}");
        assert_eq!(stats.exact_compiled_answers, 0, "backend is off by default");
    }

    #[test]
    fn the_exact_backend_answers_narrow_aconf_queries_seed_independently() {
        let db = coin_db();
        let text = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let config =
            EvalConfig::default().with_exact_backend(confidence::cost::DEFAULT_NODE_BUDGET);
        let serving = ServingEngine::new(config, db.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first = serving.evaluate(text, &mut rng).unwrap();
        let mut rng2 = ChaCha8Rng::seed_from_u64(31337);
        let second = serving.evaluate(text, &mut rng2).unwrap();
        // Every event of the coin query is narrow enough to compile, so the
        // answers are exact and independent of the caller's seed.
        assert_eq!(first.result.relation, second.result.relation);
        let stats = serving.stats();
        assert!(stats.exact_compiled_answers > 0, "stats: {stats:?}");
        assert_eq!(stats.sampled_answers, 0, "stats: {stats:?}");
        assert_eq!(first.stats.karp_luby_samples, 0, "no samples drawn");
        // The compiled answers agree with exact model counting.
        let exact_text = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
        let exact_engine = UEngine::new(EvalConfig::exact());
        let query = algebra::parse_query(exact_text).unwrap();
        let mut exact_rng = ChaCha8Rng::seed_from_u64(0);
        let exact = exact_engine.evaluate(&db, &query, &mut exact_rng).unwrap();
        assert_eq!(first.result.relation, exact.result.relation);
    }

    #[test]
    fn set_database_invalidates_caches() {
        let serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        serving.evaluate("poss(Coins)", &mut rng).unwrap();
        let other = UDatabase::from_complete_relations([(
            "Coins",
            relation![schema!["CoinType", "Count"]; ["weighted", 5]],
        )]);
        serving.set_database(other).unwrap();
        assert_eq!(serving.prepared_queries(), 0);
        assert_eq!(serving.pooled_prefixes(), 0);
        let out = serving.evaluate("poss(Coins)", &mut rng).unwrap();
        assert_eq!(out.result.relation.len(), 1);
        // Unknown relations fail validation against the new catalog.
        assert!(serving.evaluate("poss(Nope)", &mut rng).is_err());
    }

    #[test]
    fn overlapping_queries_share_one_pooled_prefix() {
        // Two queries over the same deterministic prefix (repair-key +
        // projection), differing only in their sampling suffix: the second
        // query's *first* evaluation must resume the pooled prefix.
        let db = coin_db();
        let q1 = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let q2 = "aconf[0.2, 0.05](project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::default(), db.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        serving.evaluate(q1, &mut rng).unwrap();
        let mut rng2 = ChaCha8Rng::seed_from_u64(77);
        let shared = serving.evaluate(q2, &mut rng2).unwrap();

        let stats = serving.stats();
        assert_eq!(stats.cold_evaluations, 1, "q2 never ran its prefix");
        assert_eq!(stats.warm_evaluations, 1);
        assert_eq!(stats.shared_prefix_hits, 1);
        assert_eq!(serving.prepared_queries(), 2);
        assert_eq!(serving.pooled_prefixes(), 1, "one spine, two queries");

        // The shared resume is bit-identical to a cold evaluation of q2.
        let engine = UEngine::new(EvalConfig::default());
        let query = algebra::parse_query(q2).unwrap();
        let mut direct_rng = ChaCha8Rng::seed_from_u64(77);
        let direct = engine.evaluate(&db, &query, &mut direct_rng).unwrap();
        assert_eq!(shared.result.relation, direct.result.relation);
        assert_eq!(shared.stats, direct.stats);
        assert_eq!(shared.database, direct.database);
    }

    fn two_relation_db() -> UDatabase {
        UDatabase::from_complete_relations([
            (
                "Coins",
                relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]],
            ),
            (
                "Labels",
                relation![schema!["CoinType", "Label"]; ["fair", "ok"], ["2headed", "trick"]],
            ),
            ("Other", relation![schema!["X"]; [1], [2]]),
        ])
    }

    #[test]
    fn update_relations_invalidates_only_intersecting_state() {
        let db = two_relation_db();
        let touching = "aconf[0.3, 0.1](project[Label](join(repairkey[ @ Count](Coins), Labels)))";
        let independent = "aconf[0.3, 0.1](project[X](Other))";
        let serving = ServingEngine::new(EvalConfig::default(), db).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        serving.evaluate(touching, &mut rng).unwrap();
        serving.evaluate(independent, &mut rng).unwrap();
        assert_eq!(serving.stats().cold_evaluations, 2);

        // Update `Labels`: it feeds only pure sub-plans of `touching` (the
        // repair-key spine reads `Coins`), so the entry survives, only the
        // Labels-scanning sub-plans are dropped, and `independent` (whose
        // spine is empty and footprint disjoint) keeps its pooled state.
        let new_labels = URelation::from_complete(
            &relation![schema!["CoinType", "Label"]; ["fair", "good"], ["2headed", "evil"]],
        );
        serving.update_relations([("Labels", new_labels)]).unwrap();
        let stats = serving.stats();
        assert_eq!(stats.relation_updates, 1);
        assert_eq!(stats.snapshots_invalidated, 0, "no spine scans Labels");
        assert!(stats.subplans_invalidated > 0);

        // Both queries still evaluate warm (the touching one re-warms its
        // dropped pure sub-plans during the resume), and the touching
        // query's answer matches a cold engine over the updated database.
        let mut warm_rng = ChaCha8Rng::seed_from_u64(42);
        let warm = serving.evaluate(touching, &mut warm_rng).unwrap();
        serving.evaluate(independent, &mut warm_rng).unwrap();
        let stats = serving.stats();
        assert_eq!(stats.cold_evaluations, 2, "no evaluation re-ran cold");
        assert_eq!(stats.warm_evaluations, 2);

        let engine = UEngine::new(EvalConfig::default());
        let query = algebra::parse_query(touching).unwrap();
        let mut direct_rng = ChaCha8Rng::seed_from_u64(42);
        let direct = engine
            .evaluate(&serving.database(), &query, &mut direct_rng)
            .unwrap();
        assert_eq!(warm.result.relation, direct.result.relation);
        assert_eq!(warm.stats, direct.stats);
        assert_eq!(warm.database, direct.database);

        // The re-warm recomputed the dropped sub-plans once and pooled the
        // fresh results: a further warm evaluation recomputes nothing.
        let recomputed = serving.stats().subplans_recomputed;
        assert!(recomputed > 0, "the touching resume re-warmed sub-plans");
        serving.evaluate(touching, &mut warm_rng).unwrap();
        assert_eq!(serving.stats().subplans_recomputed, recomputed);
    }

    #[test]
    fn update_to_a_spine_relation_drops_the_entry() {
        let db = two_relation_db();
        let text = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::default(), db).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        serving.evaluate(text, &mut rng).unwrap();
        assert_eq!(serving.pooled_prefixes(), 1);

        // `Coins` feeds the repair-key spine: the entry must go.
        let new_coins = URelation::from_complete(
            &relation![schema!["CoinType", "Count"]; ["fair", 1], ["2headed", 3]],
        );
        serving.update_relations([("Coins", new_coins)]).unwrap();
        assert_eq!(serving.stats().snapshots_invalidated, 1);
        assert_eq!(serving.pooled_prefixes(), 0);

        // The next evaluation runs cold over the new content and matches
        // the plain engine.
        let mut rng_a = ChaCha8Rng::seed_from_u64(11);
        let re_cold = serving.evaluate(text, &mut rng_a).unwrap();
        assert_eq!(serving.stats().cold_evaluations, 2);
        let engine = UEngine::new(EvalConfig::default());
        let query = algebra::parse_query(text).unwrap();
        let mut rng_b = ChaCha8Rng::seed_from_u64(11);
        let direct = engine
            .evaluate(&serving.database(), &query, &mut rng_b)
            .unwrap();
        assert_eq!(re_cold.result.relation, direct.result.relation);
    }

    #[test]
    fn no_op_updates_invalidate_nothing() {
        let db = coin_db();
        let text = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::exact(), db.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        serving.evaluate(text, &mut rng).unwrap();
        let same = db.relation("Coins").unwrap().clone();
        serving.update_relations([("Coins", same)]).unwrap();
        let stats = serving.stats();
        assert_eq!(stats.relation_updates, 0);
        assert_eq!(stats.snapshots_invalidated, 0);
        assert_eq!(serving.pooled_prefixes(), 1);
        serving.evaluate(text, &mut rng).unwrap();
        assert_eq!(serving.stats().warm_evaluations, 1);
    }

    #[test]
    fn update_validation_is_atomic() {
        let db = two_relation_db();
        let serving = ServingEngine::new(EvalConfig::exact(), db.clone()).unwrap();
        let good =
            URelation::from_complete(&relation![schema!["CoinType", "Count"]; ["weighted", 4]]);
        let bad_schema = URelation::from_complete(&relation![schema!["A"]; [1]]);
        // The second update is invalid: nothing may be applied.
        assert!(serving
            .update_relations([("Coins", good), ("Labels", bad_schema)])
            .is_err());
        assert_eq!(
            serving.database().relation("Coins").unwrap(),
            db.relation("Coins").unwrap()
        );
        // Unknown relations are rejected up front too.
        let any = URelation::from_complete(&relation![schema!["A"]; [1]]);
        assert!(serving.update_relations([("Nope", any)]).is_err());
    }

    #[test]
    fn apply_deltas_patches_pure_subplans_in_place() {
        let db = two_relation_db();
        let touching = "aconf[0.3, 0.1](project[Label](join(repairkey[ @ Count](Coins), Labels)))";
        let serving = ServingEngine::new(EvalConfig::default(), db).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        serving.evaluate(touching, &mut rng).unwrap();

        // A single-row delta to the pure join side: the Labels scan, the
        // join and the projection above it are patched in place — nothing
        // is demoted, so the next resume recomputes nothing.
        let old = serving.database().relation("Labels").unwrap().clone();
        let mut new = old.clone();
        new.insert(urel::Condition::always(), pdb::tuple!["2headed", "sneaky"])
            .unwrap();
        let delta = old.diff(&new).unwrap();
        serving.apply_deltas([("Labels", delta)]).unwrap();
        let stats = serving.stats();
        assert_eq!(stats.relation_updates, 1);
        assert_eq!(stats.snapshots_invalidated, 0, "no spine scans Labels");
        assert_eq!(stats.subplans_patched, 3, "scan + join + project");
        assert_eq!(stats.subplans_demoted, 0);
        assert_eq!(stats.subplans_invalidated, 0);

        // The patched warm path is bit-identical to a cold engine over the
        // patched database, with zero sub-plan recomputation.
        let mut warm_rng = ChaCha8Rng::seed_from_u64(99);
        let warm = serving.evaluate(touching, &mut warm_rng).unwrap();
        assert_eq!(serving.stats().subplans_recomputed, 0);
        let engine = UEngine::new(EvalConfig::default());
        let query = algebra::parse_query(touching).unwrap();
        let mut direct_rng = ChaCha8Rng::seed_from_u64(99);
        let direct = engine
            .evaluate(&serving.database(), &query, &mut direct_rng)
            .unwrap();
        assert_eq!(warm.result.relation, direct.result.relation);
        assert_eq!(warm.stats, direct.stats);
        assert_eq!(warm.database, direct.database);
    }

    #[test]
    fn delta_to_a_spine_relation_still_drops_the_entry() {
        let db = two_relation_db();
        let text = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::default(), db).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        serving.evaluate(text, &mut rng).unwrap();

        // `Coins` feeds the repair-key spine: however small the delta, the
        // pooled context effects are stale and the entry must go.
        let old = serving.database().relation("Coins").unwrap().clone();
        let mut new = old.clone();
        new.insert(urel::Condition::always(), pdb::tuple!["weighted", 5])
            .unwrap();
        let delta = old.diff(&new).unwrap();
        serving.apply_deltas([("Coins", delta)]).unwrap();
        let stats = serving.stats();
        assert_eq!(stats.snapshots_invalidated, 1);
        assert_eq!(stats.subplans_patched, 0);
        assert_eq!(serving.pooled_prefixes(), 0);

        let mut rng_a = ChaCha8Rng::seed_from_u64(22);
        let re_cold = serving.evaluate(text, &mut rng_a).unwrap();
        assert_eq!(serving.stats().cold_evaluations, 2);
        let engine = UEngine::new(EvalConfig::default());
        let query = algebra::parse_query(text).unwrap();
        let mut rng_b = ChaCha8Rng::seed_from_u64(22);
        let direct = engine
            .evaluate(&serving.database(), &query, &mut rng_b)
            .unwrap();
        assert_eq!(re_cold.result.relation, direct.result.relation);
    }

    #[test]
    fn large_deltas_fall_back_to_demote_and_recompute() {
        // A join side big enough that rewriting most of it crosses the
        // patch-worthiness bound: the intersecting slots demote instead,
        // and the next warm resume recomputes them (update_relations
        // behaviour, same bit-identical answers).
        let mut labels = pdb::Relation::empty(pdb::Schema::new(["CoinType", "Label"]).unwrap());
        for i in 0..40 {
            labels
                .insert(pdb::Tuple::new(vec![
                    pdb::Value::str(if i % 2 == 0 { "fair" } else { "2headed" }),
                    pdb::Value::Int(i),
                ]))
                .unwrap();
        }
        let mut db = two_relation_db();
        db.set_relation("Labels", URelation::from_complete(&labels), true);
        let touching = "aconf[0.3, 0.1](project[Label](join(repairkey[ @ Count](Coins), Labels)))";
        let serving = ServingEngine::new(EvalConfig::default(), db).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        serving.evaluate(touching, &mut rng).unwrap();

        let old = serving.database().relation("Labels").unwrap().clone();
        let mut replacement =
            pdb::Relation::empty(pdb::Schema::new(["CoinType", "Label"]).unwrap());
        for i in 0..40 {
            replacement
                .insert(pdb::Tuple::new(vec![
                    pdb::Value::str("fair"),
                    pdb::Value::Int(1000 + i),
                ]))
                .unwrap();
        }
        let new = URelation::from_complete(&replacement);
        let delta = old.diff(&new).unwrap();
        assert!(
            delta.magnitude() > 8,
            "this test wants an unpatchable delta"
        );
        serving.apply_deltas([("Labels", delta)]).unwrap();
        let stats = serving.stats();
        assert_eq!(stats.snapshots_invalidated, 0);
        assert_eq!(stats.subplans_patched, 0);
        assert!(stats.subplans_demoted > 0);

        let mut warm_rng = ChaCha8Rng::seed_from_u64(32);
        let warm = serving.evaluate(touching, &mut warm_rng).unwrap();
        assert!(serving.stats().subplans_recomputed > 0);
        let engine = UEngine::new(EvalConfig::default());
        let query = algebra::parse_query(touching).unwrap();
        let mut direct_rng = ChaCha8Rng::seed_from_u64(32);
        let direct = engine
            .evaluate(&serving.database(), &query, &mut direct_rng)
            .unwrap();
        assert_eq!(warm.result.relation, direct.result.relation);
        assert_eq!(warm.stats, direct.stats);
    }

    #[test]
    fn delta_batches_chain_and_validate_atomically() {
        let db = two_relation_db();
        let serving = ServingEngine::new(EvalConfig::exact(), db.clone()).unwrap();
        let original = db.relation("Labels").unwrap().clone();
        let mut step1 = original.clone();
        step1
            .insert(urel::Condition::always(), pdb::tuple!["fair", "extra"])
            .unwrap();
        let mut step2 = step1.clone();
        step2
            .insert(urel::Condition::always(), pdb::tuple!["2headed", "more"])
            .unwrap();
        // Two deltas to one name chain within a batch: the second applies
        // against the first's output.
        let d1 = original.diff(&step1).unwrap();
        let d2 = step1.diff(&step2).unwrap();
        serving
            .apply_deltas([("Labels", d1.clone()), ("Labels", d2.clone())])
            .unwrap();
        assert_eq!(serving.database().relation("Labels").unwrap(), &step2);

        // A delta chained out of order is stale (digest mismatch) and the
        // whole batch — including the valid first element — is rejected.
        let before = serving.database().relation("Labels").unwrap().clone();
        let fresh = before.diff(&original).unwrap();
        assert!(serving
            .apply_deltas([("Labels", fresh), ("Labels", d2)])
            .is_err());
        assert_eq!(serving.database().relation("Labels").unwrap(), &before);

        // A net no-op batch (apply and revert) invalidates nothing.
        let updates_before = serving.stats().relation_updates;
        let forward = before.diff(&original).unwrap();
        let backward = original.diff(&before).unwrap();
        serving
            .apply_deltas([("Labels", forward), ("Labels", backward)])
            .unwrap();
        assert_eq!(serving.stats().relation_updates, updates_before);
    }

    #[test]
    fn transient_invalid_intermediates_are_overwritten_by_the_batch() {
        // Batch semantics are last-wins *before* validation: an invalid
        // intermediate that the same batch overwrites must not reject the
        // atomic update.
        let db = coin_db();
        let serving = ServingEngine::new(EvalConfig::exact(), db).unwrap();
        let bad_schema = URelation::from_complete(&relation![schema!["A"]; [1]]);
        let good =
            URelation::from_complete(&relation![schema!["CoinType", "Count"]; ["weighted", 4]]);
        serving
            .update_relations([("Coins", bad_schema.clone()), ("Coins", good.clone())])
            .unwrap();
        assert_eq!(serving.database().relation("Coins").unwrap(), &good);
        // The invalid content as the *final* word still rejects.
        assert!(serving
            .update_relations([("Coins", good), ("Coins", bad_schema)])
            .is_err());
    }

    #[test]
    fn duplicate_names_in_one_batch_are_last_wins() {
        let db = coin_db();
        let serving = ServingEngine::new(EvalConfig::exact(), db.clone()).unwrap();
        let replacement =
            URelation::from_complete(&relation![schema!["CoinType", "Count"]; ["weighted", 4]]);
        let original = db.relation("Coins").unwrap().clone();
        // Replace, then restore in the same batch: the net effect is a
        // no-op — the final content equals the stored one, so nothing is
        // applied or invalidated.
        serving
            .update_relations([("Coins", replacement.clone()), ("Coins", original.clone())])
            .unwrap();
        assert_eq!(serving.database().relation("Coins").unwrap(), &original);
        assert_eq!(serving.stats().relation_updates, 0);
        // The other order really updates, once.
        serving
            .update_relations([("Coins", original), ("Coins", replacement.clone())])
            .unwrap();
        assert_eq!(serving.database().relation("Coins").unwrap(), &replacement);
        assert_eq!(serving.stats().relation_updates, 1);
    }

    #[test]
    fn the_engine_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServingEngine>();
        assert_send_sync::<ServingSession<'_>>();
    }

    #[test]
    fn concurrent_warm_hits_are_all_counted() {
        // Satellite regression: ServingStats counters are atomics — N
        // sessions hammering the warm path concurrently must lose no
        // counts.
        let db = coin_db();
        let text = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::exact(), db).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        serving.evaluate(text, &mut rng).unwrap();
        let threads = 8;
        let per_thread = 5;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let serving = &serving;
                scope.spawn(move || {
                    let mut session = serving.session();
                    let mut rng = ChaCha8Rng::seed_from_u64(100 + t);
                    for _ in 0..per_thread {
                        session.evaluate(text, &mut rng).unwrap();
                    }
                    assert_eq!(session.evaluations(), per_thread);
                });
            }
        });
        let stats = serving.stats();
        assert_eq!(stats.cold_evaluations, 1);
        assert_eq!(stats.warm_evaluations, threads * per_thread);
        assert_eq!(stats.plan_cache_hits, threads * per_thread);
    }

    #[test]
    fn concurrent_sessions_match_the_sequential_schedule_per_seed() {
        // Warm ≡ cold makes results a function of (text, database, own RNG)
        // only: concurrent sessions must be bit-identical to the same
        // per-session request streams run sequentially.
        let db = two_relation_db();
        let queries = [
            "aconf[0.3, 0.1](project[Label](join(repairkey[ @ Count](Coins), Labels)))",
            "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))",
            "aconf[0.3, 0.1](project[X](Other))",
        ];
        let rounds = 4;
        let concurrent = ServingEngine::new(EvalConfig::default(), db.clone()).unwrap();
        let concurrent_results: Vec<Vec<URelation>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..queries.len())
                .map(|s| {
                    let concurrent = &concurrent;
                    let text = queries[s];
                    scope.spawn(move || {
                        let mut session = concurrent.session();
                        let mut rng = ChaCha8Rng::seed_from_u64(7 + s as u64);
                        (0..rounds)
                            .map(|_| session.evaluate(text, &mut rng).unwrap().result.relation)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let sequential = ServingEngine::new(EvalConfig::default(), db).unwrap();
        for (s, text) in queries.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(7 + s as u64);
            for (round, concurrent_relation) in concurrent_results[s].iter().enumerate() {
                let out = sequential.evaluate(text, &mut rng).unwrap();
                assert_eq!(
                    concurrent_relation, &out.result.relation,
                    "session {s} round {round} diverged from the sequential schedule"
                );
            }
        }
    }

    #[test]
    fn tight_admission_limits_still_serve_every_request() {
        // max_in_flight = 1 serializes execution; max_cold_in_flight = 1
        // serializes cold prepares of distinct queries.  Nothing may
        // deadlock, and all requests complete with correct counts.
        let serving = ServingEngine::with_limits(
            EvalConfig::default(),
            two_relation_db(),
            ServingLimits {
                max_in_flight: 1,
                max_cold_in_flight: 1,
                max_queue_wait: None,
            },
        )
        .unwrap();
        assert_eq!(serving.limits().max_in_flight, 1);
        let queries = [
            "aconf[0.3, 0.1](project[Label](join(repairkey[ @ Count](Coins), Labels)))",
            "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))",
            "aconf[0.3, 0.1](project[X](Other))",
            "poss(Other)",
        ];
        std::thread::scope(|scope| {
            for (s, text) in queries.iter().enumerate() {
                let serving = &serving;
                scope.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(s as u64);
                    for _ in 0..3 {
                        serving.evaluate(text, &mut rng).unwrap();
                    }
                });
            }
        });
        let stats = serving.stats();
        assert_eq!(
            stats.cold_evaluations + stats.warm_evaluations,
            (queries.len() * 3) as u64
        );
    }

    #[test]
    fn expired_deadlines_reject_instead_of_executing() {
        let serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let request = Request::new("poss(Coins)")
            .with_deadline(Instant::now() - std::time::Duration::from_millis(1));
        match serving.evaluate_request(&request, &mut rng) {
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // No evaluation happened.
        let stats = serving.stats();
        assert_eq!(stats.cold_evaluations + stats.warm_evaluations, 0);
        // A generous deadline executes normally.
        let request = Request::new("poss(Coins)")
            .with_deadline(Instant::now() + std::time::Duration::from_secs(60));
        serving.evaluate_request(&request, &mut rng).unwrap();
        assert_eq!(serving.stats().cold_evaluations, 1);
    }

    #[test]
    fn per_request_accuracy_overrides_prepare_separately_and_deterministically() {
        // The same text under an ε/δ override lowers against a distinct
        // effective configuration: its own prepared entry and pool prefix,
        // and answers bit-identical to an engine configured that way.
        let db = coin_db();
        let text = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::new(EvalConfig::exact(), db.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(50);
        serving.evaluate(text, &mut rng).unwrap();
        assert_eq!(serving.prepared_queries(), 1);

        let request = Request::new(text).with_accuracy(0.3, 0.1);
        let mut rng_a = ChaCha8Rng::seed_from_u64(51);
        let budgeted = serving.evaluate_request(&request, &mut rng_a).unwrap();
        assert_eq!(serving.prepared_queries(), 2, "override prepares its own");
        assert_eq!(serving.pooled_prefixes(), 2, "and pools its own prefix");

        let config = EvalConfig {
            confidence: ConfidenceMode::Fpras {
                epsilon: 0.3,
                delta: 0.1,
            },
            ..EvalConfig::exact()
        };
        let engine = UEngine::new(config);
        let query = algebra::parse_query(text).unwrap();
        let mut rng_b = ChaCha8Rng::seed_from_u64(51);
        let direct = engine.evaluate(&db, &query, &mut rng_b).unwrap();
        assert_eq!(budgeted.result.relation, direct.result.relation);
        assert_eq!(budgeted.stats, direct.stats);

        // And the override's warm path is as deterministic as the default's.
        let mut rng_c = ChaCha8Rng::seed_from_u64(51);
        let warm = serving.evaluate_request(&request, &mut rng_c).unwrap();
        assert_eq!(warm.result.relation, direct.result.relation);
    }

    #[test]
    fn shared_prefix_hits_require_a_different_creator() {
        // A query resuming the prefix *it* pooled (here: after the prepared
        // map was rebuilt via set-style eviction we simulate by a fresh
        // evaluation cycle) is warm but not a cross-query sharing event.
        let serving = ServingEngine::new(EvalConfig::default(), coin_db()).unwrap();
        let q = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        serving.evaluate(q, &mut rng).unwrap();
        // Simulate prepared-cache eviction: the pool survives, the prepared
        // entry is rebuilt, and the first evaluation of the re-prepared
        // query is warm — but not counted as shared.
        serving.prepared.write().clear();
        serving.evaluate(q, &mut rng).unwrap();
        let stats = serving.stats();
        assert_eq!(stats.warm_evaluations, 1);
        assert_eq!(stats.shared_prefix_hits, 0);
    }

    #[test]
    fn retry_backoff_is_bounded_deterministic_and_jittered() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            for salt in 0..4 {
                let a = policy.backoff(attempt, salt);
                assert_eq!(a, policy.backoff(attempt, salt), "jitter must replay");
                assert!(a <= policy.max_backoff);
                let exp = policy
                    .base_backoff
                    .saturating_mul(1 << attempt.min(16))
                    .min(policy.max_backoff);
                assert!(a >= exp.mul_f64(0.5), "jitter floor is half the step");
            }
        }
        // Different sessions (salts) desynchronize.
        let spread: BTreeSet<Duration> = (0..16).map(|salt| policy.backoff(0, salt)).collect();
        assert!(spread.len() > 1, "jitter must actually vary across salts");
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn gates_tag_deadline_and_overload_errors_with_their_stage() {
        // Table-driven over both gate stages: a drained gate fails a
        // deadline wait with `DeadlineExceeded { stage }` and a queue-
        // deadline wait with `Overloaded { stage }`, tagged verbatim.
        for stage in ["cold admission", "admission"] {
            let gate = Gate::new(1, LockRank::GateCold, "test.permit", "test.counter");
            let _held = gate.acquire(None, None, stage).unwrap();
            let soon = Some(Instant::now() + Duration::from_millis(5));
            match gate.acquire(soon, None, stage) {
                Err(EngineError::DeadlineExceeded { stage: tag }) => assert_eq!(tag, stage),
                other => panic!("expected DeadlineExceeded({stage}), got {other:?}"),
            }
            match gate.acquire(None, Some(Duration::from_millis(5)), stage) {
                Err(err @ EngineError::Overloaded { .. }) => {
                    assert_eq!(err, EngineError::Overloaded { stage });
                    assert!(err.is_transient(), "sheds must be retryable");
                }
                other => panic!("expected Overloaded({stage}), got {other:?}"),
            }
            // With both budgets pending, whichever expires first decides
            // the classification: the request deadline outranks the queue.
            let d = Some(Instant::now() + Duration::from_millis(5));
            match gate.acquire(d, Some(Duration::from_secs(60)), stage) {
                Err(EngineError::DeadlineExceeded { stage: tag }) => assert_eq!(tag, stage),
                other => panic!("expected DeadlineExceeded({stage}), got {other:?}"),
            };
        }
    }

    #[test]
    fn deadline_stage_tags_cover_the_request_lifecycle() {
        let q = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        // Stage "prepare": the deadline was already spent on arrival.
        {
            let serving = ServingEngine::new(EvalConfig::default(), coin_db()).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let request = Request::new(q).with_deadline(Instant::now() - Duration::from_millis(1));
            match serving.evaluate_request(&request, &mut rng) {
                Err(EngineError::DeadlineExceeded { stage }) => assert_eq!(stage, "prepare"),
                other => panic!("expected DeadlineExceeded(prepare), got {other:?}"),
            }
        }
        // Stage "cold admission": the cold gate is held and the prefix is
        // not pooled, so the request queues there until its deadline.
        {
            let serving = ServingEngine::with_limits(
                EvalConfig::default(),
                coin_db(),
                ServingLimits {
                    max_in_flight: 4,
                    max_cold_in_flight: 1,
                    max_queue_wait: None,
                },
            )
            .unwrap();
            let _cold = serving
                .cold_admission
                .acquire(None, None, "cold admission")
                .unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let request = Request::new(q).with_deadline(Instant::now() + Duration::from_millis(10));
            match serving.evaluate_request(&request, &mut rng) {
                Err(EngineError::DeadlineExceeded { stage }) => {
                    assert_eq!(stage, "cold admission")
                }
                other => panic!("expected DeadlineExceeded(cold admission), got {other:?}"),
            }
        }
        // Stage "admission": the prefix is pooled (warm classification
        // skips the cold gate) and the admission gate is held.
        {
            let serving = ServingEngine::with_limits(
                EvalConfig::default(),
                coin_db(),
                ServingLimits {
                    max_in_flight: 1,
                    max_cold_in_flight: 1,
                    max_queue_wait: None,
                },
            )
            .unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            serving.evaluate(q, &mut rng).unwrap();
            let _held = serving.admission.acquire(None, None, "admission").unwrap();
            let request = Request::new(q).with_deadline(Instant::now() + Duration::from_millis(10));
            match serving.evaluate_request(&request, &mut rng) {
                Err(EngineError::DeadlineExceeded { stage }) => assert_eq!(stage, "admission"),
                other => panic!("expected DeadlineExceeded(admission), got {other:?}"),
            }
        }
        // Stage "estimate" is covered (with the containment check) by
        // `mid_sampling_deadlines_degrade_to_guaranteed_bounds`; stage
        // "pre-execution" by `burned_admission_deadlines_tag_pre_execution`
        // under the failpoints feature.
    }

    #[test]
    fn mid_sampling_deadlines_degrade_to_guaranteed_bounds() {
        // ε = 2e-4 needs tens of millions of Karp–Luby samples: a 15 ms
        // deadline expires mid-sampling, at a bitworld block boundary.
        let serving = ServingEngine::new(EvalConfig::default(), coin_db()).unwrap();
        let q = "aconf[0.0002, 0.01](project[CoinType](repairkey[ @ Count](Coins)))";
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let request = Request::new(q).with_deadline(Instant::now() + Duration::from_millis(15));
        match serving.evaluate_request(&request, &mut rng) {
            Err(EngineError::DeadlineExceeded { stage }) => assert_eq!(stage, "estimate"),
            Ok(_) => panic!("sampling at ε=2e-4 must not finish within 15 ms"),
            other => panic!("expected DeadlineExceeded(estimate), got {other:?}"),
        }
        // The degradable entry point turns the same failure into exact
        // confidence bounds that bracket the true confidences (2/3, 1/3).
        let request = Request::new(q).with_deadline(Instant::now() + Duration::from_millis(15));
        let answer = serving.evaluate_degradable(&request, &mut rng).unwrap();
        let ServingAnswer::Degraded(degraded) = answer else {
            panic!("expected a degraded answer")
        };
        assert_eq!(degraded.reason, DegradedReason::DeadlineExpired);
        assert_eq!(degraded.bounds.len(), 2);
        for (t, b) in &degraded.bounds {
            let p = if *t == tuple!["fair"] {
                2.0 / 3.0
            } else {
                assert_eq!(*t, tuple!["2headed"]);
                1.0 / 3.0
            };
            assert!((0.0..=1.0).contains(&b.lower) && (0.0..=1.0).contains(&b.upper));
            assert!(
                b.lower <= p && p <= b.upper,
                "true confidence {p} outside degraded bounds [{}, {}]",
                b.lower,
                b.upper
            );
        }
        assert_eq!(serving.stats().degraded_answers, 1);
    }

    #[test]
    fn saturated_queues_shed_and_degrade_where_bounds_exist() {
        let q = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let serving = ServingEngine::with_limits(
            EvalConfig::default(),
            coin_db(),
            ServingLimits {
                max_in_flight: 1,
                max_cold_in_flight: 1,
                max_queue_wait: Some(Duration::from_millis(10)),
            },
        )
        .unwrap();
        // Hold the only admission slot — from a separate thread, as a real
        // competing request would.  Holding it on this thread and then
        // evaluating a cold request here would acquire the cold permit
        // under the admission permit, which the rank discipline (rightly)
        // rejects as the gate-to-gate deadlock order.
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (held_tx, held_rx) = std::sync::mpsc::channel::<()>();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let holder = &serving;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let _held = holder.admission.acquire(None, None, "admission").unwrap();
                held_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            });
            held_rx.recv().unwrap();
            let err = serving
                .evaluate_request(&Request::new(q), &mut rng)
                .unwrap_err();
            assert_eq!(err, EngineError::Overloaded { stage: "admission" });
            // The degradable entry point converts the shed into bounds...
            let answer = serving
                .evaluate_degradable(&Request::new(q), &mut rng)
                .unwrap();
            match answer {
                ServingAnswer::Degraded(d) => {
                    assert_eq!(d.reason, DegradedReason::QueueSaturated);
                    assert_eq!(d.bounds.len(), 2);
                }
                ServingAnswer::Full(_) => panic!("held gate cannot serve a full answer"),
            }
            // ... but a query with no bounds form keeps its Overloaded error.
            let err = serving
                .evaluate_degradable(&Request::new("poss(Coins)"), &mut rng)
                .unwrap_err();
            assert!(matches!(err, EngineError::Overloaded { .. }));
            release_tx.send(()).unwrap();
        });
        // Released gate: the degradable path serves full answers again.
        match serving
            .evaluate_degradable(&Request::new(q), &mut rng)
            .unwrap()
        {
            ServingAnswer::Full(_) => {}
            ServingAnswer::Degraded(_) => panic!("free engine must answer in full"),
        }
        assert_eq!(serving.stats().degraded_answers, 1);
    }

    #[cfg(feature = "failpoints")]
    mod failpoints {
        use super::*;
        use crate::faults::{self, FaultPlan, ERROR, PANIC};

        #[test]
        fn burned_admission_deadlines_tag_pre_execution() {
            let _guard = faults::exclusive();
            let serving = ServingEngine::new(EvalConfig::default(), coin_db()).unwrap();
            let q = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            faults::arm(
                &FaultPlan::storm(7, 1_000_000)
                    .at("admission")
                    .with_kinds(faults::BURN),
            );
            let request = Request::new(q).with_deadline(Instant::now() + Duration::from_millis(5));
            let out = serving.evaluate_request(&request, &mut rng);
            faults::disarm();
            match out {
                Err(EngineError::DeadlineExceeded { stage }) => {
                    assert_eq!(stage, "pre-execution")
                }
                other => panic!("expected DeadlineExceeded(pre-execution), got {other:?}"),
            }
        }

        #[test]
        fn injected_panics_quarantine_the_entry_and_the_engine_recovers() {
            let _guard = faults::exclusive();
            let serving = ServingEngine::new(EvalConfig::default(), coin_db()).unwrap();
            let q = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            let cold = serving.evaluate(q, &mut rng).unwrap();
            assert_eq!(serving.pooled_prefixes(), 1);
            // Panic at the next estimate probe: the warm resume unwinds
            // into the quarantine region.
            faults::arm(
                &FaultPlan::storm(5, 1_000_000)
                    .at("estimate")
                    .with_kinds(PANIC),
            );
            let mut rng_warm = ChaCha8Rng::seed_from_u64(21);
            let err = serving.evaluate(q, &mut rng_warm).unwrap_err();
            faults::disarm();
            assert_eq!(err, EngineError::Panicked { stage: "warm-eval" });
            assert!(err.is_transient());
            assert_eq!(serving.stats().entries_quarantined, 1);
            assert_eq!(serving.pooled_prefixes(), 0, "quarantine drops the entry");
            // The engine stays serviceable: the same seed re-warms the
            // prefix and reproduces the cold answer bit-identically (the
            // panic fired before any RNG draw).
            let mut rng_retry = ChaCha8Rng::seed_from_u64(21);
            let again = serving.evaluate(q, &mut rng_retry).unwrap();
            assert_eq!(again.result.relation, cold.result.relation);
            assert_eq!(serving.pooled_prefixes(), 1);
        }

        #[test]
        fn sessions_retry_injected_faults_to_bit_identical_answers() {
            let _guard = faults::exclusive();
            let q = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
            // Fault-free ground truth.
            let clean = ServingEngine::new(EvalConfig::default(), coin_db()).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(33);
            let truth = clean.evaluate(q, &mut rng).unwrap();
            // Inject admission errors on roughly half the probe hits; the
            // session's retry loop must absorb every one of them, and the
            // answers must still match the fault-free run bit for bit
            // (failed attempts consume no caller randomness).
            let serving = ServingEngine::new(EvalConfig::default(), coin_db()).unwrap();
            faults::arm(
                &FaultPlan::storm(1, 500_000)
                    .at("admission")
                    .with_kinds(ERROR),
            );
            let mut session = serving.session().with_retry_policy(RetryPolicy {
                max_retries: 16,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_millis(1),
                jitter_seed: 9,
            });
            let mut rng = ChaCha8Rng::seed_from_u64(33);
            let first = session.evaluate(q, &mut rng).unwrap();
            let warm = session.evaluate(q, &mut rng).unwrap();
            let injected = faults::injected_count();
            faults::disarm();
            assert_eq!(first.result.relation, truth.result.relation);
            assert_eq!(first.result.errors, truth.result.errors);
            assert_eq!(warm.result.relation, first.result.relation);
            assert!(injected >= 1, "a 50% storm over many probes must fire");
            assert_eq!(serving.stats().retries, injected);
        }

        #[test]
        fn dropped_absorbs_and_patches_only_change_cost() {
            let _guard = faults::exclusive();
            let serving = ServingEngine::new(EvalConfig::default(), coin_db()).unwrap();
            let q = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
            // Every absorb drops: the pool stays cold, but answers flow.
            faults::arm(
                &FaultPlan::storm(13, 1_000_000)
                    .at("absorb")
                    .with_kinds(ERROR),
            );
            let mut rng = ChaCha8Rng::seed_from_u64(41);
            let a = serving.evaluate(q, &mut rng).unwrap();
            let b = serving.evaluate(q, &mut rng).unwrap();
            faults::disarm();
            assert_eq!(serving.pooled_prefixes(), 0, "all absorbs were dropped");
            assert_eq!(serving.stats().cold_evaluations, 2);
            // Both requests ran cold, so they must agree with a fresh
            // serving engine evaluating twice on the same seed.
            let clean = ServingEngine::new(EvalConfig::default(), coin_db()).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(41);
            let ca = clean.evaluate(q, &mut rng).unwrap();
            let cb = clean.evaluate(q, &mut rng).unwrap();
            assert_eq!(a.result.relation, ca.result.relation);
            assert_eq!(b.result.relation, cb.result.relation);
        }
    }
}
