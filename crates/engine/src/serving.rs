//! The serving layer: repeated-query evaluation at steady-state estimation
//! cost.
//!
//! A [`ServingEngine`] binds a [`UEngine`] configuration to one database and
//! serves query *text*.  Three caches stack up:
//!
//! 1. a [`PlanCache`] keyed by normalized query text — a repeated query is
//!    never re-parsed, re-validated or re-lowered;
//! 2. a prepared [`PhysicalPlan`] per plan — lowering against the engine
//!    configuration happens once;
//! 3. an [`ExecSnapshot`] per prepared query — the deterministic prefix of
//!    the pipeline (relational operators, repair-key, exact confidence,
//!    lineage extraction, W-table compilation) executes once, and every
//!    further evaluation resumes at the *sampling frontier*, so its cost is
//!    Monte Carlo estimation only.  Fully deterministic queries resume past
//!    the root: warm evaluations just clone the cached result.
//!
//! Warm results are bit-identical to what a cold evaluation with the same
//! RNG state would produce: the snapshot restores slots, database, variable
//! counter and statistics exactly as the sequential schedule would have left
//! them at the frontier, and sampling operators derive all randomness from
//! the caller's RNG as usual.
//!
//! ```
//! use engine::{EvalConfig, ServingEngine};
//! use pdb::{relation, schema};
//! use rand::SeedableRng;
//! use urel::UDatabase;
//!
//! let db = UDatabase::from_complete_relations([
//!     ("Coins", relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]]),
//! ]);
//! let mut serving = ServingEngine::new(EvalConfig::exact(), db).unwrap();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let q = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
//! let cold = serving.evaluate(q, &mut rng).unwrap();
//! let warm = serving.evaluate(q, &mut rng).unwrap();   // served from the snapshot
//! assert_eq!(cold.result.relation, warm.result.relation);
//! assert_eq!(serving.stats().warm_evaluations, 1);
//! ```

use crate::adaptive_query::catalog_of;
use crate::error::Result;
use crate::exec::{EvalConfig, EvalOutput, EvalStats};
use crate::physical::{ExecContext, ExecSnapshot, PhysicalPlan};
use crate::space::SpaceCache;
use algebra::{Catalog, PlanCache};
use rand::{Rng, RngCore};
use std::collections::HashMap;
use std::sync::Arc;
use urel::UDatabase;

/// Upper bound on prepared queries a server retains; each one holds a
/// prefix snapshot (slots + database clone), so the set must stay bounded.
const PREPARED_CAP: usize = 1024;

/// Counters describing how the serving caches are performing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Evaluations that parsed/lowered/executed from scratch (and captured a
    /// snapshot).
    pub cold_evaluations: u64,
    /// Evaluations resumed from a prepared snapshot.
    pub warm_evaluations: u64,
    /// Plan-cache hits (lookups answered without parsing + lowering).
    pub plan_cache_hits: u64,
    /// Plan-cache misses.
    pub plan_cache_misses: u64,
}

/// One prepared query: its lowered physical plan plus, after the first
/// evaluation, the resumable snapshot of the deterministic prefix.
struct PreparedQuery {
    physical: Arc<PhysicalPlan>,
    snapshot: Option<ExecSnapshot>,
}

/// A query server over one database: repeated queries cost estimation only.
pub struct ServingEngine {
    config: EvalConfig,
    database: UDatabase,
    catalog: Catalog,
    plans: PlanCache,
    prepared: HashMap<Arc<str>, PreparedQuery>,
    cold_evaluations: u64,
    warm_evaluations: u64,
}

impl ServingEngine {
    /// Creates a server for `database` with the given engine configuration.
    pub fn new(config: EvalConfig, database: UDatabase) -> Result<ServingEngine> {
        let catalog = catalog_of(&database)?;
        Ok(ServingEngine {
            config,
            database,
            catalog,
            plans: PlanCache::new(),
            prepared: HashMap::new(),
            cold_evaluations: 0,
            warm_evaluations: 0,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// The database being served.
    pub fn database(&self) -> &UDatabase {
        &self.database
    }

    /// Replaces the database and invalidates every cache (plans validate
    /// against the catalog; snapshots embed database state).
    pub fn set_database(&mut self, database: UDatabase) -> Result<()> {
        self.catalog = catalog_of(&database)?;
        self.database = database;
        self.plans.clear();
        self.prepared.clear();
        Ok(())
    }

    /// Evaluates a UA query given as text.  The first evaluation of a query
    /// runs cold and prepares it; repeated evaluations resume at the
    /// sampling frontier.
    pub fn evaluate<R: Rng + ?Sized>(&mut self, text: &str, rng: &mut R) -> Result<EvalOutput> {
        let (key, plan) = self.plans.get_or_lower(text, &self.catalog)?;
        if !self.prepared.contains_key(&key) {
            // Snapshots embed database state; bound how many a long-running
            // server retains (evicted queries simply re-prepare).
            if self.prepared.len() >= PREPARED_CAP {
                self.prepared.clear();
            }
            let physical = Arc::new(PhysicalPlan::lower(&plan, self.config)?);
            self.prepared.insert(
                key.clone(),
                PreparedQuery {
                    physical,
                    snapshot: None,
                },
            );
        }
        let entry = self
            .prepared
            .get_mut(&key)
            .expect("prepared entry inserted above");

        let mut rng_ref: &mut R = rng;
        let dyn_rng: &mut dyn RngCore = &mut rng_ref;
        let mut ctx = ExecContext {
            config: self.config,
            // Warm evaluations restore the snapshot's database; seeding the
            // context with an empty one avoids a wasted full clone.
            database: if entry.snapshot.is_some() {
                UDatabase::new()
            } else {
                self.database.clone()
            },
            stats: EvalStats::default(),
            var_counter: 0,
            rng: dyn_rng,
            spaces: SpaceCache::new(),
        };
        let result = match &entry.snapshot {
            Some(snapshot) => {
                self.warm_evaluations += 1;
                entry.physical.resume(&mut ctx, snapshot)?
            }
            None => {
                self.cold_evaluations += 1;
                let (result, snapshot) = entry.physical.execute_capturing(&mut ctx)?;
                entry.snapshot = Some(snapshot);
                result
            }
        };
        Ok(EvalOutput {
            result,
            database: ctx.database,
            stats: ctx.stats,
        })
    }

    /// Cache counters.
    pub fn stats(&self) -> ServingStats {
        ServingStats {
            cold_evaluations: self.cold_evaluations,
            warm_evaluations: self.warm_evaluations,
            plan_cache_hits: self.plans.hits(),
            plan_cache_misses: self.plans.misses(),
        }
    }

    /// Number of prepared queries.
    pub fn prepared_queries(&self) -> usize {
        self.prepared.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::UEngine;
    use pdb::{relation, schema};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn coin_db() -> UDatabase {
        UDatabase::from_complete_relations([(
            "Coins",
            relation![schema!["CoinType", "Count"]; ["fair", 2], ["2headed", 1]],
        )])
    }

    #[test]
    fn warm_evaluations_match_cold_and_engine_results() {
        let db = coin_db();
        let text = "conf(project[CoinType](repairkey[ @ Count](Coins)))";
        let mut serving = ServingEngine::new(EvalConfig::exact(), db.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let cold = serving.evaluate(text, &mut rng).unwrap();
        let warm = serving.evaluate(text, &mut rng).unwrap();
        assert_eq!(cold.result.relation, warm.result.relation);
        assert_eq!(cold.result.errors, warm.result.errors);
        assert_eq!(cold.stats, warm.stats);
        assert_eq!(cold.database, warm.database);

        // Agrees with the plain engine on a fresh RNG with the same seed
        // (the query is deterministic, so RNG state is irrelevant).
        let engine = UEngine::new(EvalConfig::exact());
        let query = algebra::parse_query(text).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let direct = engine.evaluate(&db, &query, &mut rng).unwrap();
        assert_eq!(direct.result.relation, warm.result.relation);

        let stats = serving.stats();
        assert_eq!(stats.cold_evaluations, 1);
        assert_eq!(stats.warm_evaluations, 1);
        assert_eq!(stats.plan_cache_misses, 1);
        assert_eq!(stats.plan_cache_hits, 1);
        assert_eq!(serving.prepared_queries(), 1);
    }

    #[test]
    fn alternative_spellings_share_one_prepared_query() {
        let mut serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        serving.evaluate("poss(Coins)", &mut rng).unwrap();
        serving.evaluate("poss( Coins )", &mut rng).unwrap();
        assert_eq!(serving.prepared_queries(), 1);
        assert_eq!(serving.stats().warm_evaluations, 1);
    }

    #[test]
    fn sampling_queries_resume_at_the_frontier_deterministically() {
        let db = coin_db();
        let text = "aconf[0.3, 0.1](project[CoinType](repairkey[ @ Count](Coins)))";
        let mut serving = ServingEngine::new(EvalConfig::default(), db.clone()).unwrap();
        // Warm evaluation with RNG state S must equal a cold evaluation of
        // the plain engine with the same RNG state S.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _cold = serving.evaluate(text, &mut rng).unwrap();
        let mut warm_rng = ChaCha8Rng::seed_from_u64(1234);
        let warm = serving.evaluate(text, &mut warm_rng).unwrap();

        let engine = UEngine::new(EvalConfig::default());
        let query = algebra::parse_query(text).unwrap();
        let mut direct_rng = ChaCha8Rng::seed_from_u64(1234);
        let direct = engine.evaluate(&db, &query, &mut direct_rng).unwrap();
        assert_eq!(warm.result.relation, direct.result.relation);
        assert_eq!(warm.stats, direct.stats);
    }

    #[test]
    fn set_database_invalidates_caches() {
        let mut serving = ServingEngine::new(EvalConfig::exact(), coin_db()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        serving.evaluate("poss(Coins)", &mut rng).unwrap();
        let other = UDatabase::from_complete_relations([(
            "Coins",
            relation![schema!["CoinType", "Count"]; ["weighted", 5]],
        )]);
        serving.set_database(other).unwrap();
        assert_eq!(serving.prepared_queries(), 0);
        let out = serving.evaluate("poss(Coins)", &mut rng).unwrap();
        assert_eq!(out.result.relation.len(), 1);
        // Unknown relations fail validation against the new catalog.
        assert!(serving.evaluate("poss(Nope)", &mut rng).is_err());
    }
}
