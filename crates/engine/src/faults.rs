//! Deterministic fault injection for the concurrent serving path.
//!
//! A *failpoint* is a named site in the serving pipeline where a fault —
//! an injected error return, a panic, added latency, or a deadline burn —
//! can be forced for testing.  The registry is compiled only under the
//! `failpoints` cargo feature: the default build ships the two probe
//! functions as empty `#[inline(always)]` stubs (and [`COMPILED`] as
//! `false`), so disabled builds carry no failpoint code at all.  With the
//! feature on but the registry disarmed, each probe costs one relaxed
//! atomic load.
//!
//! Whether a given probe hit faults — and which fault it takes — is a pure
//! function of the armed seed, the site name, and a per-site hit counter,
//! so a fault storm replays identically for a fixed seed and schedule.
//!
//! The failpoint map (see also ARCHITECTURE.md, "Failure model"):
//!
//! | site        | location                                   | faults        |
//! |-------------|--------------------------------------------|---------------|
//! | `admission` | before the admission gate                  | error/latency/burn |
//! | `prepare`   | top of plan lowering + pinning             | error/latency/burn |
//! | `cold-eval` | before a capturing cold execution          | error/latency/burn/panic |
//! | `estimate`  | top of `conf` sampling (before seed draw)  | error/latency/burn/panic |
//! | `absorb`    | before a snapshot is absorbed into the pool| drop/latency  |
//! | `patch`     | before a delta patch of a pool entry       | drop/latency  |
//! | `storage`   | checkpoint segment writes                  | flip one byte |
//! | pool-steal  | `rayon::faults` (vendored pool)            | latency only  |
//!
//! `absorb` and `patch` run under the pool write lock where an unwind or
//! error return is not acceptable; their probe ([`fire_cost_only`]) only
//! adds latency or asks the caller to *drop* the work (skip the absorb,
//! demote instead of patch) — both of which the serving path already
//! treats as legal cache misses.  Panics are only ever injected at
//! `cold-eval` and `estimate`, which sit inside the serving path's
//! quarantine (`catch_unwind`) region.
//!
//! `storage` is a *corruption* site: its probe ([`corrupt_bytes`]) flips
//! one deterministic bit of a framed checkpoint segment just before it is
//! written, exercising the storage layer's digest verification — a
//! corrupted segment must be rejected on read (`EngineError::Storage`),
//! never decoded into wrong answers.

#[cfg(feature = "failpoints")]
pub use imp::*;

/// `true` iff this build compiled the failpoint registry.  The default
/// build's CI guard asserts this is `false`, which proves no failpoint
/// code (not even the disarmed atomic check) is present.
#[cfg(feature = "failpoints")]
pub const COMPILED: bool = true;

/// `true` iff this build compiled the failpoint registry.  The default
/// build's CI guard asserts this is `false`, which proves no failpoint
/// code (not even the disarmed atomic check) is present.
#[cfg(not(feature = "failpoints"))]
pub const COMPILED: bool = false;

/// Fallible probe stub for builds without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn fire(
    _site: &'static str,
    _deadline: Option<std::time::Instant>,
) -> crate::error::Result<()> {
    Ok(())
}

/// Cost-only probe stub for builds without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn fire_cost_only(_site: &'static str) -> bool {
    false
}

/// Corruption probe stub for builds without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn corrupt_bytes(_site: &'static str, _bytes: &mut [u8]) -> bool {
    false
}

#[cfg(feature = "failpoints")]
mod imp {
    use crate::error::{EngineError, Result};
    use crate::sync::{LockRank, OrderedMutex, OrderedMutexGuard};
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
    use std::sync::OnceLock;
    use std::time::{Duration, Instant};

    /// Fault kind bit: return `EngineError::Injected { site }`.
    pub const ERROR: u8 = 1;
    /// Fault kind bit: panic (only honored at quarantined sites).
    pub const PANIC: u8 = 2;
    /// Fault kind bit: sleep for the plan's latency, then proceed.
    pub const LATENCY: u8 = 4;
    /// Fault kind bit: sleep until just past the request deadline, then
    /// proceed — downstream deadline checks must catch it.
    pub const BURN: u8 = 8;

    /// The fallible failpoint sites, in registry order.
    pub const SITES: [&str; 4] = ["admission", "prepare", "cold-eval", "estimate"];
    /// The cost-only failpoint sites (latency or drop-the-work, never
    /// error/panic — they run under the pool write lock).
    pub const COST_SITES: [&str; 2] = ["absorb", "patch"];
    /// The corruption failpoint sites ([`corrupt_bytes`]): a fault flips one
    /// bit of the bytes about to hit disk instead of erroring.
    pub const CORRUPT_SITES: [&str; 1] = ["storage"];
    /// Sites inside the serving quarantine region where an injected panic
    /// is recoverable; `PANIC` rolls elsewhere downgrade to `ERROR`.
    const PANIC_SITES: [&str; 2] = ["cold-eval", "estimate"];

    /// What to inject, where, and how often.  Armed via [`arm`].
    #[derive(Clone, Debug)]
    pub struct FaultPlan {
        /// Seed of the deterministic per-hit roll.
        pub seed: u64,
        /// Probability (parts per million) that a probe hit faults.
        pub rate_ppm: u32,
        /// Bitmask of fault kinds to draw from ([`ERROR`] | [`PANIC`] |
        /// [`LATENCY`] | [`BURN`]).
        pub kinds: u8,
        /// Sleep injected by `LATENCY` faults (and by cost-only sites).
        pub latency: Duration,
        /// Sites to fault; empty means every site.
        pub sites: Vec<&'static str>,
    }

    impl FaultPlan {
        /// A plan faulting every site with every kind at `rate_ppm`.
        pub fn storm(seed: u64, rate_ppm: u32) -> Self {
            FaultPlan {
                seed,
                rate_ppm,
                kinds: ERROR | PANIC | LATENCY | BURN,
                latency: Duration::from_micros(200),
                sites: Vec::new(),
            }
        }

        /// Restricts the plan to one site.
        pub fn at(mut self, site: &'static str) -> Self {
            self.sites = vec![site];
            self
        }

        /// Restricts the plan to the given fault kinds.
        pub fn with_kinds(mut self, kinds: u8) -> Self {
            self.kinds = kinds;
            self
        }
    }

    /// The single hot-path guard: probes return immediately while false.
    static ARMED: AtomicBool = AtomicBool::new(false);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static RATE_PPM: AtomicU32 = AtomicU32::new(0);
    static KINDS: AtomicU32 = AtomicU32::new(0);
    static LATENCY_US: AtomicU64 = AtomicU64::new(0);
    /// Bitmask over `SITES` + `COST_SITES` + `CORRUPT_SITES` of the sites
    /// the plan targets.
    static SITE_MASK: AtomicU32 = AtomicU32::new(0);
    static INJECTED: AtomicU64 = AtomicU64::new(0);

    fn hit_counters() -> &'static [AtomicU64; 7] {
        static HITS: OnceLock<[AtomicU64; 7]> = OnceLock::new();
        HITS.get_or_init(|| std::array::from_fn(|_| AtomicU64::new(0)))
    }

    /// Serializes arm/disarm across tests in one process: the registry is
    /// global, so storms from concurrent `#[test]` threads must not
    /// interleave.  Hold the guard for the duration of the storm.
    ///
    /// Ranked at [`LockRank::TestExclusive`] — the lowest rank, since the
    /// holder evaluates through every engine lock — and acquired with
    /// poison *recovery* rather than the engine's abort-on-poison policy:
    /// storm tests panic by design while holding it, and its `()` payload
    /// has no state to corrupt.
    pub fn exclusive() -> OrderedMutexGuard<'static, ()> {
        static LOCK: OrderedMutex<()> =
            OrderedMutex::new(LockRank::TestExclusive, "faults.exclusive", ());
        LOCK.lock_recovering()
    }

    fn site_index(site: &'static str) -> usize {
        SITES
            .iter()
            .chain(COST_SITES.iter())
            .chain(CORRUPT_SITES.iter())
            .position(|s| *s == site)
            .unwrap_or_else(|| panic!("unknown failpoint site {site:?}"))
    }

    /// Arms the registry with `plan`; resets hit and injection counters.
    pub fn arm(plan: &FaultPlan) {
        let mask = if plan.sites.is_empty() {
            u32::MAX
        } else {
            plan.sites.iter().fold(0u32, |m, s| m | 1 << site_index(s))
        };
        SEED.store(plan.seed, Ordering::Relaxed);
        RATE_PPM.store(plan.rate_ppm.min(1_000_000), Ordering::Relaxed);
        KINDS.store(plan.kinds as u32, Ordering::Relaxed);
        LATENCY_US.store(
            plan.latency.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        SITE_MASK.store(mask, Ordering::Relaxed);
        for h in hit_counters() {
            h.store(0, Ordering::Relaxed);
        }
        INJECTED.store(0, Ordering::Relaxed);
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarms every failpoint; probes become single-load no-ops again.
    pub fn disarm() {
        ARMED.store(false, Ordering::SeqCst);
    }

    /// Whether the registry is currently armed.
    pub fn armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    /// Number of faults injected since the registry was last armed.
    pub fn injected_count() -> u64 {
        INJECTED.load(Ordering::Relaxed)
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// FNV-1a over the site name: stable per-site stream separation.
    fn site_hash(site: &str) -> u64 {
        site.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }

    /// Rolls the deterministic die for one probe hit; `None` = no fault.
    fn roll(site: &'static str) -> Option<u64> {
        let idx = site_index(site);
        if SITE_MASK.load(Ordering::Relaxed) & (1 << idx) == 0 {
            return None;
        }
        let hit = hit_counters()[idx].fetch_add(1, Ordering::Relaxed);
        let r = splitmix64(SEED.load(Ordering::Relaxed) ^ site_hash(site) ^ hit);
        if (r % 1_000_000) as u32 >= RATE_PPM.load(Ordering::Relaxed) {
            return None;
        }
        INJECTED.fetch_add(1, Ordering::Relaxed);
        Some(r)
    }

    /// The fallible probe.  At an armed site this may return
    /// `EngineError::Injected`, panic (quarantined sites only), sleep for
    /// the plan latency, or burn the caller's deadline (sleep until just
    /// past `deadline`, capped at 50 ms) before returning `Ok`.
    pub fn fire(site: &'static str, deadline: Option<Instant>) -> Result<()> {
        if !ARMED.load(Ordering::Relaxed) {
            return Ok(());
        }
        let Some(r) = roll(site) else { return Ok(()) };
        let mut kinds = KINDS.load(Ordering::Relaxed) as u8;
        if !PANIC_SITES.contains(&site) {
            kinds &= !PANIC;
        }
        if kinds == 0 {
            kinds = ERROR;
        }
        let enabled: Vec<u8> = [ERROR, PANIC, LATENCY, BURN]
            .into_iter()
            .filter(|k| kinds & k != 0)
            .collect();
        match enabled[((r >> 32) as usize) % enabled.len()] {
            ERROR => Err(EngineError::Injected { site }),
            PANIC => panic!("injected fault at failpoint {site:?}"),
            LATENCY => {
                std::thread::sleep(Duration::from_micros(LATENCY_US.load(Ordering::Relaxed)));
                Ok(())
            }
            _burn => {
                let until = match deadline {
                    Some(d) => d + Duration::from_millis(2),
                    None => Instant::now() + Duration::from_millis(2),
                };
                let now = Instant::now();
                if until > now {
                    std::thread::sleep((until - now).min(Duration::from_millis(50)));
                }
                Ok(())
            }
        }
    }

    /// The corruption probe for storage writes.  At an armed site a fault
    /// flips one deterministic bit of `bytes` (the byte index and bit
    /// position both derive from the roll) and returns `true`; otherwise
    /// the bytes pass through untouched.  Callers write the possibly
    /// mangled buffer to disk as-is — detection is the *reader's* job,
    /// via digest verification.
    pub fn corrupt_bytes(site: &'static str, bytes: &mut [u8]) -> bool {
        if !ARMED.load(Ordering::Relaxed) || bytes.is_empty() {
            return false;
        }
        let Some(r) = roll(site) else { return false };
        let idx = ((r >> 24) as usize) % bytes.len();
        bytes[idx] ^= 1 << ((r >> 16) & 7);
        true
    }

    /// The cost-only probe for sites that run under the pool write lock.
    /// Never errors or panics: a fault either sleeps for the plan latency
    /// (returning `false`) or returns `true`, asking the caller to drop
    /// the work — skip the absorb, or demote instead of patching.
    pub fn fire_cost_only(site: &'static str) -> bool {
        if !ARMED.load(Ordering::Relaxed) {
            return false;
        }
        let Some(r) = roll(site) else { return false };
        if KINDS.load(Ordering::Relaxed) as u8 & LATENCY != 0 && r & (1 << 33) != 0 {
            std::thread::sleep(Duration::from_micros(LATENCY_US.load(Ordering::Relaxed)));
            false
        } else {
            true
        }
    }
}

#[cfg(all(test, not(feature = "failpoints")))]
mod tests {
    /// The compile-time guard the CI default-feature job relies on: a
    /// default build must not compile the registry at all.
    #[test]
    fn default_build_has_no_failpoints() {
        const { assert!(!super::COMPILED) };
        assert_eq!(super::fire("anywhere", None), Ok(()));
        assert!(!super::fire_cost_only("anywhere"));
        let mut bytes = [1u8, 2, 3];
        assert!(!super::corrupt_bytes("anywhere", &mut bytes));
        assert_eq!(bytes, [1, 2, 3]);
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::error::EngineError;

    #[test]
    fn disarmed_probes_are_no_ops() {
        let _guard = exclusive();
        disarm();
        assert!(fire("admission", None).is_ok());
        assert!(!fire_cost_only("absorb"));
    }

    #[test]
    fn error_storm_is_deterministic_and_classified() {
        let _guard = exclusive();
        let plan = FaultPlan::storm(7, 500_000).with_kinds(ERROR);
        let observe = |plan: &FaultPlan| -> Vec<bool> {
            arm(plan);
            let hits = (0..64).map(|_| fire("admission", None).is_err()).collect();
            disarm();
            hits
        };
        let a = observe(&plan);
        let b = observe(&plan);
        assert_eq!(a, b, "same seed must inject the same schedule");
        assert!(a.iter().any(|&e| e), "50% rate over 64 hits must fire");
        assert!(a.iter().any(|&e| !e));
        arm(&plan);
        let err = (0..64).find_map(|_| fire("prepare", None).err()).unwrap();
        disarm();
        assert_eq!(err, EngineError::Injected { site: "prepare" });
        assert!(err.is_transient());
    }

    #[test]
    fn panic_downgrades_outside_quarantined_sites() {
        let _guard = exclusive();
        arm(&FaultPlan::storm(3, 1_000_000).with_kinds(PANIC));
        // `admission` is outside the quarantine region: PANIC must
        // downgrade to an error return rather than unwind.
        let r = fire("admission", None);
        disarm();
        assert_eq!(r, Err(EngineError::Injected { site: "admission" }));
    }

    #[test]
    fn quarantined_site_can_panic() {
        let _guard = exclusive();
        arm(&FaultPlan::storm(3, 1_000_000).with_kinds(PANIC));
        let unwound = std::panic::catch_unwind(|| {
            let _ = fire("cold-eval", None);
        })
        .is_err();
        disarm();
        assert!(unwound);
    }

    #[test]
    fn site_filter_spares_other_sites() {
        let _guard = exclusive();
        arm(&FaultPlan::storm(9, 1_000_000)
            .with_kinds(ERROR)
            .at("estimate"));
        assert!(fire("admission", None).is_ok());
        assert!(fire("estimate", None).is_err());
        assert!(!fire_cost_only("patch"));
        disarm();
    }

    #[test]
    fn corruption_probe_flips_exactly_one_deterministic_bit() {
        let _guard = exclusive();
        let plan = FaultPlan::storm(21, 1_000_000).at("storage");
        let pristine: Vec<u8> = (0..64u8).collect();
        let observe = |plan: &FaultPlan| {
            arm(plan);
            let mut bytes = pristine.clone();
            let hit = corrupt_bytes("storage", &mut bytes);
            disarm();
            (hit, bytes)
        };
        let (hit_a, a) = observe(&plan);
        let (hit_b, b) = observe(&plan);
        assert!(hit_a, "full-rate corruption must fire on the first hit");
        assert_eq!((hit_a, &a), (hit_b, &b), "same seed, same flipped bit");
        let flipped: Vec<usize> = a
            .iter()
            .zip(&pristine)
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, (x, y))| {
                assert_eq!((*x ^ *y).count_ones(), 1, "exactly one bit per byte");
                i
            })
            .collect();
        assert_eq!(flipped.len(), 1, "exactly one byte is touched");
    }

    #[test]
    fn corruption_probe_respects_arming_and_site_filter() {
        let _guard = exclusive();
        disarm();
        let mut bytes = vec![0xAAu8; 16];
        assert!(!corrupt_bytes("storage", &mut bytes));
        assert_eq!(bytes, vec![0xAAu8; 16]);
        // A storm aimed elsewhere must not corrupt storage writes.
        arm(&FaultPlan::storm(5, 1_000_000).at("prepare"));
        assert!(!corrupt_bytes("storage", &mut bytes));
        assert_eq!(bytes, vec![0xAAu8; 16]);
        // Empty buffers are left alone even at full rate.
        arm(&FaultPlan::storm(5, 1_000_000).at("storage"));
        assert!(!corrupt_bytes("storage", &mut []));
        disarm();
    }

    #[test]
    fn cost_only_sites_drop_rather_than_fail() {
        let _guard = exclusive();
        arm(&FaultPlan::storm(11, 1_000_000).with_kinds(ERROR | PANIC));
        // With latency disabled every cost-only fault asks to drop.
        assert!(fire_cost_only("absorb"));
        assert!(fire_cost_only("patch"));
        assert!(injected_count() >= 2);
        disarm();
    }
}
